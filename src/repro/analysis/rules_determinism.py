"""Determinism rules (NX1xx): reproducibility is a contract here.

Campaign results are content-addressed (``SeedSequence`` entropy derived
from spec hashes) and kernels are pinned bit-exact against scalar
references and the conformance golden — so global RNG state, wall-clock
entropy, unstable sorts and set-order iteration are all bugs, not style.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .linting import Finding, ModuleContext, Rule, register
from .scopes import in_packages, is_determinism_scope

#: ``np.random.<fn>`` calls that touch the hidden module-level generator.
_GLOBAL_NP_RNG = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "lognormal", "binomial", "poisson", "exponential", "beta",
    "gamma", "standard_normal", "bytes", "get_state", "set_state",
    "random_integers",
})

#: stdlib ``random`` module-level functions (the hidden global Random).
_GLOBAL_STDLIB_RNG = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "getrandbits", "betavariate", "expovariate", "triangular",
})

#: wall-clock / machine entropy sources with no place in kernel results.
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today", "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbelow",
    "random.SystemRandom",
})


@register
class GlobalNumpyRng(Rule):
    rule_id = "NX101"
    category = "determinism"
    description = ("no module-level numpy RNG (np.random.seed/rand/...) in "
                   "kernel or campaign code; draw from a seeded "
                   "np.random.default_rng / SeedSequence stream instead")
    node_types = (ast.Call,)
    fires = (
        "import numpy as np\nx = np.random.rand(4)\n",
        "import numpy as np\nnp.random.seed(0)\n",
        "import numpy.random as npr\nv = npr.shuffle([1, 2])\n",
    )
    clean = (
        "import numpy as np\ngen = np.random.default_rng(7)\n"
        "x = gen.random(4)\n",
        "import numpy as np\nss = np.random.SeedSequence(3)\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return is_determinism_scope(ctx.module)

    def visit_node(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        name = ctx.qualified_name(node.func)
        if name and name.startswith("numpy.random.") and \
                name.rsplit(".", 1)[1] in _GLOBAL_NP_RNG:
            yield self.finding(
                ctx, node,
                f"call to global numpy RNG '{name}': results must come "
                "from a seeded np.random.default_rng(...) stream")


@register
class WallclockEntropy(Rule):
    rule_id = "NX102"
    category = "determinism"
    description = ("no stdlib global-RNG or wall-clock entropy "
                   "(random.random(), time.time(), uuid4, urandom) in "
                   "kernel or campaign code; seeded random.Random(...) "
                   "instances stay allowed")
    node_types = (ast.Call,)
    fires = (
        "import random\nx = random.random()\n",
        "import time\nstamp = time.time()\n",
        "import os\nnonce = os.urandom(8)\n",
    )
    clean = (
        "import random\nrng = random.Random(42)\nx = rng.random()\n",
        "import time\nstart = time.perf_counter()\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return is_determinism_scope(ctx.module)

    def visit_node(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        name = ctx.qualified_name(node.func)
        if name is None:
            return
        if name in _WALLCLOCK_CALLS:
            yield self.finding(
                ctx, node,
                f"'{name}()' injects wall-clock/machine entropy into a "
                "determinism-scoped module")
        elif name.startswith("random.") and \
                name.rsplit(".", 1)[1] in _GLOBAL_STDLIB_RNG and \
                name.count(".") == 1:
            yield self.finding(
                ctx, node,
                f"call to stdlib global RNG '{name}': pass a seeded "
                "random.Random(...) instance instead")


@register
class UnstableArgsort(Rule):
    rule_id = "NX103"
    category = "determinism"
    description = ("argsort on tie-break paths must pass kind=\"stable\": "
                   "the default introsort permutes equal keys "
                   "platform-dependently (PR 4's selection bug)")
    node_types = (ast.Call,)
    fires = (
        "import numpy as np\norder = np.argsort([3, 1, 2])\n",
        "def pick(scores):\n    return scores.argsort()[:4]\n",
        "import numpy as np\n"
        "order = np.argsort([3, 1], kind='quicksort')\n",
    )
    clean = (
        "import numpy as np\n"
        "order = np.argsort([3, 1, 2], kind='stable')\n",
        "def pick(scores):\n"
        "    return scores.argsort(kind=\"stable\")[:4]\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return is_determinism_scope(ctx.module) or \
            in_packages(ctx.module, ("repro.reliability", "repro.engine"))

    def visit_node(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        func = node.func
        is_argsort = (isinstance(func, ast.Attribute)
                      and func.attr == "argsort") or \
            (isinstance(func, ast.Name) and func.id == "argsort")
        if not is_argsort:
            return
        for keyword in node.keywords:
            if keyword.arg == "kind" and \
                    isinstance(keyword.value, ast.Constant) and \
                    keyword.value.value == "stable":
                return
        yield self.finding(
            ctx, node,
            "argsort without kind=\"stable\": equal keys permute "
            "nondeterministically across numpy builds")


def _is_set_expression(node: ast.AST, ctx: ModuleContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.qualified_name(node.func)
        return name in ("set", "frozenset")
    return False


@register
class UnorderedIteration(Rule):
    rule_id = "NX104"
    category = "determinism"
    description = ("no iterating a set (or materialising one with "
                   "list/tuple/enumerate) where order can reach results; "
                   "wrap in sorted(...) first")
    #: consumers whose output order mirrors the set's arbitrary order.
    _ORDER_SENSITIVE_CALLS = frozenset({
        "list", "tuple", "enumerate", "iter", "reversed", "next",
    })
    node_types = (ast.For, ast.AsyncFor, ast.ListComp, ast.DictComp,
                  ast.GeneratorExp, ast.Call)
    fires = (
        "for item in {3, 1, 2}:\n    print(item)\n",
        "rows = [x + 1 for x in set(values)]\n",
        "order = list({'b', 'a'})\n",
        "pairs = enumerate(frozenset(items))\n",
    )
    clean = (
        "for item in sorted({3, 1, 2}):\n    print(item)\n",
        "rows = [x + 1 for x in sorted(set(values))]\n",
        "total = sum({1, 2, 3})\n",
        "unique = {x % 4 for x in values}\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return is_determinism_scope(ctx.module)

    def visit_node(self, node: ast.AST,
                   ctx: ModuleContext) -> Iterator[Finding]:
        message = ("iteration over a set feeds ordering-sensitive "
                   "results; use sorted(...) to fix the order")
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expression(node.iter, ctx):
                yield self.finding(ctx, node.iter, message)
        elif isinstance(node, (ast.ListComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expression(generator.iter, ctx):
                    yield self.finding(ctx, generator.iter, message)
        elif isinstance(node, ast.Call):
            name = ctx.qualified_name(node.func)
            if name in self._ORDER_SENSITIVE_CALLS and node.args and \
                    _is_set_expression(node.args[0], ctx):
                yield self.finding(
                    ctx, node,
                    f"'{name}(...)' materialises a set's arbitrary "
                    "order; use sorted(...) instead")
