"""AST lint engine: visitor framework, rule registry, suppressions.

The engine walks each module's AST exactly once.  Rules subclass
:class:`Rule`, declare the node types they care about, and yield
:class:`Finding` objects; :func:`lint_paths` drives the walk, applies the
per-line suppression pragmas, and returns a :class:`LintReport`.

Suppression syntax (same line as the finding)::

    risky_call()  # nanoxbar: allow[NX104] -- frozen upstream, order-free

Every pragma **must** carry a reason after ``--``; a pragma without one,
with an unknown rule id, or that suppresses nothing is itself reported
under the reserved id ``NX000`` (which cannot be suppressed).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Reserved id for pragma hygiene findings (malformed / unknown / unused).
PRAGMA_RULE_ID = "NX000"

_PRAGMA_RE = re.compile(r"#\s*nanoxbar:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"allow\[(?P<ids>[A-Za-z0-9_,\s-]+)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$")


@dataclass(frozen=True)
class Finding:
    """One lint finding (possibly suppressed by a pragma)."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str | None = None

    def as_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }

    def render(self) -> str:
        tag = "  [suppressed: {}]".format(self.reason) if self.suppressed \
            else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}{tag}")


@dataclass
class Suppression:
    """One parsed ``# nanoxbar: allow[...] -- reason`` pragma."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: set = field(default_factory=set)


class ModuleContext:
    """Everything a rule may ask about the module under lint."""

    def __init__(self, path: str, source: str,
                 module: str | None = None) -> None:
        self.path = path
        self.source = source
        self.module = module if module is not None \
            else module_name_for_path(path)
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        #: alias -> fully qualified module (``import numpy as np``)
        self.module_aliases: dict[str, str] = {}
        #: local name -> fully qualified origin (``from x import y as z``)
        self.imported_names: dict[str, str] = {}
        #: every module this file imports, absolute-resolved
        self.imported_modules: list[tuple[str, ast.AST]] = []
        self._collect_imports()

    # -- import resolution -------------------------------------------------
    def _resolve_relative(self, level: int, name: str | None) -> str:
        """Make ``from ..x import y`` absolute using this module's name."""
        if level == 0:
            return name or ""
        base_parts = (self.module or "").split(".")
        # level=1 strips the module's own leaf, level=2 one package more...
        keep = len(base_parts) - level
        if keep < 0:
            keep = 0
        prefix = ".".join(base_parts[:keep])
        if name:
            return f"{prefix}.{name}" if prefix else name
        return prefix

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.module_aliases[local] = target
                    self.imported_modules.append((alias.name, node))
            elif isinstance(node, ast.ImportFrom):
                origin = self._resolve_relative(node.level, node.module)
                self.imported_modules.append((origin, node))
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imported_names[local] = f"{origin}.{alias.name}"

    def qualified_name(self, node: ast.AST) -> str | None:
        """Dotted name for ``Name``/``Attribute`` chains, alias-resolved.

        ``np.random.seed`` (with ``import numpy as np``) resolves to
        ``numpy.random.seed``; ``connect`` (with ``from sqlite3 import
        connect``) resolves to ``sqlite3.connect``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        parts.append(self.module_aliases.get(
            root, self.imported_names.get(root, root)))
        return ".".join(reversed(parts))


class Rule:
    """Base class: subclass, set the metadata, implement the hooks."""

    rule_id: str = ""
    category: str = ""          # "determinism" | "concurrency" | "layering"
    description: str = ""
    #: AST node types routed to :meth:`visit_node` (empty = none).
    node_types: tuple = ()
    #: module used when self-test snippets are linted (puts them in scope).
    selftest_module: str = "repro.faultlab.kernels"
    #: snippets that must each produce >= 1 finding of this rule.
    fires: tuple[str, ...] = ()
    #: snippets that must produce no finding of this rule.
    clean: tuple[str, ...] = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Module filter; default: lint every module."""
        return True

    def visit_node(self, node: ast.AST,
                   ctx: ModuleContext) -> Iterator[Finding]:
        """Per-node hook for the types named in :attr:`node_types`."""
        return iter(())

    def finish(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Module-level hook, called once after the walk (imports etc.)."""
        return iter(())

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(self.rule_id, ctx.path,
                       getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)


#: rule_id -> rule class, in registration order.
_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule (registration order)."""
    _load_builtin_rules()
    return [cls() for cls in _REGISTRY.values()]


def rule_catalog() -> list[dict]:
    """Static catalog (id, category, description) for docs and --rules."""
    _load_builtin_rules()
    return [{"rule": cls.rule_id, "category": cls.category,
             "description": cls.description}
            for cls in _REGISTRY.values()]


def _load_builtin_rules() -> None:
    # Imported lazily so the registry fills exactly once, and so rule
    # modules can import this one without a cycle.
    from . import rules_concurrency  # noqa: F401
    from . import rules_determinism  # noqa: F401
    from . import rules_layering  # noqa: F401


def module_name_for_path(path: str) -> str | None:
    """``src/repro/engine/pool.py`` -> ``repro.engine.pool``; else None.

    Files outside a ``repro`` package root (benchmarks, examples, ad-hoc
    scripts) get ``None``: scope-limited rules fall back to their
    out-of-tree policy.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" not in parts:
        return None
    idx = parts.index("repro")
    mod_parts = parts[idx:]
    if not mod_parts[-1].endswith(".py"):
        return None
    mod_parts[-1] = mod_parts[-1][:-3]
    if mod_parts[-1] == "__init__":
        mod_parts.pop()
    return ".".join(mod_parts)


def _comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """``(line, comment_text)`` for every real comment token.

    Tokenizing (rather than regexing raw lines) keeps pragma-shaped text
    inside strings and docstrings — like this module's own docs — from
    parsing as pragmas.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # ast.parse already reported unparseable modules


def parse_suppressions(source: str,
                       known_ids: set[str]) -> tuple[list[Suppression],
                                                     list[Finding]]:
    """Extract pragmas; malformed ones come back as NX000 findings."""
    suppressions: list[Suppression] = []
    problems: list[Finding] = []

    def problem(lineno: int, message: str) -> None:
        problems.append(Finding(PRAGMA_RULE_ID, "", lineno, 0, message))

    for lineno, text in _comment_tokens(source):
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        body = match.group("body").strip()
        allow = _ALLOW_RE.match(body)
        if not allow:
            problem(lineno, f"malformed pragma {body!r} (expected "
                            "'allow[RULE-ID] -- reason')")
            continue
        reason = allow.group("reason")
        if not reason:
            problem(lineno, "suppression is missing its '-- reason'")
            continue
        ids = tuple(part.strip() for part in
                    allow.group("ids").split(",") if part.strip())
        if PRAGMA_RULE_ID in ids:
            problem(lineno, f"{PRAGMA_RULE_ID} cannot be suppressed")
            continue
        unknown = [rid for rid in ids if rid not in known_ids]
        if unknown or not ids:
            problem(lineno, "unknown rule id(s) in suppression: "
                            f"{', '.join(unknown) or '(none given)'}")
            continue
        suppressions.append(Suppression(lineno, ids, reason))
    return suppressions, problems


def lint_source(source: str, path: str = "<snippet>",
                module: str | None = None,
                rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory module; the engine core behind lint_paths."""
    active = list(rules) if rules is not None else all_rules()
    known_ids = {rule.rule_id for rule in all_rules()}
    try:
        ctx = ModuleContext(path, source, module=module)
    except SyntaxError as error:
        return [Finding(PRAGMA_RULE_ID, path, error.lineno or 1, 0,
                        f"cannot parse module: {error.msg}")]
    applicable = [rule for rule in active if rule.applies_to(ctx)]
    dispatch: dict[type, list[Rule]] = {}
    for rule in applicable:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    raw: list[Finding] = []
    if dispatch:
        for node in ast.walk(ctx.tree):
            for rule in dispatch.get(type(node), ()):
                raw.extend(rule.visit_node(node, ctx))
    for rule in applicable:
        raw.extend(rule.finish(ctx))

    suppressions, problems = parse_suppressions(source, known_ids)
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, []).append(sup)

    findings: list[Finding] = []
    for finding in raw:
        matched = None
        for sup in by_line.get(finding.line, ()):
            if finding.rule_id in sup.rule_ids:
                matched = sup
                sup.used.add(finding.rule_id)
                break
        if matched is not None:
            findings.append(Finding(finding.rule_id, path, finding.line,
                                    finding.col, finding.message,
                                    suppressed=True,
                                    reason=matched.reason))
        else:
            findings.append(Finding(finding.rule_id, path, finding.line,
                                    finding.col, finding.message))
    for sup in suppressions:
        unused = [rid for rid in sup.rule_ids if rid not in sup.used]
        if unused:
            problems.append(Finding(
                PRAGMA_RULE_ID, "", sup.line, 0,
                f"unused suppression for {', '.join(unused)} "
                "(nothing to allow on this line)"))
    for finding in problems:
        findings.append(Finding(finding.rule_id, path, finding.line,
                                finding.col, finding.message))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


@dataclass
class LintReport:
    """All findings over a path sweep, plus the exit-code policy."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.unsuppressed else 0

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": {
                "findings": len(self.findings),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": len(self.findings) - len(self.unsuppressed),
            },
            "findings": [f.as_dict() for f in self.findings],
        }


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` under the given files/directories, sorted, deduped."""
    seen = []
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("__pycache__", ".git"))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    full = os.path.join(dirpath, name)
                    if full not in seen:
                        seen.append(full)
    return iter(seen)


def lint_paths(paths: Iterable[str],
               rules: Iterable[Rule] | None = None) -> LintReport:
    """Lint every python file under ``paths``."""
    report = LintReport()
    rule_list = list(rules) if rules is not None else all_rules()
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.files_checked += 1
        # Fresh rule instances per file keep rules stateless-by-default.
        report.findings.extend(
            lint_source(source, path=path,
                        rules=[type(rule)() for rule in rule_list]))
    return report
