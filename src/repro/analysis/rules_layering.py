"""Layering rules (NX3xx): the dependency arrows must keep pointing up.

``repro.obs`` is write-only telemetry for everything below the server:
kernels and campaigns may *emit* metrics/spans but results must never
depend on reading them back (disable obs, get bit-identical answers).
Kernel packages stay importable with no serving/observability stack at
all, and nothing may reach up into the CLI layer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .linting import Finding, ModuleContext, Rule, register
from .scopes import is_kernel_module, may_consume_obs

#: modules whose values must never steer non-obs control flow.
_OBS_PREFIX = "repro.obs"

#: top-of-stack modules nothing may import (the CLI owns process exit
#: codes and argv; experiments orchestrate, they are not a library).
_CLI_LAYER = ("repro.eval.cli", "repro.eval.experiments")


def _obs_rooted_names(ctx: ModuleContext) -> set[str]:
    """Local names bound to repro.obs modules or their members."""
    names = set()
    for local, target in ctx.module_aliases.items():
        if target == _OBS_PREFIX or target.startswith(_OBS_PREFIX + "."):
            names.add(local)
    for local, target in ctx.imported_names.items():
        if target.startswith(_OBS_PREFIX + "."):
            names.add(local)
    return names


@register
class ObsLoadBearing(Rule):
    rule_id = "NX301"
    category = "layering"
    description = ("repro.obs is write-only below the server: no if/while/"
                   "assert conditions on metric, span or logger values "
                   "outside obs/server/eval (disabling obs must be "
                   "behaviour-neutral)")
    node_types = (ast.If, ast.While, ast.IfExp, ast.Assert)
    selftest_module = "repro.engine.engine"
    fires = (
        "from ..obs import metrics\n"
        "def run(jobs):\n"
        "    if metrics.registry().snapshot()['counters']:\n"
        "        return []\n",
        "from ..obs import tracing\n"
        "def busy():\n"
        "    while tracing.recent_spans():\n"
        "        pass\n",
        "from ..obs.timeline import local_recorder\n"
        "def mode():\n"
        "    return 'hot' if local_recorder().latest() else 'cold'\n",
    )
    clean = (
        "from ..obs import metrics\n"
        "_RUNS = metrics.registry().counter('runs_total', 'runs')\n"
        "def run(jobs):\n"
        "    _RUNS.inc()\n"
        "    return list(jobs)\n",
        "from ..obs import tracing\n"
        "def run(job):\n"
        "    with tracing.span('engine.run'):\n"
        "        return job\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not may_consume_obs(ctx.module)

    def visit_node(self, node: ast.AST,
                   ctx: ModuleContext) -> Iterator[Finding]:
        obs_names = _obs_rooted_names(ctx)
        if not obs_names:
            return
        test = node.test
        for sub in ast.walk(test):
            if isinstance(sub, ast.Name) and sub.id in obs_names:
                yield self.finding(
                    ctx, test,
                    f"control flow conditioned on observability value "
                    f"'{sub.id}': repro.obs must never be load-bearing "
                    "(results must survive NANOXBAR_OBS=0)")
                return


@register
class KernelImportsUpperLayer(Rule):
    rule_id = "NX302"
    category = "layering"
    description = ("kernel packages (boolean/crossbar/xbareval/synthesis/"
                   "sat/arch) must not import repro.server or repro.obs; "
                   "compute stays runnable with no serving stack loaded")
    selftest_module = "repro.xbareval.delay"
    fires = (
        "from ..obs import metrics\n",
        "from ..server.client import ServerClient\n",
        "import repro.obs.tracing as tracing\n",
    )
    clean = (
        "import numpy as np\nfrom ..boolean.bitops import popcount_u64\n",
        "from ..crossbar.lattice import Lattice\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return is_kernel_module(ctx.module)

    def finish(self, ctx: ModuleContext) -> Iterator[Finding]:
        for origin, node in ctx.imported_modules:
            for banned in ("repro.obs", "repro.server"):
                if origin == banned or origin.startswith(banned + "."):
                    yield self.finding(
                        ctx, node,
                        f"kernel module imports '{origin}': kernels must "
                        "not depend on the observability/serving layers")


@register
class CliLayerImport(Rule):
    rule_id = "NX303"
    category = "layering"
    description = ("nothing imports repro.eval.cli or "
                   "repro.eval.experiments: the CLI/experiment layer is "
                   "the top of the stack")
    selftest_module = "repro.engine.engine"
    fires = (
        "from ..eval.cli import main\n",
        "from repro.eval.experiments import get_experiment\n",
    )
    clean = (
        "from ..eval.benchsuite import by_name\n",
        "from ..eval.tables import format_table\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module is not None and \
            not ctx.module.startswith("repro.eval")

    def finish(self, ctx: ModuleContext) -> Iterator[Finding]:
        for origin, node in ctx.imported_modules:
            for banned in _CLI_LAYER:
                if origin == banned or origin.startswith(banned + "."):
                    yield self.finding(
                        ctx, node,
                        f"import of top-of-stack module '{origin}' "
                        "(CLI/experiment layer): invert the dependency")
