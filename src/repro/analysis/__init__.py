"""repro.analysis — invariant lint engine + runtime concurrency sanitizer.

The reproduction's guarantees (bit-exact kernels, content-addressed
campaign entropy, serial == pooled == served identity, fork-safety from
server worker threads) were enforced by convention and by bugs already
paid for.  This package turns them into machine checks:

* :mod:`repro.analysis.linting` — single-pass AST lint engine: visitor
  dispatch, rule registry, per-line ``# nanoxbar: allow[RULE] -- reason``
  suppressions, human + JSON output (``nanoxbar lint``).
* :mod:`repro.analysis.rules_determinism` (NX1xx),
  :mod:`repro.analysis.rules_concurrency` (NX2xx),
  :mod:`repro.analysis.rules_layering` (NX3xx) — the repo-specific rule
  catalog; ``nanoxbar lint --rules`` prints it.
* :mod:`repro.analysis.selftest` — every rule proves it fires on its
  violating fixture and stays silent on the repaired form
  (``nanoxbar lint --self-test``).
* :mod:`repro.analysis.lockwatch` — runtime sanitizer: instruments locks
  created after install to flag lock-order inversions and locks held
  across ``os.fork`` / pool spawn (``NANOXBAR_LOCKCHECK=1``).

Quickstart::

    from repro.analysis import lint_paths, render_human
    report = lint_paths(["src"])
    print(render_human(report))
    raise SystemExit(report.exit_code)
"""

from . import lockwatch
from .linting import (
    Finding,
    LintReport,
    ModuleContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
    rule_catalog,
)
from .lockwatch import LockWatch
from .report import render_human, render_json, render_rules
from .selftest import run_selftest

__all__ = [
    "Finding",
    "LintReport",
    "LockWatch",
    "ModuleContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "lockwatch",
    "register",
    "render_human",
    "render_json",
    "render_rules",
    "rule_catalog",
    "run_selftest",
]
