"""Rule self-test: every rule proves it fires and stays silent.

Each rule carries embedded fixture snippets (``fires`` / ``clean``); this
module lints them in isolation under the rule's declared
``selftest_module`` scope and reports any rule whose behaviour drifted.
Surfaced as ``nanoxbar lint --self-test`` and exercised again by the
pytest suite — a lint engine that silently stopped firing is worse than
no lint engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .linting import all_rules, lint_source


@dataclass
class SelfTestResult:
    """Per-rule pass/fail plus human-readable failure detail."""

    failures: list[str] = field(default_factory=list)
    rules_checked: int = 0
    snippets_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "ok" if self.ok else "FAILED"
        lines = [f"lint self-test {status}: {self.rules_checked} rules, "
                 f"{self.snippets_checked} snippets"]
        lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)


def run_selftest() -> SelfTestResult:
    result = SelfTestResult()
    for rule in all_rules():
        result.rules_checked += 1
        if not rule.fires:
            result.failures.append(
                f"{rule.rule_id}: no 'fires' fixture snippets declared")
        for kind, snippets in (("fires", rule.fires), ("clean", rule.clean)):
            for index, snippet in enumerate(snippets):
                result.snippets_checked += 1
                findings = [
                    f for f in lint_source(
                        snippet,
                        path=f"<{rule.rule_id}:{kind}[{index}]>",
                        module=rule.selftest_module,
                        rules=[type(rule)()])
                    if f.rule_id == rule.rule_id
                ]
                if kind == "fires" and not findings:
                    result.failures.append(
                        f"{rule.rule_id} fires[{index}]: expected a "
                        f"finding, got none — snippet:\n{snippet}")
                elif kind == "clean" and findings:
                    result.failures.append(
                        f"{rule.rule_id} clean[{index}]: unexpected "
                        f"finding {findings[0].message!r}")
    return result
