"""Rendering for lint results: human text and machine JSON."""

from __future__ import annotations

import json

from .linting import LintReport, rule_catalog


def render_human(report: LintReport, show_suppressed: bool = False) -> str:
    """The terminal face: one line per finding plus a summary."""
    lines = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(finding.render())
    suppressed = len(report.findings) - len(report.unsuppressed)
    summary = (f"{report.files_checked} files checked: "
               f"{len(report.unsuppressed)} finding(s), "
               f"{suppressed} suppressed")
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def render_rules() -> str:
    """The ``--rules`` catalog table."""
    rows = rule_catalog()
    lines = [f"{'rule':6s} {'category':12s} description"]
    for row in rows:
        lines.append(f"{row['rule']:6s} {row['category']:12s} "
                     f"{row['description']}")
    return "\n".join(lines)
