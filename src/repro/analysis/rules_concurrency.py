"""Concurrency rules (NX2xx): paid-for bugs, mechanised.

PR 5 hit a fork-from-threads deadlock (children inheriting held mutexes)
and concurrent-writer SQLite locking; these rules pin the resulting
discipline — process creation and SQLite connections each have exactly
one owning module — plus the classic leaked-``acquire`` hazard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .linting import Finding, ModuleContext, Rule, register
from .scopes import may_open_sqlite, may_start_processes

#: process-starting attributes on the multiprocessing module itself.
_MP_STARTERS = frozenset({"Pool", "Process", "get_context",
                          "set_start_method", "spawn", "forkserver"})


@register
class StraySqliteConnect(Rule):
    rule_id = "NX201"
    category = "concurrency"
    description = ("sqlite3.connect only inside engine.cache / "
                   "engine.store: they own WAL mode, busy timeouts and "
                   "the cross-thread connection discipline")
    node_types = (ast.Call,)
    selftest_module = "repro.server.worker"
    fires = (
        "import sqlite3\nconn = sqlite3.connect('results.sqlite')\n",
        "from sqlite3 import connect\nconn = connect(':memory:')\n",
    )
    clean = (
        "import sqlite3\n"
        "try:\n    pass\nexcept sqlite3.DatabaseError:\n    raise\n",
        "from ..engine.store import JsonStore\n"
        "store = JsonStore(':memory:')\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not may_open_sqlite(ctx.module)

    def visit_node(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.qualified_name(node.func) == "sqlite3.connect":
            yield self.finding(
                ctx, node,
                "direct sqlite3.connect outside engine.cache/engine.store; "
                "go through ResultCache / JsonStore")


@register
class RawProcessSpawn(Rule):
    rule_id = "NX202"
    category = "concurrency"
    description = ("no raw multiprocessing starts (Pool/Process/"
                   "get_context) or os.fork outside engine.pool: its "
                   "_pool_context owns start-method selection (fork from "
                   "server worker threads deadlocks)")
    node_types = (ast.Call,)
    selftest_module = "repro.faultlab.campaign"
    fires = (
        "import multiprocessing\n"
        "pool = multiprocessing.Pool(4)\n",
        "import multiprocessing as mp\n"
        "ctx = mp.get_context('fork')\n",
        "import os\npid = os.fork()\n",
    )
    clean = (
        "from ..engine.pool import map_sharded\n"
        "out = map_sharded(func, tasks, processes=4)\n",
        "import multiprocessing\n"
        "methods = multiprocessing.get_all_start_methods()\n",
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not may_start_processes(ctx.module)

    def visit_node(self, node: ast.Call,
                   ctx: ModuleContext) -> Iterator[Finding]:
        name = ctx.qualified_name(node.func)
        if name is None:
            return
        if name == "os.fork":
            yield self.finding(
                ctx, node,
                "direct os.fork outside engine.pool: a fork from a "
                "threaded process inherits held mutexes")
            return
        if name.startswith("multiprocessing.") and \
                name.rsplit(".", 1)[1] in _MP_STARTERS:
            yield self.finding(
                ctx, node,
                f"raw '{name}' outside engine.pool._pool_context; route "
                "process creation through engine.pool")


@register
class BareLockAcquire(Rule):
    rule_id = "NX203"
    category = "concurrency"
    description = ("no bare .acquire() statements: a raise between "
                   "acquire and release leaks the lock; use 'with lock:'")
    node_types = (ast.Expr,)
    selftest_module = "repro.engine.engine"
    fires = (
        "import threading\nlock = threading.Lock()\nlock.acquire()\n",
        "class Box:\n"
        "    def grab(self):\n        self._lock.acquire()\n",
    )
    clean = (
        "import threading\nlock = threading.Lock()\n"
        "with lock:\n    pass\n",
        "def try_grab(lock):\n"
        "    if lock.acquire(timeout=0.5):\n"
        "        try:\n            pass\n"
        "        finally:\n            lock.release()\n",
    )

    def visit_node(self, node: ast.Expr,
                   ctx: ModuleContext) -> Iterator[Finding]:
        call = node.value
        if isinstance(call, ast.Call) and \
                isinstance(call.func, ast.Attribute) and \
                call.func.attr == "acquire":
            yield self.finding(
                ctx, node,
                "bare .acquire() statement (no 'with', result unused): "
                "an exception before release() deadlocks later users")
