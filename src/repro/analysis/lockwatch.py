"""Runtime lock sanitizer: order-inversion and fork-while-held detection.

``NANOXBAR_LOCKCHECK=1`` (wired through ``tests/conftest.py``) patches
``threading.Lock`` / ``threading.RLock`` so every lock created afterwards
is instrumented.  The watcher maintains

* a per-thread stack of held locks, and a global *acquisition-order
  graph*: an edge ``A -> B`` the first time some thread acquires ``B``
  while holding ``A``.  Observing both ``A -> B`` and ``B -> A`` is a
  potential deadlock even if this run never interleaved badly — the
  classic lockset argument — and is recorded as a violation with both
  witness sites.
* a global table of currently-held locks, checked when the process is
  about to ``os.fork`` (or when :func:`check_fork_safety` is called at a
  pool-spawn boundary): a lock held by *another* thread at fork time is
  copied locked into the child and can never be released there — the
  exact deadlock PR 5 paid for.

Violations are recorded (and logged once each), not raised: the
sanitizer must be able to run under the whole tier-1 suite.  The pytest
wiring fails the session if any violation was recorded; tests that seed
violations on purpose use a private :class:`LockWatch` instance.

Locks created *before* :func:`install` (module-import-time locks) are
not instrumented; coverage targets the engines, stores, servers and
recorders each test constructs.
"""

from __future__ import annotations

import _thread
import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Iterator

ENV_FLAG = "NANOXBAR_LOCKCHECK"

#: stdlib frames to skip past when attributing an acquire site: the
#: sanitizer wants the *application* frame, not Condition/Queue innards.
_SKIP_SUFFIXES = ("lockwatch.py", "threading.py", "queue.py")


def _call_site() -> str:
    """``file:line`` of the nearest frame outside this module (cheap:
    raw frame walk, no source loading — this runs on every acquire)."""
    frame = sys._getframe(1)
    while frame is not None and \
            frame.f_code.co_filename.endswith(_SKIP_SUFFIXES):
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


@dataclass(frozen=True)
class LockViolation:
    """One recorded hazard."""

    kind: str              # "lock-order-inversion" | "fork-while-held"
    message: str
    locks: tuple[str, ...] = ()
    sites: tuple[str, ...] = ()

    def render(self) -> str:
        detail = "; ".join(self.sites)
        return f"[{self.kind}] {self.message}" + \
            (f"  ({detail})" if detail else "")


@dataclass
class _Held:
    lock_uid: int
    name: str
    thread_id: int
    site: str
    count: int = 1


class LockWatch:
    """One sanitizer instance (the installed one is process-global)."""

    def __init__(self) -> None:
        self._meta = _thread.allocate_lock()   # raw: never instrumented
        self._next_uid = 0
        #: (uid_a, uid_b) -> witness "nameA@siteA -> nameB@siteB"
        self._edges: dict[tuple[int, int], str] = {}
        #: thread id -> ordered list of _Held
        self._stacks: dict[int, list[_Held]] = {}
        self._violations: list[LockViolation] = []
        self._names: dict[int, str] = {}

    # -- factories --------------------------------------------------------
    def make_lock(self, name: str | None = None) -> "_WatchedLock":
        return _WatchedLock(self, self._register(name))

    def make_rlock(self, name: str | None = None) -> "_WatchedRLock":
        lock = _WatchedRLock(self)
        lock._watch_uid = self._register(name)
        return lock

    def _register(self, name: str | None) -> int:
        with self._meta:
            self._next_uid += 1
            uid = self._next_uid
            self._names[uid] = name or f"lock-{uid}@{_call_site()}"
        return uid

    # -- reporting --------------------------------------------------------
    def violations(self) -> list[LockViolation]:
        with self._meta:
            return list(self._violations)

    def clear(self) -> None:
        with self._meta:
            self._violations.clear()
            self._edges.clear()

    def render_report(self) -> str:
        violations = self.violations()
        if not violations:
            return "lockwatch: no violations recorded"
        lines = [f"lockwatch: {len(violations)} violation(s)"]
        lines.extend("  " + violation.render() for violation in violations)
        return "\n".join(lines)

    def _record(self, violation: LockViolation) -> None:
        # Caller holds _meta: only append here.  Telemetry goes through
        # _log_after, *outside* _meta — log_event may itself acquire an
        # instrumented lock, which would re-enter the watcher.
        self._violations.append(violation)

    @staticmethod
    def _log_after(violations: list[LockViolation]) -> None:
        for violation in violations:
            try:
                from ..obs import get_logger, log_event
                log_event(get_logger("analysis.lockwatch"),
                          violation.message, kind=violation.kind)
            except Exception:
                pass  # never let telemetry break the sanitizer

    # -- acquisition bookkeeping -----------------------------------------
    def _note_acquired(self, uid: int, site: str) -> None:
        tid = threading.get_ident()
        new_violations: list[LockViolation] = []
        with self._meta:
            stack = self._stacks.setdefault(tid, [])
            for held in stack:
                if held.lock_uid == uid:
                    held.count += 1       # reentrant re-acquire
                    return
            for held in stack:
                edge = (held.lock_uid, uid)
                reverse = (uid, held.lock_uid)
                witness = (f"{self._names[held.lock_uid]}"
                           f"@{held.site} -> {self._names[uid]}@{site}")
                if reverse in self._edges and edge not in self._edges:
                    violation = LockViolation(
                        "lock-order-inversion",
                        f"{self._names[held.lock_uid]} and "
                        f"{self._names[uid]} are acquired in both orders",
                        locks=(self._names[held.lock_uid],
                               self._names[uid]),
                        sites=(self._edges[reverse], witness))
                    self._record(violation)
                    new_violations.append(violation)
                self._edges.setdefault(edge, witness)
            stack.append(_Held(uid, self._names[uid], tid, site))
        self._log_after(new_violations)

    def _note_released(self, uid: int, fully: bool = False) -> None:
        tid = threading.get_ident()
        with self._meta:
            stack = self._stacks.get(tid, [])
            for index in range(len(stack) - 1, -1, -1):
                if stack[index].lock_uid == uid:
                    stack[index].count -= 1
                    if fully or stack[index].count <= 0:
                        del stack[index]
                    break

    def _held_elsewhere(self, tid: int) -> Iterator[_Held]:
        for other_tid, stack in self._stacks.items():
            if other_tid != tid:
                yield from stack

    def check_fork_safety(self, origin: str) -> None:
        """Record a violation if another thread holds a watched lock."""
        tid = threading.get_ident()
        alive = {t.ident for t in threading.enumerate()}
        new_violations: list[LockViolation] = []
        with self._meta:
            held = [h for h in self._held_elsewhere(tid)
                    if h.thread_id in alive]
            if held:
                names = sorted(f"{h.name}@{h.site}" for h in held)
                violation = LockViolation(
                    "fork-while-held",
                    f"{origin}: {len(held)} lock(s) held by other "
                    "threads would be copied locked into the child",
                    locks=tuple(h.name for h in held),
                    sites=tuple(names))
                self._record(violation)
                new_violations.append(violation)
        self._log_after(new_violations)


class _WatchedLock:
    """Proxy around a raw lock; API-compatible with threading.Lock."""

    def __init__(self, watch: LockWatch, uid: int) -> None:
        self._watch = watch
        self._watch_uid = uid
        self._inner = _thread.allocate_lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._watch._note_acquired(self._watch_uid, _call_site())
        return ok

    def release(self) -> None:
        self._inner.release()
        self._watch._note_released(self._watch_uid)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:
        self._inner = _thread.allocate_lock()

    def __repr__(self) -> str:
        return (f"<WatchedLock {self._watch._names.get(self._watch_uid)} "
                f"locked={self.locked()}>")


class _WatchedRLock(threading._RLock):
    """Instrumented reentrant lock.

    Subclasses the pure-python RLock so ``threading.Condition`` keeps its
    ``_is_owned`` / ``_release_save`` / ``_acquire_restore`` fast paths —
    those bypass ``release()``, so they are overridden here to keep the
    held-stack truthful across ``Condition.wait``.
    """

    _watch_uid = 0

    def __init__(self, watch: LockWatch) -> None:
        super().__init__()
        self._watch = watch

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = super().acquire(blocking, timeout)
        if ok:
            self._watch._note_acquired(self._watch_uid, _call_site())
        return ok

    __enter__ = acquire

    def release(self) -> None:
        super().release()
        self._watch._note_released(self._watch_uid)

    def _release_save(self):  # Condition.wait: full release
        state = super()._release_save()
        self._watch._note_released(self._watch_uid, fully=True)
        return state

    def _acquire_restore(self, state) -> None:  # Condition.wait: reacquire
        super()._acquire_restore(state)
        self._watch._note_acquired(self._watch_uid, _call_site())


_active: LockWatch | None = None
_saved_factories: tuple | None = None
_fork_hook_registered = False


def active_watcher() -> LockWatch | None:
    """The installed process-global watcher, if any."""
    return _active


def enabled_by_env() -> bool:
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def install(watch: LockWatch | None = None) -> LockWatch:
    """Patch threading's lock factories; idempotent."""
    global _active, _saved_factories, _fork_hook_registered
    if _active is not None:
        return _active
    _active = watch or LockWatch()
    _saved_factories = (threading.Lock, threading.RLock)

    def _lock_factory() -> _WatchedLock:
        return _active.make_lock() if _active is not None \
            else _thread.allocate_lock()

    def _rlock_factory() -> _WatchedRLock:
        return _active.make_rlock() if _active is not None \
            else threading._RLock()

    threading.Lock = _lock_factory            # type: ignore[assignment]
    threading.RLock = _rlock_factory          # type: ignore[assignment]
    if not _fork_hook_registered and hasattr(os, "register_at_fork"):
        # register_at_fork cannot be undone, so the hook checks _active.
        os.register_at_fork(before=_before_fork)
        _fork_hook_registered = True
    return _active


def uninstall() -> None:
    """Restore the stock factories (existing watched locks keep working)."""
    global _active, _saved_factories
    if _saved_factories is not None:
        threading.Lock, threading.RLock = _saved_factories
        _saved_factories = None
    _active = None


def _before_fork() -> None:
    if _active is not None:
        _active.check_fork_safety("os.fork")


def check_fork_safety(origin: str) -> None:
    """Pool-spawn boundary check (no-op unless a watcher is installed)."""
    if _active is not None:
        _active.check_fork_safety(origin)


def install_from_env() -> LockWatch | None:
    """Install iff ``NANOXBAR_LOCKCHECK`` is set; returns the watcher."""
    if enabled_by_env():
        return install()
    return None
