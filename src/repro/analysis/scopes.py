"""Which invariant applies where: the repo's module taxonomy.

One place to answer "is this a kernel module?", "may this file open
SQLite?", so the rules stay mechanical.  Files outside the ``repro``
package (benchmarks, examples, scripts) have module ``None``; each helper
states its out-of-tree policy explicitly.
"""

from __future__ import annotations

#: Packages whose results must be bit-reproducible: compute kernels and
#: the Monte-Carlo campaign layers built on them.
DETERMINISM_PACKAGES = (
    "repro.boolean",
    "repro.crossbar",
    "repro.xbareval",
    "repro.synthesis",
    "repro.sat",
    "repro.faultlab",
    "repro.varsim",
)

#: Pure-compute packages that must stay importable with zero knowledge of
#: the serving/observability layers above them.
KERNEL_PACKAGES = (
    "repro.boolean",
    "repro.crossbar",
    "repro.xbareval",
    "repro.synthesis",
    "repro.sat",
    "repro.arch",
)

#: Layers allowed to condition control flow on observability state
#: (they *present* telemetry; everything below must only emit it).
OBS_CONSUMER_PACKAGES = (
    "repro.obs",
    "repro.server",
    "repro.eval",
    "repro.analysis",
)

#: The only modules that may open SQLite connections; everything else
#: goes through their connection-owning classes (WAL mode, busy
#: timeouts, cross-thread discipline live there).
SQLITE_OWNERS = (
    "repro.engine.cache",
    "repro.engine.store",
)

#: The only module that may start worker processes; it owns start-method
#: selection (fork from server worker threads deadlocked — PR 5).
PROCESS_OWNERS = (
    "repro.engine.pool",
)


def in_packages(module: str | None, packages: tuple[str, ...]) -> bool:
    if module is None:
        return False
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in packages)


def is_determinism_scope(module: str | None) -> bool:
    """Out-of-tree files (benchmarks/examples) are held to it too: they
    assert bit-exactness against committed artifacts."""
    return module is None or in_packages(module, DETERMINISM_PACKAGES)


def is_kernel_module(module: str | None) -> bool:
    return in_packages(module, KERNEL_PACKAGES)


def may_consume_obs(module: str | None) -> bool:
    """Out-of-tree files may read telemetry (the obs benches must)."""
    return module is None or in_packages(module, OBS_CONSUMER_PACKAGES)


def may_open_sqlite(module: str | None) -> bool:
    return in_packages(module, SQLITE_OWNERS)


def may_start_processes(module: str | None) -> bool:
    return in_packages(module, PROCESS_OWNERS)
