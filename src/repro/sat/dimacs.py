"""DIMACS CNF reader/writer (for interoperability and test corpora)."""

from __future__ import annotations

from .cnf import Cnf


def parse_dimacs(text: str) -> Cnf:
    """Parse DIMACS CNF text."""
    cnf: Cnf | None = None
    pending: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"bad problem line: {line!r}")
            cnf = Cnf(int(parts[2]))
            continue
        if cnf is None:
            raise ValueError("clause line before problem line")
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if cnf is None:
        raise ValueError("missing problem line")
    if pending:
        cnf.add_clause(pending)
    return cnf


def write_dimacs(cnf: Cnf) -> str:
    """Serialise a CNF to DIMACS text."""
    lines = [f"p cnf {cnf.num_vars} {len(cnf.clauses)}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"
