"""A CDCL SAT solver in pure Python.

This is the substrate behind the exact lattice-synthesis flow
(:mod:`repro.synthesis.lattice_optimal`): the environment has no external
SAT solver, so the package carries its own.  The design follows MiniSat:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style variable activities with exponential decay,
* phase saving and Luby-sequence restarts.

The solver is complete; performance is adequate for the instance sizes the
paper's experiments need (thousands of variables / tens of thousands of
clauses).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from .cnf import Cnf


class SolverError(RuntimeError):
    """Raised on internal inconsistencies (should never happen)."""


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    if i < 1:
        raise ValueError("luby index is 1-based")
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    if (1 << k) - 1 == i:
        return 1 << (k - 1)
    return luby(i - ((1 << (k - 1)) - 1))


class Solver:
    """CDCL solver over DIMACS-style integer literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        self.assign: dict[int, bool] = {}
        self.level: dict[int, int] = {}
        self.reason: dict[int, int | None] = {}
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.activity: dict[int, float] = {}
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.saved_phase: dict[int, bool] = {}
        self.order_heap: list[tuple[float, int]] = []
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def _register_var(self, var: int) -> None:
        if var > self.num_vars:
            for v in range(self.num_vars + 1, var + 1):
                self.activity[v] = 0.0
                heapq.heappush(self.order_heap, (0.0, v))
            self.num_vars = var

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False when the formula became trivially UNSAT."""
        if not self.ok:
            return False
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._register_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
        # Level-0 simplification.
        simplified: list[int] = []
        for lit in clause:
            val = self._value(lit)
            if val is True:
                return True
            if val is None:
                simplified.append(lit)
        if not simplified:
            self.ok = False
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        index = len(self.clauses)
        self.clauses.append(simplified)
        self.watches.setdefault(simplified[0], []).append(index)
        self.watches.setdefault(simplified[1], []).append(index)
        return True

    def add_cnf(self, cnf: Cnf) -> bool:
        self._register_var(cnf.num_vars)
        for clause in cnf:
            if not self.add_clause(clause):
                return False
        return True

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> bool | None:
        val = self.assign.get(abs(lit))
        if val is None:
            return None
        return val if lit > 0 else not val

    def _current_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason_idx: int | None) -> bool:
        val = self._value(lit)
        if val is not None:
            return val
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = self._current_level()
        self.reason[var] = reason_idx
        self.trail.append(lit)
        return True

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.qhead < len(self.trail):
            p = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            false_lit = -p
            watchlist = self.watches.get(false_lit)
            if not watchlist:
                continue
            i = j = 0
            while i < len(watchlist):
                ci = watchlist[i]
                i += 1
                clause = self.clauses[ci]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    watchlist[j] = ci
                    j += 1
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(ci)
                        break
                else:
                    watchlist[j] = ci
                    j += 1
                    if self._value(first) is False:
                        while i < len(watchlist):
                            watchlist[j] = watchlist[i]
                            j += 1
                            i += 1
                        del watchlist[j:]
                        self.qhead = len(self.trail)
                        return ci
                    self._enqueue(first, ci)
            del watchlist[j:]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in self.activity:
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self.order_heap, (-self.activity[var], var))

    def _analyze(self, conflict_idx: int) -> tuple[list[int], int]:
        """Derive the 1UIP learned clause and its backjump level."""
        learnt: list[int] = []
        seen: set[int] = set()
        counter = 0
        p: int | None = None
        clause = self.clauses[conflict_idx]
        index = len(self.trail) - 1
        current = self._current_level()
        while True:
            for q in clause:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if var in seen or self.level[var] == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self.level[var] == current:
                    counter += 1
                else:
                    learnt.append(q)
            while abs(self.trail[index]) not in seen:
                index -= 1
            p_lit = self.trail[index]
            index -= 1
            var = abs(p_lit)
            seen.discard(var)
            counter -= 1
            if counter == 0:
                p = p_lit
                break
            reason_idx = self.reason[var]
            if reason_idx is None:
                raise SolverError("non-UIP literal without a reason")
            clause = self.clauses[reason_idx]
            p = p_lit
        learnt.insert(0, -p)
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((self.level[abs(q)] for q in learnt[1:]), reverse=True)
        back_level = levels[0]
        # Put a literal of the backjump level in watch position 1.
        for k in range(1, len(learnt)):
            if self.level[abs(learnt[k])] == back_level:
                learnt[1], learnt[k] = learnt[k], learnt[1]
                break
        return learnt, back_level

    def _backtrack(self, target_level: int) -> None:
        if self._current_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in reversed(self.trail[boundary:]):
            var = abs(lit)
            self.saved_phase[var] = self.assign[var]
            del self.assign[var]
            del self.level[var]
            del self.reason[var]
            heapq.heappush(self.order_heap, (-self.activity[var], var))
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int | None:
        # Lazy-deletion heap: stale entries only perturb the order, never
        # correctness, so the first unassigned entry is good enough.
        while self.order_heap:
            _, var = heapq.heappop(self.order_heap)
            if var not in self.assign:
                return var
        for var in range(1, self.num_vars + 1):
            if var not in self.assign:
                return var
        return None

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: int | None = None) -> bool | None:
        """Decide satisfiability.

        Args:
            assumptions: literals assumed true for this call only.
            conflict_budget: optional conflict cap; ``None`` result on budget
                exhaustion.

        Returns:
            True (SAT — model available via :meth:`model`), False (UNSAT),
            or None when the budget ran out.
        """
        if not self.ok:
            return False
        for lit in assumptions:
            self._register_var(abs(lit))
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return False
        restart_count = 0
        conflicts_until_restart = 100 * luby(1)
        total_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                total_conflicts += 1
                if self._current_level() == 0:
                    self.ok = False
                    return False
                learnt, back_level = self._analyze(conflict)
                # Backjumping may undo assumption levels; the decision loop
                # re-establishes them and detects contradicted assumptions.
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self.ok = False
                        return False
                else:
                    index = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches.setdefault(learnt[0], []).append(index)
                    self.watches.setdefault(learnt[1], []).append(index)
                    self._enqueue(learnt[0], index)
                self.var_inc *= self.var_decay
                if conflict_budget is not None and total_conflicts >= conflict_budget:
                    self._backtrack(0)
                    return None
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_count += 1
                    conflicts_until_restart = 100 * luby(restart_count + 1)
                    self._backtrack(min(len(assumptions), self._current_level()))
                continue
            # No conflict: extend the assignment.
            if self._current_level() < len(assumptions):
                lit = assumptions[self._current_level()]
                val = self._value(lit)
                if val is False:
                    self._backtrack(0)
                    return False
                self.trail_lim.append(len(self.trail))
                if val is None:
                    self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var is None:
                return True
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            phase = self.saved_phase.get(var, False)
            self._enqueue(var if phase else -var, None)

    # ------------------------------------------------------------------
    def model(self) -> dict[int, bool]:
        """The satisfying assignment after a True result."""
        return {var: self.assign.get(var, False) for var in range(1, self.num_vars + 1)}

    def statistics(self) -> dict[str, int]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "clauses": len(self.clauses),
            "vars": self.num_vars,
        }


def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = ()) -> dict[int, bool] | None:
    """One-shot convenience wrapper: returns a model dict or ``None``."""
    solver = Solver()
    if not solver.add_cnf(cnf):
        return None
    result = solver.solve(assumptions)
    if result is True:
        model = solver.model()
        return model
    return None


def brute_force_cnf(cnf: Cnf) -> dict[int, bool] | None:
    """Exponential reference solver used to validate the CDCL engine."""
    n = cnf.num_vars
    if n > 22:
        raise ValueError("brute force limited to 22 variables")
    for bits in range(1 << n):
        model = {v: bool((bits >> (v - 1)) & 1) for v in range(1, n + 1)}
        if cnf.evaluate(model):
            return model
    return None
