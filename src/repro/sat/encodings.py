"""Reusable CNF encodings: cardinality constraints and Tseitin gates.

Used by the exact lattice synthesiser (one-hot site labels) and by the
diagnosis-configuration optimiser.
"""

from __future__ import annotations

from typing import Sequence

from .cnf import Cnf


def at_least_one(cnf: Cnf, literals: Sequence[int]) -> None:
    """ALO: the disjunction of the literals."""
    if not literals:
        raise ValueError("at_least_one of an empty set is unsatisfiable")
    cnf.add_clause(literals)


def at_most_one_pairwise(cnf: Cnf, literals: Sequence[int]) -> None:
    """AMO via pairwise exclusion: O(k^2) binary clauses, no new variables."""
    for i, a in enumerate(literals):
        for b in literals[i + 1:]:
            cnf.add_clause([-a, -b])


def at_most_one_sequential(cnf: Cnf, literals: Sequence[int]) -> None:
    """AMO via the sequential (ladder) encoding: O(k) clauses and variables.

    Introduces auxiliary 'prefix contains a true literal' variables.
    """
    k = len(literals)
    if k <= 4:
        at_most_one_pairwise(cnf, literals)
        return
    prefix = cnf.new_vars(k - 1)
    cnf.add_clause([-literals[0], prefix[0]])
    for i in range(1, k - 1):
        cnf.add_clause([-literals[i], prefix[i]])
        cnf.add_clause([-prefix[i - 1], prefix[i]])
        cnf.add_clause([-literals[i], -prefix[i - 1]])
    cnf.add_clause([-literals[k - 1], -prefix[k - 2]])


def exactly_one(cnf: Cnf, literals: Sequence[int], pairwise: bool = True) -> None:
    """EO = ALO + AMO."""
    at_least_one(cnf, literals)
    if pairwise:
        at_most_one_pairwise(cnf, literals)
    else:
        at_most_one_sequential(cnf, literals)


def at_most_k_sequential(cnf: Cnf, literals: Sequence[int], k: int) -> None:
    """Sequential counter encoding of ``sum(literals) <= k``."""
    if k < 0:
        raise ValueError("k must be non-negative")
    n = len(literals)
    if k >= n:
        return
    if k == 0:
        for lit in literals:
            cnf.add_clause([-lit])
        return
    # registers[i][j]: after the first i+1 literals, at least j+1 are true.
    registers = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-literals[0], registers[0][0]])
    for j in range(1, k):
        cnf.add_clause([-registers[0][j]])
    for i in range(1, n):
        cnf.add_clause([-literals[i], registers[i][0]])
        cnf.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            cnf.add_clause([-literals[i], -registers[i - 1][j - 1], registers[i][j]])
            cnf.add_clause([-registers[i - 1][j], registers[i][j]])
        cnf.add_clause([-literals[i], -registers[i - 1][k - 1]])
    # (final overflow clauses are included in the loop's last iteration)


def tseitin_and(cnf: Cnf, inputs: Sequence[int]) -> int:
    """Fresh variable equivalent to the conjunction of the inputs."""
    out = cnf.new_var()
    for lit in inputs:
        cnf.add_clause([-out, lit])
    cnf.add_clause([out] + [-lit for lit in inputs])
    return out


def tseitin_or(cnf: Cnf, inputs: Sequence[int]) -> int:
    """Fresh variable equivalent to the disjunction of the inputs."""
    out = cnf.new_var()
    for lit in inputs:
        cnf.add_clause([out, -lit])
    cnf.add_clause([-out] + list(inputs))
    return out


def tseitin_xor(cnf: Cnf, a: int, b: int) -> int:
    """Fresh variable equivalent to ``a XOR b``."""
    out = cnf.new_var()
    cnf.add_clause([-out, a, b])
    cnf.add_clause([-out, -a, -b])
    cnf.add_clause([out, -a, b])
    cnf.add_clause([out, a, -b])
    return out


def implies_all(cnf: Cnf, antecedent: int, consequents: Sequence[int]) -> None:
    """antecedent -> every consequent."""
    for lit in consequents:
        cnf.add_clause([-antecedent, lit])
