"""CNF formula container.

Literals use the DIMACS convention: variables are positive integers and a
negative integer denotes negation.  :class:`Cnf` owns the variable counter
so encoders can allocate fresh auxiliary variables (Tseitin, cardinality
networks) without collisions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class Cnf:
    """A growable CNF formula."""

    def __init__(self, num_vars: int = 0):
        if num_vars < 0:
            raise ValueError("variable count must be non-negative")
        self.num_vars = num_vars
        self.clauses: list[tuple[int, ...]] = []

    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; deduplicates literals, keeps tautologies out."""
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
            if -lit in seen:
                return  # tautology: x | ~x
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self.clauses.append(tuple(clause))

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend_from(self, other: "Cnf") -> None:
        """Append another formula's clauses (variable spaces must align)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        self.clauses.extend(other.clauses)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.clauses)

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"

    # ------------------------------------------------------------------
    def evaluate(self, model: dict[int, bool] | Sequence[bool]) -> bool:
        """Check a model (dict var->bool, or 0-indexed sequence) satisfies."""

        def value(lit: int) -> bool:
            var = abs(lit)
            if isinstance(model, dict):
                val = model.get(var, False)
            else:
                val = bool(model[var - 1]) if var - 1 < len(model) else False
            return val if lit > 0 else not val

        return all(any(value(lit) for lit in clause) for clause in self.clauses)
