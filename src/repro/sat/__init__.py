"""Pure-Python SAT substrate (CNF, CDCL solver, encodings, DIMACS I/O)."""

from .cnf import Cnf
from .dimacs import parse_dimacs, write_dimacs
from .encodings import (
    at_least_one,
    at_most_k_sequential,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
    implies_all,
    tseitin_and,
    tseitin_or,
    tseitin_xor,
)
from .solver import Solver, SolverError, brute_force_cnf, luby, solve_cnf

__all__ = [
    "Cnf",
    "Solver",
    "SolverError",
    "at_least_one",
    "at_most_k_sequential",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "brute_force_cnf",
    "exactly_one",
    "implies_all",
    "luby",
    "parse_dimacs",
    "solve_cnf",
    "tseitin_and",
    "tseitin_or",
    "tseitin_xor",
    "write_dimacs",
]
