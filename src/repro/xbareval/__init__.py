"""``repro.xbareval`` — batched packed-bitset lattice evaluation core.

Every semantic check in the package (Section III lattice synthesis
validation, Section IV mapping/yield experiments) bottoms out in
top-bottom percolation connectivity.  This subsystem computes it for whole
batches at once:

* :mod:`~repro.xbareval.connectivity` — ``(B, R, C)`` boolean conduction
  tensors flooded by iterative label propagation, replacing the per-grid
  scalar union-find of :mod:`repro.crossbar.paths`;
* :mod:`~repro.xbareval.lattice_eval` — all ``2^n`` conduction grids of a
  lattice materialised via packed literal masks in one broadcast;
  :func:`lattice_truthtable` returns a
  :class:`~repro.boolean.truthtable.TruthTable` without a Python-level
  loop over assignments;
* :mod:`~repro.xbareval.placement` — batched defect-aware placement
  validity (one placement per fabric of an ensemble, or many placements
  against one fabric);
* :mod:`~repro.xbareval.delay` — batched node-weighted shortest-path
  delay (vectorized Bellman-Ford over conduction x resistance tensors),
  the Section IV variation-delay model behind :mod:`repro.varsim`.

The scalar functions stay in place as bit-exact references; the property
suite (``tests/test_xbareval.py``) asserts agreement on every kernel, and
``benchmarks/bench_xbareval.py`` tracks the speedups.  Consumers:
:class:`repro.crossbar.lattice.Lattice`, the synthesis candidate checks,
:mod:`repro.reliability.lattice_mapping`, :mod:`repro.faultlab.kernels`
and the :mod:`repro.engine` portfolio verification.
"""

from .backend import (
    BACKEND_ENV,
    requested_backend,
    using_numba,
)
from .connectivity import (
    MAX_PACKED_ROWS,
    left_right_blocked_8_batch,
    percolation_duality_holds_batch,
    top_bottom_connected_batch,
)
from .delay import (
    CHUNK_GRIDS,
    best_path_delay_batch,
    lattice_critical_delay_batch,
    onset_critical_delay_batch,
)
from .lattice_eval import (
    CHUNK_ASSIGNMENTS,
    conduction_tensor,
    evaluate_assignments,
    evaluate_labellings,
    implements_table,
    lattice_truthtable,
    site_masks,
)
from .placement import (
    SITE_CONST0,
    SITE_CONST1,
    SITE_LITERAL,
    defect_map_states,
    lattice_site_codes,
    placement_valid_batch,
    placement_valid_grid,
)

__all__ = [
    "BACKEND_ENV",
    "CHUNK_ASSIGNMENTS",
    "CHUNK_GRIDS",
    "MAX_PACKED_ROWS",
    "SITE_CONST0",
    "SITE_CONST1",
    "SITE_LITERAL",
    "best_path_delay_batch",
    "conduction_tensor",
    "defect_map_states",
    "evaluate_assignments",
    "evaluate_labellings",
    "implements_table",
    "lattice_critical_delay_batch",
    "lattice_site_codes",
    "lattice_truthtable",
    "left_right_blocked_8_batch",
    "onset_critical_delay_batch",
    "percolation_duality_holds_batch",
    "placement_valid_batch",
    "placement_valid_grid",
    "requested_backend",
    "site_masks",
    "top_bottom_connected_batch",
    "using_numba",
]
