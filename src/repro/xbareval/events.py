"""Kernel-side degradation-event hook (dependency inversion point).

The evaluation kernels occasionally need to say something operational —
"scipy label pass failed, degrading", "numba unavailable" — but kernel
packages must stay importable with zero knowledge of the observability
stack (lint rule NX302).  So the kernels emit through this one-function
seam, and the composition root (``repro/__init__``) injects the
:mod:`repro.obs` structured logger as the sink.  With no sink installed
(kernels embedded somewhere without the full package) events are
silently dropped — they are advisory, never load-bearing.
"""

from __future__ import annotations

from typing import Callable, Optional

#: ``sink(source, message, **fields)`` — installed by the composition
#: root; ``None`` drops events.
_sink: Optional[Callable[..., None]] = None


def set_event_sink(sink: Optional[Callable[..., None]]) -> None:
    """Install (or clear, with ``None``) the process-wide event sink."""
    global _sink
    _sink = sink


def emit(source: str, message: str, **fields: object) -> None:
    """Report one operational event; failures in the sink are swallowed
    (telemetry must never break a kernel mid-campaign)."""
    sink = _sink
    if sink is None:
        return
    try:
        sink(source, message, **fields)
    except Exception:
        pass
