"""Kernel backend selection for the evaluation core (``NANOXBAR_BACKEND``).

The flood (:mod:`repro.xbareval.connectivity`) and delay
(:mod:`repro.xbareval.delay`) kernels ship with several interchangeable
implementations; this module picks one from the environment:

* ``NANOXBAR_BACKEND`` unset or ``auto`` — the default dispatch: the
  scipy ``ndimage`` label pass when importable and healthy, then the
  packed-uint64 Kogge-Stone floods (single-word up to 64 rows,
  multi-word beyond);
* ``NANOXBAR_BACKEND=numpy`` — force the pure-numpy packed path and skip
  the scipy accelerator (the benchmarking/conformance baseline);
* ``NANOXBAR_BACKEND=numba`` — JIT-compiled per-grid kernels
  (:mod:`repro.xbareval._numba_kernels`) when :mod:`numba` is importable.
  Missing or broken numba degrades to ``auto`` with one logged event —
  the knob is an accelerator request, never a hard dependency.

Every backend is bit-exact against the pure-numpy reference; the shared
conformance suite (``tests/test_core_conformance.py``) pins all of them
to one committed golden file, so a numba CI job and a no-numba CI job
must produce identical kernel outputs.
"""

from __future__ import annotations

import os

#: The environment knob naming the requested backend.
BACKEND_ENV = "NANOXBAR_BACKEND"

#: Recognised values of :data:`BACKEND_ENV`.
KNOWN_BACKENDS = ("auto", "numpy", "numba")

#: Import-attempt memo: ``None`` = not tried yet, ``False`` = numba
#: unavailable (logged once), otherwise the kernels module.
_numba_module: object | None = None

#: One-shot flags so fallback/unknown-value events log exactly once.
_warned_unavailable = False
_warned_unknown: set[str] = set()


def requested_backend() -> str:
    """The raw (lower-cased) ``NANOXBAR_BACKEND`` request, default ``auto``.

    Unknown values degrade to ``auto`` with one logged event per value —
    a typo must not silently change which kernels run without a trace.
    """
    global _warned_unknown
    value = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if value not in KNOWN_BACKENDS:
        if value not in _warned_unknown:
            _warned_unknown.add(value)
            _log_event("unknown backend requested", requested=value)
        return "auto"
    return value


def numba_kernels():
    """The JIT kernels module, or ``None`` (unavailable / not requested).

    The numba import (and its compile machinery) is attempted at most
    once per process; an unavailable or broken numba logs one structured
    event and pins the answer to ``None`` so every later call is a cheap
    memo read.
    """
    global _numba_module, _warned_unavailable
    if requested_backend() != "numba":
        return None
    if _numba_module is None:
        try:
            from . import _numba_kernels
            _numba_module = _numba_kernels
        except Exception as error:  # any import/ABI failure degrades
            _numba_module = False
            if not _warned_unavailable:
                _warned_unavailable = True
                _log_event("numba backend unavailable, using numpy",
                           error=f"{type(error).__name__}: {error}")
    return _numba_module or None


def using_numba() -> bool:
    """True when ``NANOXBAR_BACKEND=numba`` resolved to live kernels."""
    return numba_kernels() is not None


def force_numpy() -> bool:
    """True when ``NANOXBAR_BACKEND=numpy`` pins the pure packed path."""
    return requested_backend() == "numpy"


def reset_backend_cache() -> None:
    """Forget the import memo and one-shot warnings (test hook)."""
    global _numba_module, _warned_unavailable
    _numba_module = None
    _warned_unavailable = False
    _warned_unknown.clear()


def _log_event(message: str, **fields) -> None:
    """Structured one-liner through the kernel event seam: the sink is
    injected by the composition root, so this module never imports the
    observability stack (lint rule NX302)."""
    from .events import emit
    emit("xbareval.backend", message, **fields)
