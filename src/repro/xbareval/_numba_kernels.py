"""JIT-compiled flood and delay kernels (``NANOXBAR_BACKEND=numba``).

Importing this module requires :mod:`numba`; callers must go through
:func:`repro.xbareval.backend.numba_kernels`, which attempts the import
once and degrades to the numpy kernels with one logged event when it
fails.  The container images this repo targets do *not* ship numba — the
with-numba CI job installs it and pins these kernels bit-identical to
the numpy job through the shared golden file
(``tests/data/core_conformance_golden.json``).

Bit-exactness is by construction:

* the flood kernels compute the same monotone closure as the packed
  Kogge-Stone paths, so the boolean verdicts are identical on every
  input;
* the delay kernel replays the *exact* relaxation order of
  :func:`repro.xbareval.delay.best_path_delay_batch` — sequential
  down/up/right/left sweeps to a fixpoint, each element updated as
  ``min(dist, prev + cost)`` — so every float64 operation chain, and
  therefore every output bit, matches the numpy path.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange


@njit(cache=True, parallel=True)
def _top_bottom_flood(grids):  # pragma: no cover - exercised by numba CI job
    batch, rows, cols = grids.shape
    out = np.zeros(batch, dtype=np.bool_)
    for b in prange(batch):
        reach = np.zeros((rows, cols), dtype=np.bool_)
        for c in range(cols):
            reach[0, c] = grids[b, 0, c]
        changed = True
        while changed:
            changed = False
            for r in range(1, rows):
                for c in range(cols):
                    if grids[b, r, c] and not reach[r, c] and reach[r - 1, c]:
                        reach[r, c] = True
                        changed = True
            for r in range(rows - 2, -1, -1):
                for c in range(cols):
                    if grids[b, r, c] and not reach[r, c] and reach[r + 1, c]:
                        reach[r, c] = True
                        changed = True
            for c in range(1, cols):
                for r in range(rows):
                    if grids[b, r, c] and not reach[r, c] and reach[r, c - 1]:
                        reach[r, c] = True
                        changed = True
            for c in range(cols - 2, -1, -1):
                for r in range(rows):
                    if grids[b, r, c] and not reach[r, c] and reach[r, c + 1]:
                        reach[r, c] = True
                        changed = True
        for c in range(cols):
            if reach[rows - 1, c]:
                out[b] = True
                break
    return out


@njit(cache=True, parallel=True)
def _left_right_flood_8(grids):  # pragma: no cover - exercised by numba CI job
    batch, rows, cols = grids.shape
    out = np.zeros(batch, dtype=np.bool_)
    for b in prange(batch):
        reach = np.zeros((rows, cols), dtype=np.bool_)
        for r in range(rows):
            reach[r, 0] = not grids[b, r, 0]
        changed = True
        while changed:
            changed = False
            for r in range(1, rows):       # vertical 8-adjacency (degenerate)
                for c in range(cols):
                    if (not grids[b, r, c]) and not reach[r, c] and reach[r - 1, c]:
                        reach[r, c] = True
                        changed = True
            for r in range(rows - 2, -1, -1):
                for c in range(cols):
                    if (not grids[b, r, c]) and not reach[r, c] and reach[r + 1, c]:
                        reach[r, c] = True
                        changed = True
            for c in range(1, cols):       # horizontal: straight + diagonals
                for r in range(rows):
                    if (not grids[b, r, c]) and not reach[r, c]:
                        hit = reach[r, c - 1]
                        if not hit and r > 0:
                            hit = reach[r - 1, c - 1]
                        if not hit and r < rows - 1:
                            hit = reach[r + 1, c - 1]
                        if hit:
                            reach[r, c] = True
                            changed = True
            for c in range(cols - 2, -1, -1):
                for r in range(rows):
                    if (not grids[b, r, c]) and not reach[r, c]:
                        hit = reach[r, c + 1]
                        if not hit and r > 0:
                            hit = reach[r - 1, c + 1]
                        if not hit and r < rows - 1:
                            hit = reach[r + 1, c + 1]
                        if hit:
                            reach[r, c] = True
                            changed = True
        for r in range(rows):
            if reach[r, cols - 1]:
                out[b] = True
                break
    return out


@njit(cache=True, parallel=True)
def _best_path_delay(grids, res):  # pragma: no cover - exercised by numba CI
    batch, rows, cols = grids.shape
    out = np.empty(batch, dtype=np.float64)
    for b in prange(batch):
        cost = np.empty((rows, cols), dtype=np.float64)
        dist = np.empty((rows, cols), dtype=np.float64)
        for r in range(rows):
            for c in range(cols):
                cost[r, c] = res[b, r, c] if grids[b, r, c] else np.inf
                dist[r, c] = np.inf
        for c in range(cols):
            dist[0, c] = cost[0, c]
        changed = True
        while changed:
            changed = False
            for r in range(1, rows):          # downward sweep
                for c in range(cols):
                    cand = dist[r - 1, c] + cost[r, c]
                    if cand < dist[r, c]:
                        dist[r, c] = cand
                        changed = True
            for r in range(rows - 2, -1, -1):  # upward sweep
                for c in range(cols):
                    cand = dist[r + 1, c] + cost[r, c]
                    if cand < dist[r, c]:
                        dist[r, c] = cand
                        changed = True
            for c in range(1, cols):          # rightward sweep
                for r in range(rows):
                    cand = dist[r, c - 1] + cost[r, c]
                    if cand < dist[r, c]:
                        dist[r, c] = cand
                        changed = True
            for c in range(cols - 2, -1, -1):  # leftward sweep
                for r in range(rows):
                    cand = dist[r, c + 1] + cost[r, c]
                    if cand < dist[r, c]:
                        dist[r, c] = cand
                        changed = True
        best = np.inf
        for c in range(cols):
            if dist[rows - 1, c] < best:
                best = dist[rows - 1, c]
        out[b] = best
    return out


def top_bottom_connected_batch(grids: np.ndarray) -> np.ndarray:
    """JIT per-grid top-bottom flood; callers pre-validate shapes."""
    return _top_bottom_flood(np.ascontiguousarray(grids, dtype=np.bool_))


def left_right_blocked_8_batch(grids: np.ndarray) -> np.ndarray:
    """JIT per-grid OFF-site 8-flood; callers pre-validate shapes."""
    return _left_right_flood_8(np.ascontiguousarray(grids, dtype=np.bool_))


def best_path_delay_batch(grids: np.ndarray, resistance: np.ndarray) -> np.ndarray:
    """JIT Bellman-Ford delay, bit-identical to the numpy sweep order."""
    g = np.ascontiguousarray(grids, dtype=np.bool_)
    res = np.ascontiguousarray(
        np.broadcast_to(np.asarray(resistance, dtype=np.float64), g.shape))
    return _best_path_delay(g, res)
