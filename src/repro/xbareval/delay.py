"""Batched node-weighted shortest-path delay over conduction tensors.

Paper anchor: Section IV (variation tolerance) — the delay of an input is
the minimum total crosspoint resistance over conducting top-bottom
4-paths, and the array's *critical delay* is the worst such value over
the on-set.  The scalar reference is the per-grid Dijkstra
:func:`repro.reliability.variation.best_path_delay`; here the same
question is answered for a whole ``(B, R, C)`` batch of conduction x
resistance tensors at once with vectorized Bellman-Ford relaxation:

* distances start at the top-row site costs and sweep down / up / left /
  right, each sweep a row- or column-slice ``np.minimum`` relaxation over
  the whole batch;
* the outer loop repeats until a full round of sweeps is a fixpoint —
  like the flood kernels in :mod:`repro.xbareval.connectivity`, it only
  iterates once per direction reversal of the hardest optimal path;
* non-conducting sites (and therefore non-conducting grids) read as
  ``np.inf`` — the batched spelling of the scalar ``None``.

Delays agree with the scalar Dijkstra to float tolerance on every grid
(the relaxation sums each optimal path in path order, exactly as Dijkstra
accumulates it; only tie-broken equal-cost paths can differ, by float
noise).  The property suite in ``tests/test_xbareval_delay.py`` asserts
this, including on non-conducting grids.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from . import backend as _backend
from .lattice_eval import conduction_tensor, lattice_truthtable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crossbar.lattice import Lattice
    from ..boolean.truthtable import TruthTable

#: Grids relaxed per kernel call when expanding (trials x on-set) products
#: (bounds the dense ``(chunk, R, C)`` distance tensor).
CHUNK_GRIDS = 1 << 15


def best_path_delay_batch(conduction: np.ndarray,
                          resistance: np.ndarray) -> np.ndarray:
    """Minimum conducting top-bottom path cost per grid, shape ``(B,)``.

    Args:
        conduction: boolean ``(B, R, C)`` conduction tensor.
        resistance: positive site costs, shape ``(B, R, C)`` or any shape
            broadcastable to it (one shared ``(R, C)`` map included).

    Returns:
        Float ``(B,)`` array; entry ``b`` equals the scalar Dijkstra
        ``best_path_delay(conduction[b], resistance[b])`` to float
        tolerance, with ``np.inf`` where the scalar reference returns
        ``None`` (no conducting top-bottom path).
    """
    grids = np.ascontiguousarray(conduction, dtype=bool)
    if grids.ndim != 3:
        raise ValueError(
            f"expected a (batch, rows, cols) conduction tensor, got shape "
            f"{grids.shape}")
    batch, rows, cols = grids.shape
    if batch == 0 or rows == 0 or cols == 0:
        return np.full(batch, np.inf)
    res = np.broadcast_to(np.asarray(resistance, dtype=np.float64),
                          grids.shape)
    if (res <= 0).any():
        raise ValueError("resistances must be positive")
    kernels = _backend.numba_kernels()
    if kernels is not None:
        # Bit-identical by construction: the JIT kernel replays this
        # function's exact sweep order (see _numba_kernels).
        return kernels.best_path_delay_batch(grids, res)
    # OFF sites cost inf: relaxation can never route through them, and a
    # grid with no conducting path keeps an all-inf bottom row.
    site_cost = np.where(grids, res, np.inf)
    dist = np.full(grids.shape, np.inf)
    dist[:, 0, :] = site_cost[:, 0, :]
    while True:
        before = dist.copy()
        for r in range(1, rows):          # downward sweep
            np.minimum(dist[:, r, :], dist[:, r - 1, :] + site_cost[:, r, :],
                       out=dist[:, r, :])
        for r in range(rows - 2, -1, -1):  # upward sweep
            np.minimum(dist[:, r, :], dist[:, r + 1, :] + site_cost[:, r, :],
                       out=dist[:, r, :])
        for c in range(1, cols):          # rightward sweep
            np.minimum(dist[:, :, c], dist[:, :, c - 1] + site_cost[:, :, c],
                       out=dist[:, :, c])
        for c in range(cols - 2, -1, -1):  # leftward sweep
            np.minimum(dist[:, :, c], dist[:, :, c + 1] + site_cost[:, :, c],
                       out=dist[:, :, c])
        if np.array_equal(dist, before):
            break
    return dist[:, rows - 1, :].min(axis=1)


def onset_critical_delay_batch(lattice: "Lattice", minterms: np.ndarray,
                               resistance: np.ndarray) -> np.ndarray:
    """Worst best-path delay over ``minterms`` per resistance map.

    Args:
        lattice: the configured lattice (its packed literal masks give the
            per-minterm conduction grids in one broadcast).
        minterms: integer array of on-set assignments (must be non-empty
            and all conducting — they are the function's on-set).
        resistance: positive ``(B, rows, cols)`` resistance ensemble, one
            map per trial.

    Returns:
        Float ``(B,)`` critical delays; entry ``b`` equals the scalar
        ``lattice_critical_delay(lattice, VariationMap(resistance[b]))``
        to float tolerance.
    """
    minterms = np.asarray(minterms, dtype=np.int64)
    if minterms.size == 0:
        raise ValueError(
            "critical delay is undefined for a constant-0 function: "
            "the lattice conducts for no input (empty on-set)")
    resistance = np.asarray(resistance, dtype=np.float64)
    if resistance.ndim != 3:
        raise ValueError("resistance ensemble must be (trials, rows, cols)")
    trials = resistance.shape[0]
    onset = minterms.size
    grids = conduction_tensor(lattice, minterms)       # (onset, R, C)
    if grids.shape[1:] != resistance.shape[1:]:
        raise ValueError("resistance map shape must match the lattice")
    rows, cols = grids.shape[1:]
    worst = np.zeros(trials)
    # Expand the (trials x onset) product in bounded chunks of whole trials.
    trials_per_chunk = max(1, CHUNK_GRIDS // max(onset, 1))
    for start in range(0, trials, trials_per_chunk):
        stop = min(start + trials_per_chunk, trials)
        span = stop - start
        conduct = np.broadcast_to(
            grids[None], (span, onset, rows, cols)).reshape(-1, rows, cols)
        res = np.broadcast_to(
            resistance[start:stop, None], (span, onset, rows, cols)
        ).reshape(-1, rows, cols)
        delays = best_path_delay_batch(conduct, res).reshape(span, onset)
        if np.isinf(delays).any():
            raise ValueError("lattice does not conduct on its own on-set")
        worst[start:stop] = delays.max(axis=1)
    return worst


def lattice_critical_delay_batch(lattice: "Lattice", resistance: np.ndarray,
                                 table: "TruthTable | None" = None
                                 ) -> np.ndarray:
    """Critical delay of one lattice under an ensemble of resistance maps.

    The batched analogue of
    :func:`repro.reliability.variation.lattice_critical_delay`: the
    on-set conduction grids are materialised once and every
    ``(trial, minterm)`` pair is relaxed in one Bellman-Ford batch.

    Raises:
        ValueError: for a constant-0 lattice (empty on-set), matching the
            scalar reference.
    """
    if table is None:
        table = lattice_truthtable(lattice)
    minterms = np.fromiter(table.minterms(), dtype=np.int64)
    return onset_critical_delay_batch(lattice, minterms, resistance)
