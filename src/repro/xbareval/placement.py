"""Batched defect-aware placement validity (Section IV-B self-mapping).

The scalar reference is
:func:`repro.reliability.lattice_mapping.placement_valid`: a target lattice
placement is valid iff every target site lands on a compatible fabric site
(stuck-open realises exactly constant-0, stuck-closed exactly constant-1,
OK anything) and no selected fabric row carries a stuck-closed site on an
unused column (a permanently conducting stray bridge).

Two batched layouts cover the workloads:

* :func:`placement_valid_batch` — one placement per *fabric* of a
  ``(trials, rows, cols)`` ensemble (the Monte-Carlo campaigns of
  :mod:`repro.faultlab`);
* :func:`placement_valid_grid` — many placements against one fabric (the
  exhaustive and random mapping searches of
  :mod:`repro.reliability.lattice_mapping`).

State codes match :data:`repro.reliability.defects.STATE_TO_CODE` and the
tensor layout of :mod:`repro.faultlab.maps`; they are redeclared here so
the evaluation core depends only on :mod:`repro.boolean` and numpy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..boolean.cube import Literal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crossbar.lattice import Lattice

#: Crosspoint state codes (== repro.reliability.defects.STATE_TO_CODE).
OK = 0
STUCK_OPEN = 1
STUCK_CLOSED = 2

#: Target-site codes for the mapping kernels.
SITE_CONST0 = 0
SITE_CONST1 = 1
SITE_LITERAL = 2


def lattice_site_codes(target: "Lattice") -> np.ndarray:
    """Encode a target lattice's sites for the placement kernels.

    ``SITE_CONST0`` / ``SITE_CONST1`` / ``SITE_LITERAL`` mirror the
    compatibility asymmetry of
    :func:`repro.reliability.lattice_mapping.site_compatible`: stuck-open
    fabric sites realise exactly constant-0, stuck-closed exactly
    constant-1, OK sites anything.
    """
    rows, cols = len(target.sites), len(target.sites[0])
    codes = np.empty((rows, cols), dtype=np.int8)
    for i, row in enumerate(target.sites):
        for j, site in enumerate(row):
            if isinstance(site, Literal):
                codes[i, j] = SITE_LITERAL
            elif site:
                codes[i, j] = SITE_CONST1
            else:
                codes[i, j] = SITE_CONST0
    return codes


def _placement_verdicts(sub: np.ndarray, row_sub: np.ndarray,
                        used: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Shared verdict tail of the placement kernels.

    Args:
        sub: ``(P, target_rows, target_cols)`` fabric states under the
            target footprint.
        row_sub: ``(P, target_rows, cols)`` full selected fabric rows.
        used: boolean ``(P, cols)`` selected-column masks.
        codes: ``(target_rows, target_cols)`` site codes.

    Mirrors the scalar rule exactly: every target site must land on a
    compatible fabric site, and no selected row may carry a stuck-closed
    site on an unused column (a permanently conducting stray bridge).
    """
    incompatible = (
        ((sub == STUCK_OPEN) & (codes[None] != SITE_CONST0))
        | ((sub == STUCK_CLOSED) & (codes[None] != SITE_CONST1))
    )
    ok = ~incompatible.any(axis=(1, 2))
    stray = (row_sub == STUCK_CLOSED) & ~used[:, None, :]
    return ok & ~stray.any(axis=(1, 2))


def placement_valid_batch(states: np.ndarray, codes: np.ndarray,
                          row_maps: np.ndarray,
                          col_maps: np.ndarray) -> np.ndarray:
    """Validity of one placement per trial, shape ``(trials,)``.

    Args:
        states: uint8 ``(trials, rows, cols)`` fabric-state ensemble.
        codes: int8 ``(target_rows, target_cols)`` site codes
            (:func:`lattice_site_codes`).
        row_maps / col_maps: integer ``(trials, target_rows)`` /
            ``(trials, target_cols)`` sorted line selections.

    Per trial identical to the scalar
    :func:`repro.reliability.lattice_mapping.placement_valid`.
    """
    trials, _, cols = states.shape
    t = np.arange(trials)
    sub = states[t[:, None, None], row_maps[:, :, None], col_maps[:, None, :]]
    row_sub = states[t[:, None], row_maps]  # (trials, target_rows, cols)
    used = np.zeros((trials, cols), dtype=bool)
    used[t[:, None], col_maps] = True
    return _placement_verdicts(sub, row_sub, used, codes)


def placement_valid_grid(states: np.ndarray, codes: np.ndarray,
                         row_maps: np.ndarray,
                         col_maps: np.ndarray) -> np.ndarray:
    """Validity of many placements against ONE fabric, shape ``(P,)``.

    Args:
        states: uint8 ``(rows, cols)`` fabric-state grid.
        codes: int8 ``(target_rows, target_cols)`` site codes.
        row_maps / col_maps: integer ``(P, target_rows)`` /
            ``(P, target_cols)`` candidate line selections.

    Entry ``p`` equals the scalar ``placement_valid`` verdict for
    placement ``(row_maps[p], col_maps[p])``.
    """
    states = np.asarray(states)
    if states.ndim != 2:
        raise ValueError("placement_valid_grid expects one (rows, cols) fabric")
    cols = states.shape[1]
    placements = row_maps.shape[0]
    sub = states[row_maps[:, :, None], col_maps[:, None, :]]
    row_sub = states[row_maps]              # (P, target_rows, cols)
    used = np.zeros((placements, cols), dtype=bool)
    used[np.arange(placements)[:, None], col_maps] = True
    return _placement_verdicts(sub, row_sub, used, codes)


def defect_map_states(defect_map) -> np.ndarray:
    """Dense uint8 ``(rows, cols)`` state grid of a sparse ``DefectMap``.

    Accepts any object with ``rows`` / ``cols`` / ``defects`` (the sparse
    ``(r, c) -> CrosspointState`` dict of
    :class:`repro.reliability.defects.DefectMap`); duck-typed to keep the
    dependency arrow pointing into the core.
    """
    states = np.zeros((defect_map.rows, defect_map.cols), dtype=np.uint8)
    for (r, c), state in defect_map.defects.items():
        states[r, c] = STUCK_CLOSED if state.name == "STUCK_CLOSED" \
            else STUCK_OPEN
    return states
