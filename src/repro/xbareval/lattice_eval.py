"""Packed-literal-mask lattice evaluation: whole truth tables per kernel call.

The scalar reference is :meth:`repro.crossbar.lattice.Lattice.evaluate` /
``Lattice.to_truth_table_scalar`` — one union-find percolation check per
input assignment, ``2^n`` Python-level iterations per table.  Here the
``(assignments, rows, cols)`` conduction tensor for *all* assignments is
materialised in one broadcast from per-site literal masks, and a single
batched flood (:mod:`repro.xbareval.connectivity`) answers every
percolation question at once — no Python-level loop over assignments.

The kernels only touch :mod:`repro.boolean` and numpy; lattices are
consumed duck-typed (``n`` / ``sites`` of
:class:`~repro.boolean.cube.Literal` or bool), which keeps this module
importable from :mod:`repro.crossbar.lattice` without a cycle.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from ..boolean.cube import Literal
from ..boolean.truthtable import TruthTable, MAX_DENSE_VARS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crossbar.lattice import Lattice

#: Assignments evaluated per flood call when materialising big tables
#: (bounds the dense ``(chunk, rows, cols)`` tensor).
CHUNK_ASSIGNMENTS = 1 << 14


@lru_cache(maxsize=1024)
def site_masks(lattice: "Lattice") -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-site packed literal masks for broadcast evaluation.

    Returns ``(var, positive, is_literal, const)`` arrays, each of shape
    ``(rows, cols)``: literal sites record their variable index and
    polarity, constant sites their fixed conduction value.  Memoised per
    lattice (lattices are immutable and hashable), so repeated
    evaluations — the engine's verify/fold loops — skip the Python-level
    site walk.  The cache is deliberately modest: Monte-Carlo mapping
    sweeps stream one-shot fabric lattices through here, and those should
    churn out again rather than pin memory.
    """
    rows, cols = len(lattice.sites), len(lattice.sites[0])
    var = np.zeros((rows, cols), dtype=np.int64)
    positive = np.zeros((rows, cols), dtype=bool)
    is_literal = np.zeros((rows, cols), dtype=bool)
    const = np.zeros((rows, cols), dtype=bool)
    for r, row in enumerate(lattice.sites):
        for c, site in enumerate(row):
            if isinstance(site, Literal):
                var[r, c] = site.var
                positive[r, c] = site.positive
                is_literal[r, c] = True
            else:
                const[r, c] = bool(site)
    return var, positive, is_literal, const


def conduction_tensor(lattice: "Lattice",
                      assignments: np.ndarray | None = None,
                      force_on: np.ndarray | None = None,
                      force_off: np.ndarray | None = None) -> np.ndarray:
    """The boolean ``(B, rows, cols)`` conduction tensor of a lattice.

    Args:
        lattice: the four-terminal lattice to evaluate.
        assignments: integer array of input assignments (bit ``i`` is the
            value of ``x_i``); defaults to all ``2^n`` assignments in
            order — the truth-table layout.
        force_on / force_off: optional boolean ``(rows, cols)`` overlays
            applied after the nominal site values — the batched analogue
            of the scalar ``site_override`` hook (stuck-closed forces ON,
            stuck-open forces OFF; see
            :func:`repro.reliability.lattice_mapping.verify_mapped_lattice`).

    Per assignment ``a`` the slice ``[a]`` equals the scalar
    ``lattice.conduction_grid(assignments[a])`` bit for bit.
    """
    if assignments is None:
        assignments = np.arange(1 << lattice.n, dtype=np.int64)
    else:
        assignments = np.asarray(assignments, dtype=np.int64)
    var, positive, is_literal, const = site_masks(lattice)
    bits = (assignments[:, None, None] >> var[None, :, :]) & 1
    grids = np.where(is_literal[None], (bits == 1) == positive[None],
                     const[None])
    if force_on is not None:
        grids = grids | np.asarray(force_on, dtype=bool)[None]
    if force_off is not None:
        grids = grids & ~np.asarray(force_off, dtype=bool)[None]
    return grids


def evaluate_assignments(lattice: "Lattice", assignments: np.ndarray,
                         force_on: np.ndarray | None = None,
                         force_off: np.ndarray | None = None) -> np.ndarray:
    """Lattice outputs for a batch of assignments, shape ``(B,)``.

    Entry ``b`` equals the scalar ``lattice.evaluate(assignments[b])``
    (with the optional stuck-site overlays applied).
    """
    from .connectivity import top_bottom_connected_batch

    grids = conduction_tensor(lattice, assignments, force_on, force_off)
    return top_bottom_connected_batch(grids)


def lattice_truthtable(lattice: "Lattice",
                       force_on: np.ndarray | None = None,
                       force_off: np.ndarray | None = None) -> TruthTable:
    """Dense semantics of a lattice without a Python loop over assignments.

    Materialises all ``2^n`` conduction grids via packed literal masks in
    one broadcast and floods the whole batch at once.  Bit-exact against
    the scalar reference ``Lattice.to_truth_table_scalar()`` (asserted by
    the property suite in ``tests/test_xbareval.py``).
    """
    n = lattice.n
    if n > MAX_DENSE_VARS:
        raise ValueError(
            f"dense truth tables support at most {MAX_DENSE_VARS} variables, got {n}"
        )
    total = 1 << n
    if total <= CHUNK_ASSIGNMENTS:
        return TruthTable(n, evaluate_assignments(lattice,
                                                  np.arange(total,
                                                            dtype=np.int64),
                                                  force_on, force_off))
    values = np.empty(total, dtype=bool)
    for start in range(0, total, CHUNK_ASSIGNMENTS):
        stop = min(start + CHUNK_ASSIGNMENTS, total)
        values[start:stop] = evaluate_assignments(
            lattice, np.arange(start, stop, dtype=np.int64),
            force_on, force_off)
    return TruthTable(n, values)


def implements_table(lattice: "Lattice", table: TruthTable) -> bool:
    """True iff the lattice computes exactly ``table`` (batched check)."""
    if table.n != lattice.n:
        raise ValueError("variable space mismatch")
    return lattice_truthtable(lattice) == table


def evaluate_labellings(label_values: np.ndarray,
                        label_grids: np.ndarray) -> np.ndarray:
    """Truth tables of many site labellings of one shape at once.

    Args:
        label_values: boolean ``(num_labels, A)`` array — the value of
            each candidate site label under each of the ``A`` input
            assignments (literals and constants alike).
        label_grids: integer ``(L, rows, cols)`` array of label indices —
            one candidate lattice per leading entry.

    Returns:
        Boolean ``(L, A)`` array: row ``l`` is the truth table of the
        lattice labelled by ``label_grids[l]``.  Used by the batched
        :func:`repro.synthesis.enumerate_lattices.enumerate_lattice_functions`
        rewrite; bit-exact against building each
        :class:`~repro.crossbar.lattice.Lattice` and evaluating it.
    """
    from .connectivity import top_bottom_connected_batch

    label_values = np.asarray(label_values, dtype=bool)
    label_grids = np.asarray(label_grids)
    if label_grids.ndim != 3:
        raise ValueError("label_grids must be (L, rows, cols)")
    count, rows, cols = label_grids.shape
    assignments = label_values.shape[1]
    site_vals = label_values[label_grids]          # (L, rows, cols, A)
    grids = np.moveaxis(site_vals, 3, 1).reshape(
        count * assignments, rows, cols)
    return top_bottom_connected_batch(grids).reshape(count, assignments)
