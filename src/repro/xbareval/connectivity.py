"""Batched percolation connectivity on ``(B, R, C)`` conduction tensors.

The scalar references live in :mod:`repro.crossbar.paths`:

* :func:`repro.crossbar.paths.top_bottom_connected` — union-find over one
  grid's ON sites (4-adjacency);
* :func:`repro.crossbar.paths.left_right_blocked_8` — union-find over one
  grid's OFF sites (8-adjacency), the percolation dual.

Here the same questions are answered for a whole *batch* of grids at
once, through several interchangeable kernels:

* a **single label pass** (when :mod:`scipy.ndimage` is importable and
  healthy): the batch is stacked into one image with blank separator
  rows and labelled in one C call — connectivity is then a
  components-touching-both-edges lookup.  A scipy ABI failure mid-call
  degrades the process to the numpy kernels with one logged event
  instead of raising mid-campaign;
* an iterative label-propagation flood on **packed bitsets** (pure
  numpy): each grid column becomes ``uint64`` words whose bit ``k`` is
  the cell in row ``k``, vertical reachability through ON runs closes in
  ``log2(R)`` Kogge-Stone doubling steps (the bitboard occluded-fill
  trick), horizontal steps are column scans, and the outer loop only
  iterates once per direction reversal of the hardest path.  Grids up to
  64 rows use the one-word-per-column fast path; taller grids use the
  multi-word ``(B, words, C)`` layout whose shifts carry across word
  boundaries — tall fabrics stay packed instead of falling back to the
  boolean flood;
* the **unpacked boolean flood**, kept as the bit-exact pure-python/
  numpy reference the property suite measures everything against;
* optional **numba JIT kernels** (``NANOXBAR_BACKEND=numba``, see
  :mod:`repro.xbareval.backend`), bit-exact against the numpy paths.

Every kernel is bit-exact against its scalar reference on all inputs (the
property suite in ``tests/test_xbareval.py`` asserts agreement on
hypothesis-generated batches, including the top-bottom/left-right
percolation-duality invariant).
"""

from __future__ import annotations

import numpy as np

from ..boolean.bitops import popcount_u64, popcount_u64_multiword
from . import backend as _backend
from . import events as _events

try:  # optional accelerator: one C-level label pass for a whole batch
    from scipy import ndimage as _ndimage
except ImportError:  # pragma: no cover - scipy is present in CI/dev images
    _ndimage = None

#: Tallest grid the one-word-per-column fast path handles; taller grids
#: stay packed on the multi-word ``(B, words, C)`` layout.
MAX_PACKED_ROWS = 64

#: Bits per word of the packed layouts.
_WORD_BITS = 64

#: 4- and 8-neighbourhood structuring elements for the label pass.
_STRUCT_4 = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
_STRUCT_8 = np.ones((3, 3), dtype=np.int64)

#: Health flag for the scipy label pass: a runtime failure (ABI drift,
#: broken extension) flips it off for the rest of the process with one
#: logged event, and every later batch takes the numpy kernels.
_label_healthy = True


def _degrade_label_pass(error: Exception) -> None:
    """Disable the scipy accelerator for this process, logging once."""
    global _label_healthy
    if not _label_healthy:  # pragma: no cover - second failure races only
        return
    _label_healthy = False
    # Through the kernel event seam (repro.xbareval.events): the sink is
    # injected by the composition root, keeping this module obs-free.
    _events.emit("xbareval.connectivity",
                 "scipy label pass failed, degrading to numpy kernels",
                 error=f"{type(error).__name__}: {error}")


def _label_pass_available() -> bool:
    return (_ndimage is not None and _label_healthy
            and not _backend.force_numpy())


def _as_batch(grids: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(grids, dtype=bool)
    if arr.ndim != 3:
        raise ValueError(
            f"expected a (batch, rows, cols) conduction tensor, got shape {arr.shape}"
        )
    return arr


def _pack_rows(grids: np.ndarray) -> np.ndarray:
    """Pack ``(B, R, C)`` bools into ``(B, C)`` uint64 row bitmasks."""
    rows = grids.shape[1]
    weights = np.uint64(1) << np.arange(rows, dtype=np.uint64)
    return (grids.astype(np.uint64)
            * weights[None, :, None]).sum(axis=1, dtype=np.uint64)


def _pack_rows_multiword(grids: np.ndarray) -> np.ndarray:
    """Pack ``(B, R, C)`` bools into ``(B, words, C)`` uint64 bitsets.

    Row ``r`` of a grid lands in word ``r // 64`` at bit ``r % 64``; the
    last word's unused high bits are zero.  ``rows <= 64`` degenerates to
    one word per column (the single-word layout with an extra axis).
    """
    batch, rows, cols = grids.shape
    words = max(1, -(-rows // _WORD_BITS))
    padded = np.zeros((batch, words * _WORD_BITS, cols), dtype=np.uint64)
    padded[:, :rows, :] = grids
    weights = np.uint64(1) << np.arange(_WORD_BITS, dtype=np.uint64)
    return (padded.reshape(batch, words, _WORD_BITS, cols)
            * weights[None, None, :, None]).sum(axis=2, dtype=np.uint64)


def _unpack_rows_multiword(packed: np.ndarray, rows: int) -> np.ndarray:
    """Inverse of :func:`_pack_rows_multiword` — back to ``(B, R, C)`` bools."""
    batch, words, cols = packed.shape
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    bits = (packed[:, :, None, :] >> shifts[None, None, :, None]) & np.uint64(1)
    return bits.reshape(batch, words * _WORD_BITS, cols)[:, :rows, :].astype(bool)


def _full_mask_multiword(rows: int) -> np.ndarray:
    """``(words,)`` uint64 masks selecting the valid row bits per word."""
    words = max(1, -(-rows // _WORD_BITS))
    bits = np.minimum(np.maximum(rows - np.arange(words) * _WORD_BITS, 0),
                      _WORD_BITS)
    full = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    partial = bits < _WORD_BITS
    full[partial] = (np.uint64(1) << bits[partial].astype(np.uint64)) - np.uint64(1)
    return full


def _shift_toward_high(x: np.ndarray, shift: int) -> np.ndarray:
    """Multi-word left shift by ``shift`` bits (toward higher rows).

    The word axis is axis 1, so the same helper serves both the
    ``(B, words, C)`` tensors and the ``(B, words)`` column slices of the
    left-right kernel.  Bits shifted past the top word are dropped, and
    ``64 - bit_shift`` is only evaluated when ``bit_shift > 0`` (a uint64
    shift by 64 is undefined).
    """
    words = x.shape[1]
    word_shift, bit_shift = divmod(shift, _WORD_BITS)
    out = np.zeros_like(x)
    if word_shift >= words:
        return out
    src = x[:, :words - word_shift]
    if bit_shift == 0:
        out[:, word_shift:] = src
    else:
        out[:, word_shift:] = src << np.uint64(bit_shift)
        if word_shift + 1 < words:  # carry the spilled high bits upward
            out[:, word_shift + 1:] |= (
                x[:, :words - word_shift - 1] >> np.uint64(_WORD_BITS - bit_shift))
    return out


def _shift_toward_low(x: np.ndarray, shift: int) -> np.ndarray:
    """Multi-word right shift by ``shift`` bits (toward lower rows)."""
    words = x.shape[1]
    word_shift, bit_shift = divmod(shift, _WORD_BITS)
    out = np.zeros_like(x)
    if word_shift >= words:
        return out
    src = x[:, word_shift:]
    if bit_shift == 0:
        out[:, :words - word_shift] = src
    else:
        out[:, :words - word_shift] = src >> np.uint64(bit_shift)
        if word_shift + 1 < words:  # carry the spilled low bits downward
            out[:, :words - word_shift - 1] |= (
                x[:, word_shift + 1:] << np.uint64(_WORD_BITS - bit_shift))
    return out


def _fill_down(reach: np.ndarray, runs: np.ndarray, rows: int) -> np.ndarray:
    """Kogge-Stone fill toward higher bits within ``runs`` (in place)."""
    shift = 1
    while shift < rows:
        reach |= runs & (reach << np.uint64(shift))
        runs = runs & (runs << np.uint64(shift))
        shift <<= 1
    return reach


def _fill_up(reach: np.ndarray, runs: np.ndarray, rows: int) -> np.ndarray:
    """Kogge-Stone fill toward lower bits within ``runs`` (in place)."""
    shift = 1
    while shift < rows:
        reach |= runs & (reach >> np.uint64(shift))
        runs = runs & (runs >> np.uint64(shift))
        shift <<= 1
    return reach


def _fill_down_mw(reach: np.ndarray, runs: np.ndarray, rows: int) -> np.ndarray:
    """Multi-word Kogge-Stone fill toward higher rows (in place)."""
    shift = 1
    while shift < rows:
        reach |= runs & _shift_toward_high(reach, shift)
        runs = runs & _shift_toward_high(runs, shift)
        shift <<= 1
    return reach


def _fill_up_mw(reach: np.ndarray, runs: np.ndarray, rows: int) -> np.ndarray:
    """Multi-word Kogge-Stone fill toward lower rows (in place)."""
    shift = 1
    while shift < rows:
        reach |= runs & _shift_toward_low(reach, shift)
        runs = runs & _shift_toward_low(runs, shift)
        shift <<= 1
    return reach


def _top_bottom_connected_packed(grids: np.ndarray) -> np.ndarray:
    batch, rows, cols = grids.shape
    g = _pack_rows(grids)
    reach = g & np.uint64(1)          # ON sites of row 0
    bottom = np.uint64(1) << np.uint64(rows - 1)
    # The reach set grows monotonically, so its total popcount doubles as
    # a copy-free fixpoint detector; once every grid has touched the
    # bottom row the remaining closure cannot change any verdict.
    size = int(popcount_u64(reach).sum())
    while True:
        _fill_down(reach, g, rows)
        _fill_up(reach, g, rows)
        for c in range(1, cols):      # rightward: same-row neighbour columns
            reach[:, c] |= reach[:, c - 1] & g[:, c]
        for c in range(cols - 2, -1, -1):
            reach[:, c] |= reach[:, c + 1] & g[:, c]
        if (((reach & bottom) != 0).any(axis=1)).all():
            break  # every grid has touched the bottom row somewhere
        grown = int(popcount_u64(reach).sum())
        if grown == size:
            break
        size = grown
    return ((reach & bottom) != 0).any(axis=1)


def _top_bottom_connected_packed_multiword(grids: np.ndarray) -> np.ndarray:
    """The packed flood on the ``(B, words, C)`` layout (rows > 64)."""
    batch, rows, cols = grids.shape
    g = _pack_rows_multiword(grids)
    reach = np.zeros_like(g)
    reach[:, 0, :] = g[:, 0, :] & np.uint64(1)   # ON sites of row 0
    bottom_word, bottom_bit = divmod(rows - 1, _WORD_BITS)
    bottom = np.uint64(1) << np.uint64(bottom_bit)
    size = int(popcount_u64_multiword(reach).sum())
    while True:
        _fill_down_mw(reach, g, rows)
        _fill_up_mw(reach, g, rows)
        for c in range(1, cols):      # rightward: same-row neighbour columns
            reach[:, :, c] |= reach[:, :, c - 1] & g[:, :, c]
        for c in range(cols - 2, -1, -1):
            reach[:, :, c] |= reach[:, :, c + 1] & g[:, :, c]
        if (((reach[:, bottom_word, :] & bottom) != 0).any(axis=1)).all():
            break  # every grid has touched the bottom row somewhere
        grown = int(popcount_u64_multiword(reach).sum())
        if grown == size:
            break
        size = grown
    return ((reach[:, bottom_word, :] & bottom) != 0).any(axis=1)


def _top_bottom_connected_unpacked(grids: np.ndarray) -> np.ndarray:
    """Boolean-tensor flood — the bit-exact reference for every kernel."""
    rows, cols = grids.shape[1:]
    reach = np.zeros_like(grids)
    reach[:, 0, :] = grids[:, 0, :]
    while True:
        before = reach.copy()
        for r in range(1, rows):
            reach[:, r, :] |= reach[:, r - 1, :] & grids[:, r, :]
        for r in range(rows - 2, -1, -1):
            reach[:, r, :] |= reach[:, r + 1, :] & grids[:, r, :]
        for c in range(1, cols):
            reach[:, :, c] |= reach[:, :, c - 1] & grids[:, :, c]
        for c in range(cols - 2, -1, -1):
            reach[:, :, c] |= reach[:, :, c + 1] & grids[:, :, c]
        if np.array_equal(reach, before):
            break
    return reach[:, rows - 1, :].any(axis=1)


def _top_bottom_connected_label(grids: np.ndarray) -> np.ndarray:
    """All grids in one C-level ``scipy.ndimage.label`` pass.

    The batch is stacked vertically with one blank separator row per grid
    (a single OFF row blocks 4-adjacency between neighbours), labelled
    once, and a grid conducts iff some component touches both its top and
    bottom rows.
    """
    batch, rows, cols = grids.shape
    padded = np.zeros((batch, rows + 1, cols), dtype=bool)
    padded[:, :rows, :] = grids
    labels, num = _ndimage.label(padded.reshape(batch * (rows + 1), cols),
                                 structure=_STRUCT_4)
    lab = labels.reshape(batch, rows + 1, cols)
    top = lab[:, 0, :]
    bottom = lab[:, rows - 1, :]
    top_mask = np.zeros(num + 1, dtype=bool)
    bottom_mask = np.zeros(num + 1, dtype=bool)
    top_mask[top.ravel()] = True
    bottom_mask[bottom.ravel()] = True
    common = top_mask & bottom_mask
    common[0] = False
    return common[top].any(axis=1)


def _top_bottom_connected_numpy(grids: np.ndarray) -> np.ndarray:
    """The packed dispatch (single- or multi-word by height)."""
    if grids.shape[1] <= MAX_PACKED_ROWS:
        return _top_bottom_connected_packed(grids)
    return _top_bottom_connected_packed_multiword(grids)


def top_bottom_connected_batch(grids: np.ndarray) -> np.ndarray:
    """Per-grid top-bottom 4-connectivity through ON sites.

    Args:
        grids: boolean ``(B, R, C)`` conduction tensor.

    Returns:
        Boolean ``(B,)`` array; entry ``b`` equals
        ``top_bottom_connected(grids[b])`` (the scalar union-find
        reference), for every grid of the batch.
    """
    grids = _as_batch(grids)
    batch, rows, cols = grids.shape
    if rows == 0 or cols == 0 or batch == 0:
        return np.zeros(batch, dtype=bool)
    kernels = _backend.numba_kernels()
    if kernels is not None:
        return kernels.top_bottom_connected_batch(grids)
    if _label_pass_available():
        try:
            return _top_bottom_connected_label(grids)
        except Exception as error:  # scipy ABI / extension failure
            _degrade_label_pass(error)
    return _top_bottom_connected_numpy(grids)


def _left_right_blocked_8_packed(grids: np.ndarray) -> np.ndarray:
    batch, rows, cols = grids.shape
    full = np.uint64((1 << rows) - 1) if rows < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    off = ~_pack_rows(grids) & full
    reach = np.zeros_like(off)
    reach[:, 0] = off[:, 0]
    while True:
        before = reach.copy()
        _fill_down(reach, off, rows)
        _fill_up(reach, off, rows)
        # 8-adjacency between neighbouring columns: straight plus the two
        # diagonals (row +-1); within a column it degenerates to vertical.
        for c in range(1, cols):
            prev = reach[:, c - 1]
            reach[:, c] |= (prev | (prev << np.uint64(1))
                            | (prev >> np.uint64(1))) & off[:, c]
        for c in range(cols - 2, -1, -1):
            nxt = reach[:, c + 1]
            reach[:, c] |= (nxt | (nxt << np.uint64(1))
                            | (nxt >> np.uint64(1))) & off[:, c]
        if np.array_equal(reach, before):
            break
    return (reach[:, cols - 1] != 0)


def _left_right_blocked_8_packed_multiword(grids: np.ndarray) -> np.ndarray:
    """OFF-site 8-connectivity on the ``(B, words, C)`` layout (rows > 64)."""
    batch, rows, cols = grids.shape
    full = _full_mask_multiword(rows)
    off = ~_pack_rows_multiword(grids) & full[None, :, None]
    reach = np.zeros_like(off)
    reach[:, :, 0] = off[:, :, 0]
    while True:
        before = reach.copy()
        _fill_down_mw(reach, off, rows)
        _fill_up_mw(reach, off, rows)
        # 8-adjacency between neighbouring columns: straight plus the two
        # diagonals (row +-1); the one-bit shifts carry across words.
        for c in range(1, cols):
            prev = reach[:, :, c - 1]
            reach[:, :, c] |= (prev | _shift_toward_high(prev, 1)
                               | _shift_toward_low(prev, 1)) & off[:, :, c]
        for c in range(cols - 2, -1, -1):
            nxt = reach[:, :, c + 1]
            reach[:, :, c] |= (nxt | _shift_toward_high(nxt, 1)
                               | _shift_toward_low(nxt, 1)) & off[:, :, c]
        if np.array_equal(reach, before):
            break
    return (reach[:, :, cols - 1] != 0).any(axis=1)


def _left_right_blocked_8_unpacked(grids: np.ndarray) -> np.ndarray:
    rows, cols = grids.shape[1:]
    off = ~grids
    reach = np.zeros_like(off)
    reach[:, :, 0] = off[:, :, 0]
    while True:
        before = reach.copy()
        for r in range(1, rows):
            reach[:, r, :] |= reach[:, r - 1, :] & off[:, r, :]
        for r in range(rows - 2, -1, -1):
            reach[:, r, :] |= reach[:, r + 1, :] & off[:, r, :]
        for c in range(1, cols):
            prev = reach[:, :, c - 1]
            cand = prev.copy()
            cand[:, 1:] |= prev[:, :-1]
            cand[:, :-1] |= prev[:, 1:]
            reach[:, :, c] |= cand & off[:, :, c]
        for c in range(cols - 2, -1, -1):
            nxt = reach[:, :, c + 1]
            cand = nxt.copy()
            cand[:, 1:] |= nxt[:, :-1]
            cand[:, :-1] |= nxt[:, 1:]
            reach[:, :, c] |= cand & off[:, :, c]
        if np.array_equal(reach, before):
            break
    return reach[:, :, cols - 1].any(axis=1)


def _left_right_blocked_8_label(grids: np.ndarray) -> np.ndarray:
    """OFF-site 8-connectivity via one batched label pass.

    Same separator-row stacking as the top-bottom kernel (one blank row
    also blocks diagonal adjacency); a grid is blocked iff some OFF
    component touches both its left and right columns.
    """
    batch, rows, cols = grids.shape
    padded = np.zeros((batch, rows + 1, cols), dtype=bool)
    padded[:, :rows, :] = ~grids
    labels, num = _ndimage.label(padded.reshape(batch * (rows + 1), cols),
                                 structure=_STRUCT_8)
    lab = labels.reshape(batch, rows + 1, cols)
    left = lab[:, :rows, 0]
    right = lab[:, :rows, cols - 1]
    left_mask = np.zeros(num + 1, dtype=bool)
    right_mask = np.zeros(num + 1, dtype=bool)
    left_mask[left.ravel()] = True
    right_mask[right.ravel()] = True
    common = left_mask & right_mask
    common[0] = False
    return common[left].any(axis=1)


def _left_right_blocked_8_numpy(grids: np.ndarray) -> np.ndarray:
    """The packed dispatch (single- or multi-word by height)."""
    if grids.shape[1] <= MAX_PACKED_ROWS:
        return _left_right_blocked_8_packed(grids)
    return _left_right_blocked_8_packed_multiword(grids)


def left_right_blocked_8_batch(grids: np.ndarray) -> np.ndarray:
    """Per-grid left-right 8-connectivity through OFF sites.

    Args:
        grids: boolean ``(B, R, C)`` conduction tensor (ON sites are
            ``True``; the flood runs over the OFF complement).

    Returns:
        Boolean ``(B,)`` array; entry ``b`` equals
        ``left_right_blocked_8(grids[b])`` (the scalar union-find
        reference): an 8-connected path of OFF sites joins the left and
        right edges.
    """
    grids = _as_batch(grids)
    batch, rows, cols = grids.shape
    if rows == 0 or cols == 0:
        # Degenerate grids are "blocked" by convention (scalar reference).
        return np.ones(batch, dtype=bool)
    if batch == 0:
        return np.zeros(0, dtype=bool)
    kernels = _backend.numba_kernels()
    if kernels is not None:
        return kernels.left_right_blocked_8_batch(grids)
    if _label_pass_available():
        try:
            return _left_right_blocked_8_label(grids)
        except Exception as error:  # scipy ABI / extension failure
            _degrade_label_pass(error)
    return _left_right_blocked_8_numpy(grids)


def percolation_duality_holds_batch(grids: np.ndarray) -> np.ndarray:
    """Per-grid check of the site-percolation duality.

    The top and bottom edges are ON-disconnected exactly when an
    8-connected OFF path joins the left and right edges; returns the
    boolean ``(B,)`` array of "duality holds" flags (all ``True`` for any
    well-formed grid — a test invariant, mirroring the scalar
    :func:`repro.crossbar.paths.percolation_duality_holds`).
    """
    grids = _as_batch(grids)
    return top_bottom_connected_batch(grids) == ~left_right_blocked_8_batch(grids)
