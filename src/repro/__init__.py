"""nanoxbar — a reproduction of "Computing with Nano-Crossbar Arrays:
Logic Synthesis and Fault Tolerance" (Altun, Ciriani, Tahoori, DATE 2017).

Sub-packages:

* :mod:`repro.boolean`     — Boolean substrate (cubes, covers, truth tables,
  minimization, duals, PLA, BDDs, affine spaces)
* :mod:`repro.sat`         — pure-Python CDCL SAT solver + encodings
* :mod:`repro.crossbar`    — diode / FET / four-terminal lattice array models
* :mod:`repro.synthesis`   — the paper's synthesis flows (Fig. 3 / Fig. 5,
  P-circuits, D-reducible, SAT-optimal, folding)
* :mod:`repro.reliability` — BIST, BISD, BISM, defect-unaware flow,
  variation and yield models (Section IV)
* :mod:`repro.arch`        — arithmetic / memory / SSM extensions (Section V)
* :mod:`repro.eval`        — benchmark suite + experiment registry + CLI

Quickstart::

    from repro.boolean import BooleanFunction
    from repro.synthesis import synthesize_lattice_dual

    f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
    lattice = synthesize_lattice_dual(f.on)   # the paper's 2x2 example
"""

from . import arch, boolean, crossbar, eval, reliability, sat, synthesis
from .boolean import BooleanFunction, Cover, Cube, Literal, TruthTable
from .crossbar import DiodeCrossbar, FetCrossbar, Lattice
from .synthesis import (
    synthesize_diode,
    synthesize_dreducible,
    synthesize_fet,
    synthesize_lattice_dual,
    synthesize_lattice_optimal,
    synthesize_pcircuit,
)

__version__ = "1.0.0"

__all__ = [
    "BooleanFunction",
    "Cover",
    "Cube",
    "DiodeCrossbar",
    "FetCrossbar",
    "Lattice",
    "Literal",
    "TruthTable",
    "__version__",
    "arch",
    "boolean",
    "crossbar",
    "eval",
    "reliability",
    "sat",
    "synthesis",
    "synthesize_diode",
    "synthesize_dreducible",
    "synthesize_fet",
    "synthesize_lattice_dual",
    "synthesize_lattice_optimal",
    "synthesize_pcircuit",
]
