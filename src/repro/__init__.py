"""nanoxbar — a reproduction of "Computing with Nano-Crossbar Arrays:
Logic Synthesis and Fault Tolerance" (Altun, Ciriani, Tahoori, DATE 2017).

Sub-packages:

* :mod:`repro.boolean`     — Boolean substrate (cubes, covers, truth tables,
  minimization, duals, PLA, BDDs, affine spaces)
* :mod:`repro.sat`         — pure-Python CDCL SAT solver + encodings
* :mod:`repro.crossbar`    — diode / FET / four-terminal lattice array models
* :mod:`repro.synthesis`   — the paper's synthesis flows (Fig. 3 / Fig. 5,
  P-circuits, D-reducible, SAT-optimal, folding)
* :mod:`repro.reliability` — BIST, BISD, BISM, defect-unaware flow,
  variation and yield models (Section IV)
* :mod:`repro.arch`        — arithmetic / memory / SSM extensions (Section V)
* :mod:`repro.eval`        — benchmark suite + experiment registry + CLI
* :mod:`repro.engine`      — parallel batch-synthesis engine
* :mod:`repro.faultlab`    — vectorized Monte-Carlo fault-tolerance
  campaigns (Section IV at ensemble scale, ``nanoxbar faultsim``)
* :mod:`repro.varsim`      — batched variation-aware Monte-Carlo delay
  campaigns (Section IV variation tolerance, ``nanoxbar varsweep``)
* :mod:`repro.xbareval`    — batched packed-bitset lattice evaluation core
  (whole truth tables, placement sweeps and shortest-path delay relaxation
  per kernel call; the scalar references remain as bit-exact checks)
* :mod:`repro.analysis`    — invariant lint engine (``nanoxbar lint``)
  and runtime lock sanitizer (``NANOXBAR_LOCKCHECK=1``) guarding the
  determinism / concurrency / layering contracts above

Quickstart::

    from repro.boolean import BooleanFunction
    from repro.synthesis import synthesize_lattice_dual

    f = BooleanFunction.from_expression("x1 x2 + x1' x2'")
    lattice = synthesize_lattice_dual(f.on)   # the paper's 2x2 example

Batch synthesis engine
----------------------

:mod:`repro.engine` turns the single-function flows above into a batch
service: declarative :class:`~repro.engine.SynthesisJob` descriptions, a
persistent SQLite result store keyed by the NPN-canonical form (array
synthesis cost is NPN-invariant, so one cached race serves the whole
equivalence class — hits are rewritten back through the stored witness
transform), a strategy portfolio racing the dual-based, D-reducible,
P-circuit and SAT-optimal flows under deterministic effort budgets, and a
sharded multiprocessing pool with serial fallback.  ``nanoxbar batch``
drives the whole standard benchmark suite through it in one shot::

    from repro.engine import BatchEngine, SynthesisJob
    from repro.eval.benchsuite import standard_suite

    jobs = [SynthesisJob.from_function(b.function, b.name)
            for b in standard_suite()]
    with BatchEngine(cache_path="results.sqlite", processes=4) as engine:
        results = engine.run(jobs)   # bit-identical in serial / pooled mode
        print(engine.report())       # hit rate, dedup, throughput, wins
"""

from . import analysis, arch, boolean, crossbar, eval, reliability, sat
from . import engine, synthesis, xbareval
from .boolean import BooleanFunction, Cover, Cube, Literal, TruthTable
from .crossbar import DiodeCrossbar, FetCrossbar, Lattice
from .engine import BatchEngine, JobResult, SynthesisJob
from .synthesis import (
    synthesize_diode,
    synthesize_dreducible,
    synthesize_fet,
    synthesize_lattice_dual,
    synthesize_lattice_optimal,
    synthesize_pcircuit,
)

__version__ = "1.0.0"


def _wire_kernel_event_sink() -> None:
    """Composition root: kernels emit operational events through the
    :mod:`repro.xbareval.events` seam with no knowledge of repro.obs;
    only here, where every layer is visible, is the structured logger
    injected as the sink (lint rule NX302 keeps it that way)."""
    from .obs import get_logger, log_event
    from .xbareval import events

    def _sink(source: str, message: str, **fields: object) -> None:
        log_event(get_logger(source), message, **fields)

    events.set_event_sink(_sink)


_wire_kernel_event_sink()

__all__ = [
    "BatchEngine",
    "BooleanFunction",
    "Cover",
    "Cube",
    "DiodeCrossbar",
    "FetCrossbar",
    "JobResult",
    "Lattice",
    "Literal",
    "SynthesisJob",
    "TruthTable",
    "__version__",
    "analysis",
    "arch",
    "boolean",
    "crossbar",
    "engine",
    "eval",
    "reliability",
    "sat",
    "synthesis",
    "synthesize_diode",
    "synthesize_dreducible",
    "synthesize_fet",
    "synthesize_lattice_dual",
    "synthesize_lattice_optimal",
    "synthesize_pcircuit",
    "xbareval",
]
