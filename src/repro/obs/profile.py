"""Span-tree profiling: collect a run's spans, render a timing breakdown.

``nanoxbar batch/faultsim/varsweep --profile`` wraps the whole command in
:func:`profiled`: a root span is opened (so every span the run produces
shares one trace), completed spans are collected through a tracing
listener, and on exit :func:`render_span_tree` prints an indented tree —
sibling spans of the same name aggregated into one line with count,
total, average and share-of-parent::

    cli.faultsim                        1x   2.431s
      faultlab.point                    4x   2.380s  97.9%  avg 0.595s
        pool.shard                     16x   2.104s  88.4%  avg 0.131s

Synthetic spans (pool shards timed inside worker processes, queue waits)
appear exactly like context-manager spans — they were recorded with the
same trace and parent IDs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from . import tracing


def _aggregate(children: list[dict]) -> list[tuple[str, list[dict]]]:
    """Group sibling spans by name, preserving first-seen order."""
    groups: dict[str, list[dict]] = {}
    for child in sorted(children, key=lambda s: s["start"]):
        groups.setdefault(child["name"], []).append(child)
    return list(groups.items())


def render_span_tree(spans: list[dict]) -> str:
    """Indented same-name-aggregated timing tree of ``spans``."""
    if not spans:
        return "(no spans recorded)"
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s["parent_id"] if s["parent_id"] in by_id else None
        children.setdefault(parent, []).append(s)

    lines: list[str] = []

    def emit(group_spans: list[dict], depth: int,
             parent_total: float | None) -> None:
        name = group_spans[0]["name"]
        count = len(group_spans)
        total = sum(s["duration"] for s in group_spans)
        label = f"{'  ' * depth}{name}"
        line = f"{label:<40s} {count:>5d}x {total:>9.3f}s"
        if parent_total and parent_total > 0:
            line += f" {100.0 * total / parent_total:5.1f}%"
        if count > 1:
            line += f"  avg {total / count:.3f}s"
        lines.append(line)
        merged: list[dict] = []
        for s in group_spans:
            merged.extend(children.get(s["span_id"], []))
        for _name, group in _aggregate(merged):
            emit(group, depth + 1, total)

    for _name, group in _aggregate(children.get(None, [])):
        emit(group, 0, None)
    return "\n".join(lines)


class ProfileReport:
    """The collector ``profiled`` yields; render after the block exits."""

    def __init__(self) -> None:
        self.spans: list[dict] = []
        self.trace_id: str | None = None

    def render(self) -> str:
        spans = self.spans
        if self.trace_id is not None:
            spans = [s for s in spans if s["trace_id"] == self.trace_id]
        return render_span_tree(spans)


@contextmanager
def profiled(name: str = "profile", **fields) -> Iterator[ProfileReport]:
    """Collect every span completed inside the block under a root span."""
    report = ProfileReport()
    listener = report.spans.append
    tracing.add_span_listener(listener)
    try:
        with tracing.span(name, **fields) as handle:
            report.trace_id = handle.trace_id
            yield report
    finally:
        tracing.remove_span_listener(listener)
