"""The telemetry on/off switch shared by metrics and tracing.

A single module-level flag (reads are GIL-atomic) checked at every
*operation* — counter increments, span entries — not at instrument
creation.  Handles resolved while telemetry is off therefore come alive
when it is switched back on, which is what the overhead benchmark
(``benchmarks/bench_obs.py``) relies on to compare the same engine with
instrumentation on and off.

``NANOXBAR_OBS=0`` (or ``off``/``false``) disables telemetry at import.
"""

from __future__ import annotations

import os

_enabled: bool = os.environ.get("NANOXBAR_OBS", "1").lower() not in (
    "0", "off", "false")


def enabled() -> bool:
    """Is the telemetry subsystem currently recording?"""
    return _enabled


def set_enabled(value: bool) -> None:
    """Turn telemetry recording on or off process-wide."""
    global _enabled
    _enabled = bool(value)
