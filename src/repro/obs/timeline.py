"""Metrics time-series: a background recorder ticking the registry.

Every read-out the stack had before this module answers "what is the
value *now*"; the :class:`MetricsRecorder` answers "what happened over
the last five minutes".  A daemon thread ticks the process-global
:class:`~repro.obs.metrics.MetricsRegistry` at a fixed interval
(``NANOXBAR_OBS_TICK``, default 1 s) and differences consecutive scrapes
into *frames*:

* counters   → cumulative value, per-tick delta, windowed **rate**;
* gauges     → last value;
* histograms → bucket **deltas** plus rolling p50/p99 computed from the
  deltas of the trailing :attr:`~MetricsRecorder.quantile_window` frames
  (so the quantiles track *recent* latency, not the process lifetime);
* per-process resource gauges — CPU time via ``resource.getrusage``
  and current RSS via ``/proc/self/statm`` (peak RSS as the fallback) —
  also published back into the registry as ``process_cpu_seconds_total``
  / ``process_resident_memory_bytes`` so plain scrapes see them.

Frames land in a bounded multi-resolution ring: a *fine* ring at tick
resolution (default 600 frames ≈ 10 min at 1 s) and a *coarse* ring of
aggregated frames (default one per 30 ticks, 480 retained ≈ 4 h).  Each
frame carries a monotonically increasing ``cursor``; readers page with
:meth:`MetricsRecorder.history` (``since=<cursor>``) and therefore never
miss or double-count a frame while they keep up with the ring capacity —
the contract the server's SSE stream and ``nanoxbar top`` build on.

A :class:`~repro.obs.health.HealthMonitor` attached to the recorder is
evaluated after every tick, which is what degrades ``/healthz``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque
from typing import Callable

from . import _state
from .metrics import MetricsRegistry, quantile_from_counts, registry

#: Default tick interval (seconds); overridable via ``NANOXBAR_OBS_TICK``.
DEFAULT_TICK_SECONDS = 1.0

#: Fine-ring frames retained (at tick resolution).
DEFAULT_CAPACITY = 600

#: Fine frames aggregated into one coarse frame / coarse frames retained.
DEFAULT_COARSE_STRIDE = 30
DEFAULT_COARSE_CAPACITY = 480

#: Trailing fine frames feeding each frame's rolling p50/p99.
DEFAULT_QUANTILE_WINDOW = 30


def tick_interval() -> float:
    """The configured tick interval (``NANOXBAR_OBS_TICK`` or 1 s)."""
    raw = os.environ.get("NANOXBAR_OBS_TICK", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_TICK_SECONDS
    return value if value > 0 else DEFAULT_TICK_SECONDS


def read_process_resources() -> dict:
    """Per-process CPU time and memory, stdlib-only.

    ``resource.getrusage`` supplies CPU seconds and peak RSS on POSIX;
    current RSS comes from ``/proc/self/statm`` where available (Linux),
    falling back to the peak figure.  On platforms without either the
    missing fields are 0.0 — the recorder must never fail a tick over
    resource accounting.
    """
    cpu_seconds = 0.0
    max_rss_bytes = 0.0
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        cpu_seconds = usage.ru_utime + usage.ru_stime
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        scale = 1 if sys.platform == "darwin" else 1024
        max_rss_bytes = float(usage.ru_maxrss * scale)
    except (ImportError, ValueError, OSError):  # pragma: no cover - non-POSIX
        times = os.times()
        cpu_seconds = times.user + times.system
    rss_bytes = max_rss_bytes
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        rss_bytes = float(pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, ValueError, IndexError):
        pass  # no procfs: peak RSS is the best available answer
    return {"cpu_seconds": cpu_seconds, "rss_bytes": rss_bytes,
            "max_rss_bytes": max_rss_bytes}


def _series_key(name: str, labels: str) -> str:
    return f"{name}{{{labels}}}" if labels else name


class MetricsRecorder:
    """Background registry ticker producing a bounded ring of frames.

    Args:
        interval: tick period in seconds (default ``NANOXBAR_OBS_TICK``).
        capacity: fine-ring length (frames).
        coarse_stride: fine frames folded into one coarse frame
            (``0`` disables the coarse ring).
        coarse_capacity: coarse-ring length.
        quantile_window: trailing fine frames feeding rolling p50/p99.
        registry_: the metrics registry to scrape (default the
            process-global one).
        health: a :class:`~repro.obs.health.HealthMonitor` evaluated
            after every tick (optional).

    The baseline scrape happens at construction, so the first frame's
    deltas cover only what happened while recording — attaching to a
    long-lived process does not produce a lifetime-sized rate spike.
    Frames from a registry reset (counters moving backwards) clamp
    deltas at zero rather than reporting negative rates.
    """

    def __init__(self, interval: float | None = None,
                 capacity: int = DEFAULT_CAPACITY,
                 coarse_stride: int = DEFAULT_COARSE_STRIDE,
                 coarse_capacity: int = DEFAULT_COARSE_CAPACITY,
                 quantile_window: int = DEFAULT_QUANTILE_WINDOW,
                 registry_: MetricsRegistry | None = None,
                 health=None):
        self.interval = tick_interval() if interval is None \
            else float(interval)
        if self.interval <= 0:
            raise ValueError("tick interval must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.quantile_window = max(1, int(quantile_window))
        self.coarse_stride = max(0, int(coarse_stride))
        self.health = health
        self._registry = registry_ if registry_ is not None else registry()
        self._frames: deque[dict] = deque(maxlen=capacity)
        self._coarse: deque[dict] = deque(maxlen=max(1, coarse_capacity))
        self._cond = threading.Condition()
        self._cursor = 0
        self._prev_counters: dict[str, float] = {}
        self._prev_hists: dict[str, tuple[list[int], float, int]] = {}
        self._prev_mono: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._baseline()

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "MetricsRecorder":
        """Start the background tick thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="nanoxbar-obs-recorder", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the tick thread (the ring stays readable)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick_once()
            except Exception:  # pragma: no cover - keep the heart beating
                # A tick must never kill the recorder; the next one gets
                # a fresh chance (and a larger elapsed window).
                pass

    # -- frame production -------------------------------------------------
    def _baseline(self) -> None:
        """Prime previous-state tables without emitting a frame."""
        # Register the process series now so the first frame's CPU delta
        # covers construction→tick, not the whole process lifetime.
        self._publish_resources(read_process_resources())
        for record in self._registry.collect():
            key = _series_key(record["name"], record["labels"])
            if record["kind"] == "counter":
                self._prev_counters[key] = record["value"]
            elif record["kind"] == "histogram":
                self._prev_hists[key] = (list(record["counts"]),
                                         record["sum"], record["count"])
        self._prev_mono = time.perf_counter()

    def tick_once(self) -> dict:
        """Scrape, difference, append and return one frame.

        Called by the background thread each interval; tests and the
        serverless ``nanoxbar top`` path call it directly.
        """
        now_mono = time.perf_counter()
        elapsed = max(1e-9, now_mono - (self._prev_mono or now_mono)) \
            if self._prev_mono is not None else self.interval
        self._prev_mono = now_mono
        resources = read_process_resources()
        self._publish_resources(resources)
        frame: dict = {
            "cursor": 0,  # assigned under the lock below
            "ts": time.time(),
            "elapsed": elapsed,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "resources": resources,
        }
        for record in self._registry.collect():
            key = _series_key(record["name"], record["labels"])
            if record["kind"] == "counter":
                previous = self._prev_counters.get(key, 0)
                delta = max(0, record["value"] - previous)
                self._prev_counters[key] = record["value"]
                frame["counters"][key] = {
                    "value": record["value"],
                    "delta": delta,
                    "rate": delta / elapsed,
                }
            elif record["kind"] == "gauge":
                frame["gauges"][key] = record["value"]
            else:
                frame["histograms"][key] = self._hist_entry(key, record,
                                                            elapsed)
        with self._cond:
            self._cursor += 1
            frame["cursor"] = self._cursor
            self._attach_rolling_quantiles(frame)
            self._frames.append(frame)
            if self.coarse_stride and self._cursor % self.coarse_stride == 0:
                recent = list(self._frames)[-self.coarse_stride:]
                self._coarse.append(_aggregate_frames(recent))
            self._cond.notify_all()
        if self.health is not None:
            self.health.evaluate(self)
        return frame

    def _hist_entry(self, key: str, record: dict, elapsed: float) -> dict:
        counts = list(record["counts"])
        prev_counts, prev_sum, prev_count = self._prev_hists.get(
            key, ([0] * len(counts), 0.0, 0))
        if len(prev_counts) != len(counts):  # bucket layout changed
            prev_counts, prev_sum, prev_count = [0] * len(counts), 0.0, 0
        delta_buckets = [max(0, c - p)
                         for c, p in zip(counts, prev_counts)]
        delta_count = max(0, record["count"] - prev_count)
        self._prev_hists[key] = (counts, record["sum"], record["count"])
        return {
            "count": record["count"],
            "delta": delta_count,
            "rate": delta_count / elapsed,
            "sum": record["sum"],
            "delta_sum": max(0.0, record["sum"] - prev_sum),
            "bounds": list(record["bounds"]),
            "delta_buckets": delta_buckets,
        }

    def _attach_rolling_quantiles(self, frame: dict) -> None:
        """p50/p99 over the trailing quantile window's bucket deltas.

        Runs under the ring lock, with ``frame`` not yet appended — the
        window is the last ``quantile_window - 1`` ring frames plus this
        one.  Quantiles are 0.0 while the window holds no observations
        (an idle series reads as quiet, not as its lifetime latency).
        """
        trailing = list(self._frames)[-(self.quantile_window - 1):] \
            if self.quantile_window > 1 else []
        for key, entry in frame["histograms"].items():
            window = list(entry["delta_buckets"])
            for old in trailing:
                old_entry = old["histograms"].get(key)
                if old_entry is None or \
                        len(old_entry["delta_buckets"]) != len(window):
                    continue
                for index, count in enumerate(old_entry["delta_buckets"]):
                    window[index] += count
            bounds = tuple(entry["bounds"])
            entry["p50"] = quantile_from_counts(bounds, window, 0.50)
            entry["p99"] = quantile_from_counts(bounds, window, 0.99)

    def _publish_resources(self, resources: dict) -> None:
        """Mirror resource readings into the registry (scrape-visible)."""
        if not _state.enabled():
            return
        reg = self._registry
        counter = reg.counter("process_cpu_seconds_total",
                              "process CPU time (user+system)")
        counter.inc(max(0.0, resources["cpu_seconds"] - counter.value))
        reg.gauge("process_resident_memory_bytes",
                  "current resident set size").set(resources["rss_bytes"])
        reg.gauge("process_max_resident_memory_bytes",
                  "peak resident set size").set(resources["max_rss_bytes"])

    # -- read-out ---------------------------------------------------------
    @property
    def cursor(self) -> int:
        with self._cond:
            return self._cursor

    def latest(self) -> dict | None:
        with self._cond:
            return self._frames[-1] if self._frames else None

    def history(self, since: int = 0, limit: int | None = None,
                resolution: str = "fine") -> list[dict]:
        """Frames with ``cursor > since``, oldest first.

        ``limit`` keeps only the newest N of the selection.  Cursors are
        dense on the fine ring, so a reader that polls ``since=<last
        cursor seen>`` faster than ``capacity * interval`` observes every
        frame exactly once.
        """
        if resolution not in ("fine", "coarse"):
            raise ValueError(f"unknown resolution {resolution!r}")
        with self._cond:
            ring = self._frames if resolution == "fine" else self._coarse
            frames = [f for f in ring if f["cursor"] > since]
        if limit is not None and limit >= 0:
            frames = frames[-limit:]
        return frames

    def wait_for(self, since: int, timeout: float | None = None) -> list[dict]:
        """Block until a frame newer than ``since`` exists; return them."""
        with self._cond:
            self._cond.wait_for(lambda: self._cursor > since,
                                timeout=timeout)
        return self.history(since=since)

    def describe(self) -> dict:
        """Recorder configuration for history/stream payload headers."""
        return {
            "interval": self.interval,
            "capacity": self._frames.maxlen,
            "coarse_stride": self.coarse_stride,
            "coarse_capacity": self._coarse.maxlen,
            "quantile_window": self.quantile_window,
        }


def _aggregate_frames(frames: list[dict]) -> dict:
    """Fold consecutive fine frames into one coarse frame.

    Counter deltas sum (rates re-derive from the summed elapsed), gauges
    keep their last value, histogram bucket deltas sum and the quantiles
    re-derive from the summed deltas; the coarse cursor/timestamp are the
    last fine frame's.
    """
    if not frames:
        raise ValueError("cannot aggregate zero frames")
    last = frames[-1]
    elapsed = sum(f["elapsed"] for f in frames)
    out: dict = {
        "cursor": last["cursor"],
        "ts": last["ts"],
        "elapsed": elapsed,
        "stride": len(frames),
        "counters": {},
        "gauges": dict(last["gauges"]),
        "histograms": {},
        "resources": dict(last["resources"]),
    }
    keys = {k for f in frames for k in f["counters"]}
    for key in keys:
        delta = sum(f["counters"][key]["delta"]
                    for f in frames if key in f["counters"])
        value = last["counters"][key]["value"] \
            if key in last["counters"] else delta
        out["counters"][key] = {"value": value, "delta": delta,
                                "rate": delta / max(elapsed, 1e-9)}
    hist_keys = {k for f in frames for k in f["histograms"]}
    for key in hist_keys:
        entries = [f["histograms"][key] for f in frames
                   if key in f["histograms"]]
        bounds = entries[-1]["bounds"]
        delta_buckets = [0] * len(entries[-1]["delta_buckets"])
        delta = 0
        delta_sum = 0.0
        for entry in entries:
            if len(entry["delta_buckets"]) != len(delta_buckets):
                continue
            for index, count in enumerate(entry["delta_buckets"]):
                delta_buckets[index] += count
            delta += entry["delta"]
            delta_sum += entry["delta_sum"]
        out["histograms"][key] = {
            "count": entries[-1]["count"],
            "delta": delta,
            "rate": delta / max(elapsed, 1e-9),
            "sum": entries[-1]["sum"],
            "delta_sum": delta_sum,
            "bounds": list(bounds),
            "delta_buckets": delta_buckets,
            "p50": quantile_from_counts(tuple(bounds), delta_buckets, 0.50),
            "p99": quantile_from_counts(tuple(bounds), delta_buckets, 0.99),
        }
    return out


#: Module-level singleton for surfaces that want "the" recorder without
#: owning one (``nanoxbar top --local``).  Created lazily, never started
#: implicitly.
_LOCAL: MetricsRecorder | None = None
_LOCAL_LOCK = threading.Lock()


def local_recorder(factory: Callable[[], MetricsRecorder] | None = None
                   ) -> MetricsRecorder:
    """The process-local recorder, created on first use."""
    global _LOCAL
    with _LOCAL_LOCK:
        if _LOCAL is None:
            _LOCAL = factory() if factory is not None else MetricsRecorder()
        return _LOCAL
