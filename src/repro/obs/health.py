"""Declarative watchdog rules evaluated on every recorder tick.

A :class:`WatchdogRule` names a condition over the metrics timeline —
queue depth growing tick over tick, a rolling p99 above its ceiling, an
error-rate threshold — and a :class:`HealthMonitor` holds the rules plus
their firing state.  The monitor is attached to a
:class:`~repro.obs.timeline.MetricsRecorder` and re-evaluated after each
frame; on a fire transition it emits one structured log event and bumps
``nanoxbar_alerts_total{rule}``, on recovery it logs again.  The
server's ``/healthz`` degrades from ``ok`` to ``degraded`` while any
rule is firing (:meth:`HealthMonitor.status`).

Rule kinds (``series`` is a metric *name*; ``label_filter`` narrows to
series whose labels carry the given key/value pairs, summing across the
matches):

``gauge_growth``
    The gauge rose strictly on each of the last ``window`` ticks *and*
    sits at or above ``threshold`` — the backpressure trigger shape:
    depth 3 → 5 → 9 fires, a flat saturated queue does not.
``quantile_ceiling``
    The rolling quantile (``quantile`` ∈ {0.5, 0.99}, computed by the
    recorder over its quantile window) exceeded ``threshold``.
``rate_threshold``
    The counter's windowed rate — summed deltas over the last ``window``
    frames divided by their elapsed time — exceeded ``threshold``/s.

Hysteresis: a rule fires after ``for_frames`` consecutive breaching
evaluations and clears after ``clear_after`` consecutive quiet ones, so
one noisy tick neither raises nor silences an alert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .logging import get_logger, log_event
from .metrics import registry

_LOG = get_logger("health")

_KINDS = ("gauge_growth", "quantile_ceiling", "rate_threshold")


@dataclass
class WatchdogRule:
    """One declarative health condition over the metrics timeline."""

    name: str
    kind: str
    series: str
    threshold: float = 0.0
    window: int = 5
    quantile: float = 0.99
    label_filter: dict[str, str] | None = None
    for_frames: int = 1
    clear_after: int = 2

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown watchdog kind {self.kind!r} "
                             f"(expected one of {_KINDS})")
        if self.window < 1:
            raise ValueError("window must be at least 1 frame")
        if self.quantile not in (0.5, 0.99):
            raise ValueError("quantile must be 0.5 or 0.99 (the rolling "
                             "quantiles frames carry)")
        if self.for_frames < 1 or self.clear_after < 1:
            raise ValueError("for_frames/clear_after must be >= 1")


class _RuleState:
    __slots__ = ("firing", "since", "breaches", "quiet", "value", "message")

    def __init__(self) -> None:
        self.firing = False
        self.since: float | None = None
        self.breaches = 0
        self.quiet = 0
        self.value: float | None = None
        self.message = ""


def _matching_items(section: dict, rule: WatchdogRule):
    """``(key, entry)`` series in a frame section selected by the rule."""
    exact = rule.series
    prefix = rule.series + "{"
    for key, entry in section.items():
        if key != exact and not key.startswith(prefix):
            continue
        if rule.label_filter:
            body = key[len(prefix):-1] if key.startswith(prefix) else ""
            if not all(f'{k}="{v}"' in body
                       for k, v in rule.label_filter.items()):
                continue
        yield key, entry


def _check(rule: WatchdogRule, frames: list[dict]) -> tuple[bool, float, str]:
    """Evaluate one rule against the trailing frames.

    Returns ``(breached, observed value, human message)``.  Too little
    history reads as quiet — watchdogs stay silent through warm-up.
    """
    if not frames:
        return False, 0.0, "no frames yet"
    if rule.kind == "gauge_growth":
        need = rule.window + 1
        if len(frames) < need:
            return False, 0.0, f"warming up ({len(frames)}/{need} frames)"
        values = [sum(entry for _key, entry in
                      _matching_items(frame["gauges"], rule))
                  for frame in frames[-need:]]
        growing = all(b > a for a, b in zip(values, values[1:]))
        breached = growing and values[-1] >= rule.threshold
        message = (f"{rule.series} grew {values[0]:g} -> {values[-1]:g} "
                   f"over {rule.window} ticks")
        return breached, values[-1], message
    if rule.kind == "quantile_ceiling":
        label = "p50" if rule.quantile == 0.5 else "p99"
        worst = 0.0
        for _key, entry in _matching_items(frames[-1]["histograms"], rule):
            worst = max(worst, entry.get(label, 0.0))
        message = (f"{rule.series} rolling {label} {worst:.4g}s "
                   f"(ceiling {rule.threshold:g}s)")
        return worst > rule.threshold, worst, message
    # rate_threshold
    recent = frames[-rule.window:]
    elapsed = sum(frame["elapsed"] for frame in recent)
    delta = sum(entry["delta"]
                for frame in recent
                for _key, entry in _matching_items(frame["counters"], rule))
    rate = delta / max(elapsed, 1e-9)
    message = (f"{rule.series} at {rate:.4g}/s over {len(recent)} ticks "
               f"(threshold {rule.threshold:g}/s)")
    return rate > rule.threshold, rate, message


class HealthMonitor:
    """Rule states + the ``ok``/``degraded`` roll-up for ``/healthz``."""

    def __init__(self, rules: tuple[WatchdogRule, ...] | list = ()):
        self.rules = tuple(rules)
        self._states = {rule.name: _RuleState() for rule in self.rules}
        if len(self._states) != len(self.rules):
            raise ValueError("watchdog rule names must be unique")

    def evaluate(self, recorder) -> None:
        """Re-check every rule against the recorder's trailing frames."""
        if not self.rules:
            return
        need = max(rule.window for rule in self.rules) + 1
        frames = recorder.history(limit=need)
        reg = getattr(recorder, "_registry", None) or registry()
        for rule in self.rules:
            state = self._states[rule.name]
            breached, value, message = _check(rule, frames)
            state.value = value
            state.message = message
            if breached:
                state.breaches += 1
                state.quiet = 0
                if not state.firing and state.breaches >= rule.for_frames:
                    state.firing = True
                    state.since = time.time()
                    reg.counter(
                        "nanoxbar_alerts_total",
                        "watchdog rule fire transitions",
                        labels={"rule": rule.name}).inc()
                    log_event(_LOG, "watchdog fired", rule=rule.name,
                              kind=rule.kind, series=rule.series,
                              value=round(value, 6), detail=message)
            else:
                state.breaches = 0
                state.quiet += 1
                if state.firing and state.quiet >= rule.clear_after:
                    state.firing = False
                    state.since = None
                    log_event(_LOG, "watchdog recovered", rule=rule.name,
                              kind=rule.kind, series=rule.series,
                              value=round(value, 6))

    def status(self) -> dict:
        """The ``/healthz`` contribution: roll-up + per-rule detail."""
        alerts = []
        rules = []
        for rule in self.rules:
            state = self._states[rule.name]
            rules.append({
                "rule": rule.name,
                "kind": rule.kind,
                "series": rule.series,
                "firing": state.firing,
                "value": state.value,
            })
            if state.firing:
                alerts.append({"rule": rule.name, "since": state.since,
                               "message": state.message})
        return {
            "status": "degraded" if alerts else "ok",
            "alerts": alerts,
            "rules": rules,
        }


def default_server_rules(queue_depth_floor: float = 8.0,
                         p99_ceiling_seconds: float = 30.0,
                         failure_rate_per_s: float = 0.5
                         ) -> tuple[WatchdogRule, ...]:
    """The batch server's stock watchdogs.

    * sustained queue-depth growth at or past ``queue_depth_floor`` jobs
      (the backpressure trigger for the shard-fabric roadmap item);
    * rolling HTTP p99 past ``p99_ceiling_seconds``;
    * failed jobs arriving faster than ``failure_rate_per_s``;
    * experiment-grid points landing in ``failed`` faster than
      ``failure_rate_per_s`` (crashing workers or a broken family
      adapter — see :mod:`repro.grid`).
    """
    return (
        WatchdogRule("queue-depth-growth", "gauge_growth",
                     "server_queue_depth", threshold=queue_depth_floor,
                     window=5),
        WatchdogRule("http-p99-latency", "quantile_ceiling",
                     "server_http_request_seconds",
                     threshold=p99_ceiling_seconds, for_frames=2),
        WatchdogRule("job-failure-rate", "rate_threshold",
                     "server_jobs_total",
                     label_filter={"state": "failed"},
                     threshold=failure_rate_per_s, window=10),
        WatchdogRule("grid-failure-rate", "rate_threshold",
                     "nanoxbar_grid_points_total",
                     label_filter={"status": "failed"},
                     threshold=failure_rate_per_s, window=10),
    )
