"""Sampling wall-clock profiler over ``sys._current_frames()``.

The span tree (``--profile``) answers "how long did each phase take";
this module answers "where inside a phase is the time actually going"
without instrumenting anything: a sampler thread wakes every
``interval`` seconds, snapshots every thread's Python stack and counts
identical stacks.  Because C extensions (numpy kernels) do not push
Python frames, a thread busy inside a vectorised kernel is attributed to
the Python function that called it — exactly the attribution the hot-path
work wants.

Output faces:

* :meth:`SampleReport.collapsed` — collapsed-stack lines
  (``root;child;leaf count``), the flamegraph.pl / speedscope wire
  format, served by ``GET /api/profile``;
* :meth:`SampleReport.top` / :meth:`SampleReport.render_top` — a top-N
  self-time table (``nanoxbar ... --sample-profile``);
* :meth:`SampleReport.hot_fraction` — the share of samples whose stack
  passes a predicate (the bench's "≥ 80% of self-time lands in the known
  hot kernels" assertion).

Frames are labelled ``pkg/module.py:function``; stacks from *idle*
leaves (lock waits, selector polls, socket accepts) are dropped unless
``include_idle=True`` so a mostly-sleeping server does not drown the
signal — the skip count is reported, never hidden.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from typing import Callable, Iterable

#: Default sampling period (seconds): fine enough for multi-second runs,
#: coarse enough that the sampler itself stays invisible.
DEFAULT_INTERVAL = 0.005

#: ``(file basename, function)`` leaves that mean "parked, not working".
IDLE_LEAVES = frozenset({
    ("threading.py", "wait"),
    ("threading.py", "_wait_for_tstate_lock"),
    ("selectors.py", "select"),
    ("selectors.py", "poll"),
    ("socket.py", "accept"),
    ("socket.py", "recv"),
    ("socket.py", "recv_into"),
    ("connection.py", "poll"),
    ("connection.py", "_poll"),
    ("queue.py", "get"),
    # The thread blocked inside sample_for's sleep (C-level, so its
    # Python leaf is sample_for itself) is the profiler's own harness.
    ("sampler.py", "sample_for"),
})


def _frame_label(filename: str, function: str) -> str:
    """``pkg/module.py:function`` — short, stable, grep-able."""
    parts = filename.replace("\\", "/").rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else parts[-1]
    return f"{short}:{function}"


def _stack_of(frame, max_depth: int) -> tuple[tuple[str, str], ...]:
    """Innermost-last ``(filename, function)`` tuples for one thread."""
    stack = []
    while frame is not None and len(stack) < max_depth:
        stack.append((frame.f_code.co_filename, frame.f_code.co_name))
        frame = frame.f_back
    stack.reverse()
    return tuple(stack)


class SampleReport:
    """Aggregated stack samples from one profiling window."""

    def __init__(self, samples: Counter, total: int, skipped_idle: int,
                 duration: float, interval: float):
        #: ``{stack (root-first, (file, func) tuples): count}``
        self.samples = samples
        self.total = total
        self.skipped_idle = skipped_idle
        self.duration = duration
        self.interval = interval

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c count`` line per stack."""
        lines = []
        for stack, count in sorted(self.samples.items()):
            path = ";".join(_frame_label(f, fn) for f, fn in stack)
            lines.append(f"{path} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def self_times(self) -> Counter:
        """``{leaf label: samples}`` — time spent *in* each function."""
        leaves: Counter = Counter()
        for stack, count in self.samples.items():
            leaves[_frame_label(*stack[-1])] += count
        return leaves

    def total_times(self) -> Counter:
        """``{label: samples}`` — time spent in or below each function."""
        totals: Counter = Counter()
        for stack, count in self.samples.items():
            for entry in set(stack):
                totals[_frame_label(*entry)] += count
        return totals

    def top(self, n: int = 15) -> list[tuple[str, int, int]]:
        """``(label, self samples, total samples)`` by self-time."""
        totals = self.total_times()
        return [(label, self_count, totals[label])
                for label, self_count in self.self_times().most_common(n)]

    def render_top(self, n: int = 15) -> str:
        """The ``--sample-profile`` table."""
        if self.total == 0:
            return (f"(no samples in {self.duration:.2f}s — "
                    f"run too short or fully idle)")
        header = (f"{self.total} samples over {self.duration:.2f}s "
                  f"(interval {self.interval * 1000:.1f}ms, "
                  f"{self.skipped_idle} idle skipped)")
        lines = [header,
                 f"{'self%':>6s} {'total%':>7s} {'samples':>8s}  function"]
        for label, self_count, total_count in self.top(n):
            lines.append(
                f"{100.0 * self_count / self.total:6.1f} "
                f"{100.0 * total_count / self.total:7.1f} "
                f"{self_count:8d}  {label}")
        return "\n".join(lines)

    def hot_fraction(self,
                     predicate: Callable[[str, str], bool]) -> float:
        """Share of samples whose stack holds a frame passing ``predicate``.

        ``predicate(filename, function)`` — a sample anywhere at or below
        a matching frame counts as attributed to it, which is how a
        flamegraph rolls leaf time up into the kernel that owns it.
        """
        if self.total == 0:
            return 0.0
        hot = sum(count for stack, count in self.samples.items()
                  if any(predicate(f, fn) for f, fn in stack))
        return hot / self.total

    def as_dict(self, top_n: int = 15) -> dict:
        """JSON face for ``GET /api/profile?format=json``."""
        return {
            "total_samples": self.total,
            "skipped_idle": self.skipped_idle,
            "duration_seconds": self.duration,
            "interval_seconds": self.interval,
            "top": [{"function": label, "self": self_count,
                     "total": total_count}
                    for label, self_count, total_count in self.top(top_n)],
            "collapsed": self.collapsed().rstrip("\n").split("\n")
            if self.total else [],
        }


class StackSampler:
    """Periodic whole-process (or single-thread) stack sampler.

    Args:
        interval: seconds between samples.
        thread_ids: restrict sampling to these thread idents (``None``
            samples every thread except the sampler's own).
        include_idle: keep samples whose leaf is a known blocking wait.
        max_depth: deepest stack recorded per sample.

    Use as a context manager around the code under test, or
    ``start()``/``stop()`` across a window, or :func:`sample_for` for a
    fixed wall-clock slice (the ``/api/profile`` shape).
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 thread_ids: Iterable[int] | None = None,
                 include_idle: bool = False, max_depth: int = 64):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.thread_ids = frozenset(thread_ids) if thread_ids is not None \
            else None
        self.include_idle = include_idle
        self.max_depth = max_depth
        self._samples: Counter = Counter()
        self._total = 0
        self._skipped = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started: float | None = None
        self._duration = 0.0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "StackSampler":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._started = time.perf_counter()
        self._thread = threading.Thread(target=self._run,
                                        name="nanoxbar-sampler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> SampleReport:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._started is not None:
            self._duration = time.perf_counter() - self._started
            self._started = None
        return self.report()

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def report(self) -> SampleReport:
        return SampleReport(Counter(self._samples), self._total,
                            self._skipped, self._duration, self.interval)

    # -- the sampling loop ------------------------------------------------
    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample_once(own)

    def _sample_once(self, own_ident: int) -> None:
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            if self.thread_ids is not None and ident not in self.thread_ids:
                continue
            stack = _stack_of(frame, self.max_depth)
            if not stack:
                continue
            if not self.include_idle:
                leaf_file, leaf_fn = stack[-1]
                if (os.path.basename(leaf_file), leaf_fn) in IDLE_LEAVES:
                    self._skipped += 1
                    continue
            self._samples[stack] += 1
            self._total += 1


def sample_for(seconds: float, interval: float = DEFAULT_INTERVAL,
               thread_ids: Iterable[int] | None = None,
               include_idle: bool = False) -> SampleReport:
    """Block for ``seconds`` while sampling; return the report.

    The ``GET /api/profile?seconds=N`` body — run it off the event loop
    (the server uses an executor thread, whose own stack is excluded by
    the sampler-thread rule plus the idle filter).
    """
    sampler = StackSampler(interval=interval, thread_ids=thread_ids,
                           include_idle=include_idle)
    sampler.start()
    try:
        time.sleep(max(0.0, seconds))
    finally:
        report = sampler.stop()
    return report
