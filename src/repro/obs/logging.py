"""Structured JSON logging carrying trace IDs.

The stack logs through named children of the ``nanoxbar`` logger
(:func:`get_logger`).  Unconfigured, that root holds a ``NullHandler`` —
libraries stay silent.  :func:`configure` (called by the CLI) installs a
stderr handler in one of two modes:

* **text** — the classic one-line human format;
* **json** — one JSON object per line: timestamp, level, logger,
  message, the ambient trace ID from :mod:`repro.obs.tracing`, plus any
  structured fields passed via ``logger.info(msg, extra={"data": {...}})``
  or the :func:`log_event` helper.

Selection order: an explicit ``json_mode`` argument (the ``nanoxbar
--log-json`` flag) wins, else the ``NANOXBAR_LOG`` environment variable
(``json`` / ``text`` / ``off``), else text.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Any, TextIO

from . import tracing

_ROOT_NAME = "nanoxbar"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


class JsonFormatter(logging.Formatter):
    """One JSON object per record, trace ID included when present."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace_id = tracing.current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            payload.update(data)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure(json_mode: bool | None = None,
              level: int | str | None = None,
              stream: TextIO | None = None) -> logging.Logger:
    """Install (or replace) the ``nanoxbar`` log handler.

    Args:
        json_mode: ``True`` forces JSON lines, ``False`` forces text,
            ``None`` defers to ``NANOXBAR_LOG`` (``json``/``text``/``off``).
        level: log level (default ``NANOXBAR_LOG_LEVEL`` or ``INFO``).
        stream: destination (default ``sys.stderr``).
    """
    env = os.environ.get("NANOXBAR_LOG", "").lower()
    if json_mode is None:
        json_mode = env == "json"
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    if env in ("off", "0", "none") and not json_mode:
        root.addHandler(logging.NullHandler())
        return root
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_mode:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"))
    root.addHandler(handler)
    if level is None:
        level = os.environ.get("NANOXBAR_LOG_LEVEL", "INFO")
    root.setLevel(level if isinstance(level, int)
                  else getattr(logging, str(level).upper(), logging.INFO))
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A namespaced stack logger (``nanoxbar.<name>``)."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def log_event(logger: logging.Logger, message: str,
              level: int = logging.INFO, **fields: Any) -> None:
    """Log ``message`` with structured ``fields`` (JSON mode keeps them)."""
    logger.log(level, message, extra={"data": fields})
