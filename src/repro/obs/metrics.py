"""Process-global, thread-safe metrics: counters, gauges, histograms.

The registry is the instrument panel every layer of the stack reports
into — the engine's strategy races, the pool's shard timings, the
campaign iterators, the ``JsonStore`` and the batch server all resolve
instruments here by ``(name, labels)`` and mutate them under per-
instrument locks.  Two read-out faces:

* :meth:`MetricsRegistry.snapshot` — a JSON-serialisable dict (the
  enriched ``/api/stats`` payload and ``nanoxbar stats``), histograms
  summarised as count/sum plus p50/p90/p99 estimated from the fixed
  buckets;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format served at ``GET /api/metrics`` (``_bucket``
  cumulative series with ``le`` labels, ``_sum``, ``_count``).

Everything is stdlib-only.  Instruments are cheap enough for hot paths:
an increment is one flag check, one lock acquire and one add; a
histogram observation adds a bisect over ~15 bucket bounds.  The
process-wide :func:`~repro.obs._state.set_enabled` switch turns every
operation into the flag check alone.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable

from . import _state

#: Latency buckets (seconds) tuned for this stack: sub-millisecond cache
#: rewrites up to multi-second campaign points.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_text(labels: tuple[tuple[str, str], ...]) -> str:
    """Prometheus-style label body, e.g. ``strategy="dual",status="ok"``."""
    return ",".join(f'{key}="{_escape(value)}"' for key, value in labels)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line body per the 0.0.4 text exposition spec.

    Backslashes and line feeds must be escaped (``\\`` and ``\\n``);
    carriage returns have no escape in the spec, so they are normalised
    to line feeds first — raw newlines in help text would otherwise
    corrupt the whole exposition.
    """
    text = text.replace("\r\n", "\n").replace("\r", "\n")
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def quantile_from_counts(bounds: tuple[float, ...],
                         counts: list[int] | tuple[int, ...],
                         q: float) -> float:
    """Bucket-interpolated quantile from one consistent counts copy.

    ``counts`` has one slot per finite bound plus a final ``+Inf`` slot.
    Every quantile computed from the same ``counts`` list agrees with the
    bucket table it came from — the snapshot path relies on this to avoid
    torn reads against the live histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    lower = 0.0
    for index, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= target and bucket_count > 0:
            if index >= len(bounds):
                # Landed in +Inf: the best bounded answer is the last
                # finite edge.
                return bounds[-1]
            upper = bounds[index]
            fraction = (target - (cumulative - bucket_count)) \
                / bucket_count
            return lower + (upper - lower) * max(0.0, min(1.0, fraction))
        if index < len(bounds):
            lower = bounds[index]
    return bounds[-1]


def _format_value(value: float | int) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if not _state.enabled():
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, open readers)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _state.enabled():
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        if not _state.enabled():
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution; quantiles estimated from the buckets."""

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf is implicit; pass finite bounds only")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _state.enabled():
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _state_copy(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 <= q <= 1)."""
        counts, _total_sum, _total = self._state_copy()
        return quantile_from_counts(self.bounds, counts, q)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe instrument directory keyed by ``(name, labels)``.

    One metric *name* holds one kind (and for histograms one bucket
    layout) across every label combination; resolving an existing
    ``(name, labels)`` pair returns the same instrument object, so hot
    paths can cache handles or re-resolve per call interchangeably.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (kind, help, buckets); (name, labels) -> instrument
        self._meta: dict[str, tuple[str, str, tuple[float, ...] | None]] = {}
        self._instruments: dict[
            tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    # -- resolution -------------------------------------------------------
    def _resolve(self, kind: str, name: str, help_text: str,
                 labels: dict[str, Any],
                 buckets: tuple[float, ...] | None = None) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_items = tuple(sorted(
            (key, str(value)) for key, value in labels.items()))
        for key, _value in label_items:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        with self._lock:
            meta = self._meta.get(name)
            if meta is None:
                self._meta[name] = (kind, help_text, buckets)
            elif meta[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {meta[0]}")
            instrument = self._instruments.get((name, label_items))
            if instrument is None:
                if kind == "histogram":
                    bounds = buckets or self._meta[name][2] \
                        or DEFAULT_LATENCY_BUCKETS
                    instrument = Histogram(bounds)
                else:
                    instrument = _KINDS[kind]()
                self._instruments[(name, label_items)] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "",
                labels: dict[str, Any] | None = None,
                **label_kwargs: Any) -> Counter:
        return self._resolve("counter", name, help_text,
                             {**(labels or {}), **label_kwargs})

    def gauge(self, name: str, help_text: str = "",
              labels: dict[str, Any] | None = None,
              **label_kwargs: Any) -> Gauge:
        return self._resolve("gauge", name, help_text,
                             {**(labels or {}), **label_kwargs})

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] | None = None,
                  labels: dict[str, Any] | None = None,
                  **label_kwargs: Any) -> Histogram:
        bounds = tuple(float(b) for b in buckets) if buckets else None
        return self._resolve("histogram", name, help_text,
                             {**(labels or {}), **label_kwargs}, bounds)

    # -- read-out ---------------------------------------------------------
    def _sorted_items(self):
        with self._lock:
            meta = dict(self._meta)
            items = sorted(self._instruments.items())
        return meta, items

    def snapshot(self) -> dict:
        """JSON-serialisable state of every instrument."""
        meta, items = self._sorted_items()
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), instrument in items:
            kind = meta[name][0]
            label_key = _label_text(labels)
            if kind == "counter":
                out["counters"].setdefault(name, {})[label_key] = \
                    instrument.value
            elif kind == "gauge":
                out["gauges"].setdefault(name, {})[label_key] = \
                    instrument.value
            else:
                # One consistent copy feeds the bucket table *and* every
                # quantile: re-reading live state per quantile could
                # disagree with the reported buckets under writes.
                counts, total_sum, total = instrument._state_copy()
                bounds = instrument.bounds
                out["histograms"].setdefault(name, {})[label_key] = {
                    "count": total,
                    "sum": total_sum,
                    "p50": quantile_from_counts(bounds, counts, 0.50),
                    "p90": quantile_from_counts(bounds, counts, 0.90),
                    "p99": quantile_from_counts(bounds, counts, 0.99),
                    "buckets": {
                        **{_format_value(bound): count
                           for bound, count in zip(instrument.bounds,
                                                   counts)},
                        "+Inf": counts[-1],
                    },
                }
        return out

    def collect(self) -> list[dict]:
        """Raw per-series read-out for the timeline recorder.

        One record per ``(name, labels)`` series; histogram records carry
        a consistent ``(counts, sum, count)`` copy plus the bucket bounds
        so callers can difference scrapes without re-parsing exposition
        text.  ``labels`` is the exposition-format label body (the same
        key :meth:`snapshot` uses).
        """
        meta, items = self._sorted_items()
        out: list[dict] = []
        for (name, labels), instrument in items:
            kind = meta[name][0]
            record: dict = {"kind": kind, "name": name,
                            "labels": _label_text(labels)}
            if kind == "histogram":
                counts, total_sum, total = instrument._state_copy()
                record.update(bounds=instrument.bounds, counts=counts,
                              sum=total_sum, count=total)
            else:
                record["value"] = instrument.value
            out.append(record)
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        meta, items = self._sorted_items()
        by_name: dict[str, list] = {}
        for (name, labels), instrument in items:
            by_name.setdefault(name, []).append((labels, instrument))
        lines: list[str] = []
        for name in sorted(by_name):
            kind, help_text, _buckets = meta[name]
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, instrument in by_name[name]:
                label_body = _label_text(labels)
                if kind in ("counter", "gauge"):
                    suffix = f"{{{label_body}}}" if label_body else ""
                    lines.append(
                        f"{name}{suffix} {_format_value(instrument.value)}")
                    continue
                counts, total_sum, total = instrument._state_copy()
                cumulative = 0
                for bound, bucket_count in zip(
                        (*instrument.bounds, math.inf), counts):
                    cumulative += bucket_count
                    le = _label_text(
                        (*labels, ("le", _format_value(bound))))
                    lines.append(f"{name}_bucket{{{le}}} {cumulative}")
                suffix = f"{{{label_body}}}" if label_body else ""
                lines.append(f"{name}_sum{suffix} {_format_value(total_sum)}")
                lines.append(f"{name}_count{suffix} {total}")
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every instrument (tests only)."""
        with self._lock:
            self._meta.clear()
            self._instruments.clear()


#: The process-global registry every subsystem reports into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY
