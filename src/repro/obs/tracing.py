"""Lightweight spans: monotonic timings, trace propagation, span ring.

A *span* is one timed unit of work (``with span("engine.run_batch")``).
Spans nest through a :mod:`contextvars` variable, so the ambient trace
and parent-span IDs follow the flow of control — across ``await`` points
(each asyncio task owns its context) and, where a thread hop breaks the
chain, explicitly:

* :meth:`repro.engine.engine.BatchEngine.submit` copies the caller's
  context onto the engine's dedicated batch thread;
* the server's worker bridge re-installs the job's trace ID
  (:func:`set_current_trace`) on its executor thread;
* the process-pool shards carry the trace ID as a plain field on their
  task payloads and report back measured durations, which the parent
  records as *synthetic* spans (:func:`record_span`).

Completed spans land in a bounded in-memory ring buffer
(:func:`recent_spans` — the ``/api/stats`` "recent spans" view), are
forwarded to registered listeners (the ``--profile`` span-tree
collector), and optionally appended as JSON lines to a trace sink
(``NANOXBAR_TRACE=/path/to/trace.jsonl`` or :func:`set_trace_sink`).

Durations come from ``time.perf_counter`` (monotonic); the ``start``
field is wall-clock for human correlation only.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

from . import _state

#: Completed spans retained in memory.
SPAN_RING_SIZE = 2048

#: (trace_id, span_id | None) of the ambient trace context.
_current: contextvars.ContextVar[tuple[str, str | None] | None] = \
    contextvars.ContextVar("nanoxbar_trace", default=None)

_ring: deque[dict] = deque(maxlen=SPAN_RING_SIZE)
_ring_lock = threading.Lock()
_listeners: list[Callable[[dict], None]] = []
_sink_lock = threading.Lock()
_sink_path: str | None = os.environ.get("NANOXBAR_TRACE") or None
_sink_file = None


def new_trace_id() -> str:
    return os.urandom(8).hex()


def new_span_id() -> str:
    return os.urandom(4).hex()


def current_trace_id() -> str | None:
    """The ambient trace ID, or ``None`` outside any trace."""
    context = _current.get()
    return context[0] if context else None


def set_current_trace(trace_id: str) -> contextvars.Token:
    """Install ``trace_id`` as the ambient trace (returns a reset token).

    The cross-thread half of propagation: a worker thread handed a trace
    ID as plain data re-enters the trace with this before opening spans.
    """
    return _current.set((trace_id, None))


def reset_current_trace(token: contextvars.Token) -> None:
    _current.reset(token)


class SpanHandle:
    """What ``with span(...)`` yields: IDs plus late field attachment."""

    __slots__ = ("trace_id", "span_id", "fields")

    def __init__(self, trace_id: str | None, span_id: str | None,
                 fields: dict | None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.fields = fields

    def set(self, key: str, value) -> None:
        if self.fields is not None:
            self.fields[key] = value


_NULL_HANDLE = SpanHandle(None, None, None)


@contextmanager
def span(name: str, **fields) -> Iterator[SpanHandle]:
    """Time a block; record a completed span on exit.

    Nested spans inherit the ambient trace ID and parent to the
    enclosing span; a span opened outside any trace starts a fresh
    trace.  Exceptions propagate (the span records ``error``).
    """
    if not _state.enabled():
        yield _NULL_HANDLE
        return
    parent = _current.get()
    trace_id = parent[0] if parent else new_trace_id()
    span_id = new_span_id()
    token = _current.set((trace_id, span_id))
    handle = SpanHandle(trace_id, span_id, dict(fields))
    start_wall = time.time()
    start = time.perf_counter()
    error: str | None = None
    try:
        yield handle
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _current.reset(token)
        duration = time.perf_counter() - start
        if error is not None:
            handle.fields["error"] = error
        _finish({
            "name": name,
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent[1] if parent else None,
            "start": start_wall,
            "duration": duration,
            "fields": handle.fields,
        })


def record_span(name: str, duration: float, trace_id: str | None = None,
                parent_id: str | None = None, start: float | None = None,
                **fields) -> None:
    """Record an externally-timed span (pool shards, queue waits).

    ``trace_id``/``parent_id`` default to the ambient context — the
    normal case for durations measured elsewhere (a worker process, a
    queue timestamp) but attributed here.
    """
    if not _state.enabled():
        return
    context = _current.get()
    if trace_id is None:
        trace_id = context[0] if context else new_trace_id()
    if parent_id is None and context is not None and context[0] == trace_id:
        parent_id = context[1]
    _finish({
        "name": name,
        "trace_id": trace_id,
        "span_id": new_span_id(),
        "parent_id": parent_id,
        "start": time.time() - duration if start is None else start,
        "duration": duration,
        "fields": fields,
    })


def _finish(record: dict) -> None:
    with _ring_lock:
        _ring.append(record)
        listeners = list(_listeners)
    for listener in listeners:
        listener(record)
    _sink_write(record)


# -- the ring ----------------------------------------------------------
def recent_spans(limit: int | None = None,
                 trace_id: str | None = None) -> list[dict]:
    """Completed spans, oldest first (optionally filtered / truncated)."""
    with _ring_lock:
        spans = list(_ring)
    if trace_id is not None:
        spans = [s for s in spans if s["trace_id"] == trace_id]
    if limit is not None and limit >= 0:
        spans = spans[-limit:]
    return spans


def clear_spans() -> None:
    """Empty the ring buffer (tests only)."""
    with _ring_lock:
        _ring.clear()


# -- listeners (the --profile collector) -------------------------------
def add_span_listener(listener: Callable[[dict], None]) -> None:
    with _ring_lock:
        _listeners.append(listener)


def remove_span_listener(listener: Callable[[dict], None]) -> None:
    with _ring_lock:
        try:
            _listeners.remove(listener)
        except ValueError:
            pass


# -- the JSONL sink ----------------------------------------------------
def set_trace_sink(path: str | None) -> None:
    """Append completed spans as JSON lines to ``path`` (``None`` stops)."""
    global _sink_path, _sink_file
    with _sink_lock:
        if _sink_file is not None:
            try:
                _sink_file.close()
            except OSError:
                pass
        _sink_path = path
        _sink_file = None


def _sink_write(record: dict) -> None:
    global _sink_path, _sink_file
    if _sink_path is None:
        return
    with _sink_lock:
        if _sink_path is None:
            return
        try:
            if _sink_file is None:
                _sink_file = open(_sink_path, "a", encoding="utf-8")
            _sink_file.write(json.dumps(record, sort_keys=True,
                                        default=str) + "\n")
            _sink_file.flush()
        except OSError as error:
            # A broken sink must never take down the instrumented code:
            # drop the sink and keep serving — but leave a signal, or
            # operators cannot tell tracing died mid-flight.
            path, _sink_path, _sink_file = _sink_path, None, None
            _signal_sink_failure(path, error)


def _signal_sink_failure(path: str | None, error: OSError) -> None:
    """One counter bump + one structured log line when the sink dies.

    Imports are local: :mod:`repro.obs.logging` imports this module, so a
    top-level import would be circular — and this path only runs once per
    sink lifetime.
    """
    from . import metrics
    from .logging import get_logger, log_event

    metrics.registry().counter(
        "nanoxbar_trace_sink_errors_total",
        "trace JSONL sinks disabled after a write error").inc()
    log_event(get_logger("obs"), "trace sink disabled",
              path=path, error=f"{type(error).__name__}: {error}")
