"""repro.obs — metrics, tracing and structured logging for the stack.

The stdlib-only telemetry subsystem every hot layer reports into:

* :mod:`repro.obs.metrics` — a process-global, thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket latency histograms with p50/p90/p99), snapshot-able to
  dicts and renderable in Prometheus text exposition format
  (``GET /api/metrics``);
* :mod:`repro.obs.tracing` — lightweight spans with monotonic timings,
  trace/span IDs propagated from the server boundary through the job
  queue, worker bridge, engine and pool shards, a bounded in-memory ring
  of completed spans and an optional JSONL sink (``NANOXBAR_TRACE``);
* :mod:`repro.obs.logging` — JSON log records carrying trace IDs
  (``nanoxbar --log-json`` / ``NANOXBAR_LOG=json``);
* :mod:`repro.obs.profile` — the ``--profile`` span-tree breakdown;
* :mod:`repro.obs.timeline` — a background
  :class:`~repro.obs.timeline.MetricsRecorder` differencing the registry
  into a bounded multi-resolution ring of frames (rates, rolling
  quantiles, process CPU/RSS) behind ``GET /api/metrics/history``, the
  SSE stream, ``/dashboard`` and ``nanoxbar top``;
* :mod:`repro.obs.sampler` — a sampling wall-clock profiler
  (``--sample-profile`` / ``GET /api/profile``) emitting collapsed
  stacks and top-N self-time tables;
* :mod:`repro.obs.health` — declarative watchdog rules evaluated each
  recorder tick that bump ``nanoxbar_alerts_total{rule}`` and degrade
  ``/healthz``.

``NANOXBAR_OBS=0`` (or :func:`set_enabled`) turns the whole subsystem
into cheap no-ops; ``benchmarks/bench_obs.py`` pins the enabled-mode
overhead on the warm engine path under 3%.
"""

from ._state import enabled, set_enabled
from .health import HealthMonitor, WatchdogRule, default_server_rules
from .logging import configure as configure_logging
from .logging import get_logger, log_event
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_counts,
    registry,
)
from .profile import ProfileReport, profiled, render_span_tree
from .sampler import SampleReport, StackSampler, sample_for
from .timeline import MetricsRecorder, local_recorder, tick_interval
from .tracing import (
    clear_spans,
    current_trace_id,
    new_trace_id,
    recent_spans,
    record_span,
    reset_current_trace,
    set_current_trace,
    set_trace_sink,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "ProfileReport",
    "SampleReport",
    "StackSampler",
    "WatchdogRule",
    "clear_spans",
    "configure_logging",
    "current_trace_id",
    "default_server_rules",
    "enabled",
    "get_logger",
    "local_recorder",
    "log_event",
    "new_trace_id",
    "profiled",
    "quantile_from_counts",
    "recent_spans",
    "record_span",
    "registry",
    "render_span_tree",
    "reset_current_trace",
    "sample_for",
    "set_current_trace",
    "set_enabled",
    "set_trace_sink",
    "span",
    "tick_interval",
]
