"""Grid worker entry point: ``python -m repro.grid.worker``.

One worker process = one claim loop (:func:`repro.grid.runner.work_loop`)
on one shared store file.  ``nanoxbar grid run --workers N`` launches N
of these; nothing stops an operator starting more by hand on another
host mounting the same filesystem — the claim protocol is the only
coordination.

Exit status: 0 when the loop drained without terminal failures, 1 when
any point this worker touched landed in ``failed``, 2 on a bad
invocation.
"""

from __future__ import annotations

import argparse
import sys

from ..engine.store import JsonStore
from .config import GridConfigError, load_config
from .runner import DEFAULT_POLL_SECONDS, work_loop


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.grid.worker",
        description="claim and compute points of one experiment grid")
    parser.add_argument("--config", required=True,
                        help="grid config file (TOML or JSON)")
    parser.add_argument("--store", required=True,
                        help="shared JsonStore file path")
    parser.add_argument("--grid-id", required=True,
                        help="grid identity as printed by 'grid plan'")
    parser.add_argument("--worker-id", default="w0",
                        help="worker name recorded on claimed rows")
    parser.add_argument("--poll", type=float, default=DEFAULT_POLL_SECONDS,
                        help="sleep between claim attempts while peers "
                             "hold leases")
    parser.add_argument("--max-points", type=int, default=None,
                        help="stop after this many claims (default: drain)")
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        args = build_parser().parse_args(argv)
        config = load_config(args.config)
    except GridConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with JsonStore(args.store) as store:
        tally = work_loop(config, args.grid_id, store, args.worker_id,
                          poll_seconds=args.poll,
                          max_points=args.max_points)
    return 1 if tally.get("failed") else 0


if __name__ == "__main__":
    raise SystemExit(main())
