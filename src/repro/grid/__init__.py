"""Declarative experiment grids with claimable work (``nanoxbar grid``).

One config file names a workload family (``synthesis`` / ``faultsim`` /
``varsweep`` / ``bench``), a cartesian (or explicit) parameter grid, and
execution policy.  The grid is materialised as rows in the shared WAL
:class:`~repro.engine.store.JsonStore` — the py_experimenter shape: many
workers (processes or hosts sharing one store file) claim rows under
leases, fill them, and timestamp them, with lease expiry + bounded retry
returning crashed workers' rows to the pool:

* :mod:`repro.grid.config`   — the config format and grid identity;
* :mod:`repro.grid.families` — per-family param -> payload adapters on
  the repo's content-addressed campaign/portfolio computations;
* :mod:`repro.grid.runner`   — plan / claim-loop / status / export;
* :mod:`repro.grid.worker`   — the ``python -m repro.grid.worker``
  process entry ``grid run --workers N`` fans out to.

Because point keys and payloads are shared with the campaign runners,
grid sweeps and ``run_campaign`` dedup against each other in both
directions, and any point recomputed after a lease expiry is
bit-identical (content-addressed seeds).
"""

from .config import (
    FAMILIES,
    GridConfig,
    GridConfigError,
    config_from_dict,
    grid_id_for,
    load_config,
)
from .families import GridPointError, compute, point_key, validate_payload
from .runner import (
    export_rows,
    grid_status,
    iter_grid_points,
    plan,
    release_claims,
    run_workers,
    work_loop,
)

__all__ = [
    "FAMILIES",
    "GridConfig",
    "GridConfigError",
    "GridPointError",
    "compute",
    "config_from_dict",
    "export_rows",
    "grid_id_for",
    "grid_status",
    "iter_grid_points",
    "load_config",
    "plan",
    "point_key",
    "release_claims",
    "run_workers",
    "work_loop",
]
