"""The grid runner: plan rows, claim and fill them, report progress.

The lifecycle (see ``docs/grid.md`` for the state diagram):

1. :func:`plan` expands the config into per-point parameter dicts,
   derives every point's content-addressed key, probes the ``json_store``
   table for answers the campaign runners already persisted, and
   materialises one ``grid_rows`` row per point (store hits land directly
   in ``done`` with ``worker='store'``).
2. :func:`work_loop` is one worker's claim loop: claim the next pending
   row under a lease, compute it (a pure function of the row's params —
   see :mod:`repro.grid.families`), publish the result through
   ``grid_complete`` *and* mirror it into ``json_store`` under the same
   key, so later ``run_campaign`` calls see grid results as cache hits.
3. :func:`run_workers` fans ``work_loop`` out across worker processes
   (``python -m repro.grid.worker`` subprocesses sharing one store file).
4. :func:`grid_status` / :func:`export_rows` read progress back out;
   :func:`release_claims` is the ``resume`` front-end.

Waiting discipline: a worker that finds nothing claimable while other
workers still hold live leases sleeps between *claim* calls (plain
polling).  The claim call itself never sleeps in Python — lock contention
is absorbed by SQLite's busy handler inside ``BEGIN IMMEDIATE``.
"""

from __future__ import annotations

import subprocess
import sys
import time
from typing import Any, Callable, Iterator

from ..engine.store import GridRow, JsonStore
from ..obs import get_logger, log_event, metrics, tracing
from . import families
from .config import GridConfig, grid_id_for

_LOG = get_logger("grid")


def _point_seconds(family: str) -> metrics.Histogram:
    return metrics.registry().histogram(
        "nanoxbar_grid_point_seconds",
        "wall-clock per computed grid point (store hits excluded)",
        labels={"family": family})


#: Delay between claim attempts while other workers hold live leases.
DEFAULT_POLL_SECONDS = 0.2


def plan(config: GridConfig, store: JsonStore
         ) -> tuple[str, list[str], int]:
    """Materialise the config's rows; returns (grid_id, keys, added).

    Idempotent: re-planning an existing grid adds only rows that are new
    and upgrades pending rows whose answers the ``json_store`` table has
    since learned (e.g. from a ``run_campaign`` sharing the store file).
    """
    params_list = config.expand()
    keys = [families.point_key(config.family, params)
            for params in params_list]
    grid_id = grid_id_for(config, keys)
    entries: list[tuple[str, dict, Any | None]] = []
    for key, params in zip(keys, params_list):
        payload = store.get(key)
        if payload is not None and not families.validate_payload(
                config.family, params, payload):
            payload = None
        entries.append((key, params, payload))
    added = store.grid_add_points(grid_id, entries)
    log_event(_LOG, "grid planned", grid_id=grid_id,
              points=len(entries), added=added,
              cached=sum(1 for _, _, payload in entries
                         if payload is not None))
    return grid_id, keys, added


def run_point(config: GridConfig, store: JsonStore, row: GridRow,
              worker: str) -> str:
    """Compute one claimed row and publish its result.

    Returns the row's terminal status from this worker's perspective:
    ``"done"``, ``"stale"`` (the lease expired mid-compute and another
    worker reclaimed the row — this worker's answer is discarded), or the
    :meth:`~repro.engine.store.JsonStore.grid_fail` verdict (``"pending"``
    / ``"failed"``) when the compute raised.
    """
    with tracing.span("grid.point", grid_id=row.grid_id, key=row.point_key,
                      family=config.family):
        start = time.perf_counter()
        try:
            payload = families.compute(config.family, row.params,
                                       config.processes)
        except Exception as error:
            verdict = store.grid_fail(
                row.grid_id, row.point_key, worker,
                f"{type(error).__name__}: {error}",
                max_attempts=config.max_attempts)
            log_event(_LOG, "grid point failed", grid_id=row.grid_id,
                      key=row.point_key, worker=worker,
                      verdict=verdict or "stale", error=str(error))
            return verdict or "stale"
        _point_seconds(config.family).observe(time.perf_counter() - start)
    if not store.grid_complete(row.grid_id, row.point_key, worker, payload):
        # Lease lost mid-compute; the reclaimer recomputes the identical
        # content-seeded answer, so this one is dropped unpublished.
        log_event(_LOG, "grid point stale", grid_id=row.grid_id,
                  key=row.point_key, worker=worker)
        return "stale"
    # Mirror into the content-addressed results map: run_campaign and
    # future plans of overlapping grids see this point as a cache hit.
    store.put(row.point_key, payload)
    return "done"


def work_loop(config: GridConfig, grid_id: str, store: JsonStore,
              worker: str, poll_seconds: float = DEFAULT_POLL_SECONDS,
              max_points: int | None = None,
              on_point: Callable[[GridRow, str], None] | None = None
              ) -> dict[str, int]:
    """One worker's claim loop; returns its status tally.

    The loop ends when the grid holds no ``pending`` rows and no live
    leases remain to expire — i.e. every row is terminal.  While other
    workers hold leases it polls (sleeps ``poll_seconds`` between claim
    calls) so crashed peers' rows are picked up as their leases lapse.
    """
    tally = {"done": 0, "stale": 0, "pending": 0, "failed": 0}
    while max_points is None or sum(tally.values()) < max_points:
        row = store.grid_claim(grid_id, worker, config.lease_seconds,
                               max_attempts=config.max_attempts)
        if row is None:
            counts = store.grid_counts(grid_id)
            if not counts.get("pending") and not counts.get("claimed"):
                break
            time.sleep(poll_seconds)
            continue
        status = run_point(config, store, row, worker)
        tally[status] = tally.get(status, 0) + 1
        if on_point is not None:
            on_point(row, status)
    log_event(_LOG, "grid worker drained", grid_id=grid_id, worker=worker,
              **tally)
    return tally


def iter_grid_points(config: GridConfig, store: JsonStore,
                     worker: str = "server"
                     ) -> Iterator[tuple[GridRow, str]]:
    """Plan + drain a grid in-process, yielding terminal rows as they land.

    The streaming face for the batch server: every yielded pair is a
    terminal :class:`~repro.engine.store.GridRow` (freshly re-read, so
    ``result`` is populated) plus this worker's verdict for it.  Rows
    already ``done``/``failed`` at plan time are yielded first with
    verdict ``"cached"``.
    """
    grid_id, keys, _ = plan(config, store)
    seen: set[str] = set()
    for row in store.grid_rows_for(grid_id):
        if row.status in ("done", "failed") and row.point_key in keys:
            seen.add(row.point_key)
            yield row, "cached"

    pending: list[tuple[GridRow, str]] = []

    def capture(row: GridRow, status: str) -> None:
        pending.append((row, status))

    while True:
        tally = work_loop(config, grid_id, store, worker,
                          max_points=1, on_point=capture)
        while pending:
            row, status = pending.pop(0)
            current = store.grid_get(grid_id, row.point_key)
            if current is not None and row.point_key not in seen \
                    and current.status in ("done", "failed"):
                seen.add(row.point_key)
                yield current, status
        if not sum(tally.values()):
            break
    # Rows another worker finished while we drained.
    for row in store.grid_rows_for(grid_id):
        if row.status in ("done", "failed") and row.point_key not in seen:
            seen.add(row.point_key)
            yield row, "cached"


def run_workers(config: GridConfig, config_path: str, grid_id: str,
                store_path: str, workers: int | None = None,
                poll_seconds: float = DEFAULT_POLL_SECONDS) -> int:
    """Fan the claim loop out across worker subprocesses; wait for all.

    Each worker is a ``python -m repro.grid.worker`` process opening its
    own connection onto the shared store file.  Returns the number of
    workers that exited non-zero.  (Process creation here is ``exec``
    -based on purpose: the multiprocessing machinery is reserved to
    :mod:`repro.engine.pool`.)
    """
    count = config.workers if workers is None else workers
    procs = []
    for index in range(count):
        procs.append(subprocess.Popen([
            sys.executable, "-m", "repro.grid.worker",
            "--config", config_path,
            "--store", store_path,
            "--grid-id", grid_id,
            "--worker-id", f"w{index}",
            "--poll", str(poll_seconds),
        ]))
    failures = 0
    for proc in procs:
        failures += proc.wait() != 0
    return failures


def grid_status(store: JsonStore, grid_id: str) -> dict[str, Any]:
    """Machine-readable progress summary for one grid."""
    counts = store.grid_counts(grid_id)
    total = sum(counts.values())
    return {
        "grid_id": grid_id,
        "points": total,
        "counts": counts,
        "finished": bool(total) and counts.get("done", 0)
        + counts.get("failed", 0) == total,
    }


def export_rows(store: JsonStore, grid_id: str) -> list[dict[str, Any]]:
    """Every row of the grid as plain JSON-ready dicts (insertion order)."""
    return [{
        "point_key": row.point_key,
        "params": row.params,
        "status": row.status,
        "worker": row.worker,
        "attempts": row.attempts,
        "claimed_at": row.claimed_at,
        "finished_at": row.finished_at,
        "result": row.result,
        "error": row.error,
    } for row in store.grid_rows_for(grid_id)]


def release_claims(store: JsonStore, grid_id: str) -> int:
    """Return every claimed row to pending (the ``resume`` front-end).

    Only call with the previous run's workers dead — see
    :meth:`~repro.engine.store.JsonStore.grid_release_claims`.
    """
    released = store.grid_release_claims(grid_id)
    log_event(_LOG, "grid claims released", grid_id=grid_id,
              released=released)
    return released
