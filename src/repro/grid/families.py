"""Workload-family adapters: grid params in, JSON payloads out.

Each family maps a flat per-point parameter dict onto the repo's existing
content-addressed computations:

* ``faultsim``  — :mod:`repro.faultlab.campaign` Monte-Carlo points.  The
  grid row's key **is** :meth:`~repro.faultlab.campaign.CampaignPoint.key`
  and its payload is the exact ``run_campaign`` store payload, so grid
  sweeps and campaign runs dedup against each other bidirectionally.
* ``varsweep``  — :mod:`repro.varsim.campaign` sigma points; the lattice
  comes from a benchmark name via the same
  ``synthesize_lattice_dual(bench.function.on)`` construction the batch
  server uses, so served / campaign / grid answers share keys.
* ``synthesis`` — one portfolio race per (benchmark, strategy set),
  keyed by :meth:`repro.boolean.truthtable.TruthTable.content_hash`.
* ``bench``     — SOP metric extraction per benchmark (the Fig. 3/5 size
  formula inputs), also keyed by content hash.

The contract every adapter upholds: ``point_key`` is content-addressed
(never position-derived), and ``compute`` is a pure function of the
params — a lease-expired point recomputed by another worker produces a
bit-identical payload.
"""

from __future__ import annotations

from typing import Any

from ..engine.portfolio import run_portfolio
from ..faultlab import campaign as faultsim_campaign
from ..varsim import campaign as varsweep_campaign
from .config import FAMILIES, GridConfigError


class GridPointError(ValueError):
    """A parameter dict the family adapter rejects."""


def _str_params(params: dict[str, Any], *names: str) -> None:
    for name in names:
        if name not in params:
            raise GridPointError(f"point misses required parameter {name!r}")


# ----------------------------------------------------------------------
# faultsim
# ----------------------------------------------------------------------
def _faultsim_point(params: dict[str, Any]):
    _str_params(params, "n", "density")
    try:
        return faultsim_campaign.point_from_params(params)
    except (TypeError, ValueError, KeyError) as error:
        raise GridPointError(f"bad faultsim point: {error}") from error


def _faultsim_key(params: dict[str, Any]) -> str:
    return _faultsim_point(params).key()


def _faultsim_compute(params: dict[str, Any], processes: int) -> dict:
    point = _faultsim_point(params)
    estimate = faultsim_campaign.compute_point(point, processes)
    return faultsim_campaign.payload_for(estimate)


def _faultsim_validate(params: dict[str, Any], payload: Any) -> bool:
    point = _faultsim_point(params)
    return faultsim_campaign.estimate_from_payload(point, payload) is not None


# ----------------------------------------------------------------------
# varsweep
# ----------------------------------------------------------------------
_VARSWEEP_DEFAULTS = {
    "trials": 500,
    "seed": 0,
    "nominal": 1.0,
    "batch_size": 128,
}


def _varsweep_spec(params: dict[str, Any]):
    """Single-sigma spec + point for one varsweep grid row."""
    _str_params(params, "bench", "sigma")
    from ..eval.benchsuite import by_name
    from ..synthesis import synthesize_lattice_dual

    try:
        benchmark = by_name(str(params["bench"]))
    except KeyError as error:
        raise GridPointError(str(error.args[0])) from error
    lattice = synthesize_lattice_dual(benchmark.function.on)
    kwargs = {name: type(default)(params.get(name, default))
              for name, default in _VARSWEEP_DEFAULTS.items()}
    try:
        spec = varsweep_campaign.VariationCampaignSpec(
            lattice=lattice,
            sigmas=(float(params["sigma"]),),
            crossbar_rows=int(params.get("crossbar_rows",
                                         max(16, lattice.rows))),
            crossbar_cols=int(params.get("crossbar_cols",
                                         max(16, lattice.cols))),
            **kwargs,
        )
    except (TypeError, ValueError) as error:
        raise GridPointError(f"bad varsweep point: {error}") from error
    return spec, spec.points()[0]


def _varsweep_key(params: dict[str, Any]) -> str:
    _, point = _varsweep_spec(params)
    return point.key()


def _varsweep_compute(params: dict[str, Any], processes: int) -> dict:
    spec, point = _varsweep_spec(params)
    estimate = varsweep_campaign.compute_point(spec, point, processes)
    return varsweep_campaign.payload_for(estimate)


def _varsweep_validate(params: dict[str, Any], payload: Any) -> bool:
    _, point = _varsweep_spec(params)
    return varsweep_campaign.estimate_from_payload(point, payload) \
        is not None


# ----------------------------------------------------------------------
# synthesis
# ----------------------------------------------------------------------
def _synthesis_parts(params: dict[str, Any]):
    _str_params(params, "bench")
    from ..engine.jobs import DEFAULT_STRATEGIES
    from ..engine.portfolio import known_strategies
    from ..eval.benchsuite import by_name

    try:
        benchmark = by_name(str(params["bench"]))
    except KeyError as error:
        raise GridPointError(str(error.args[0])) from error
    strategies = params.get("strategies", list(DEFAULT_STRATEGIES))
    if isinstance(strategies, str):
        strategies = [s for s in strategies.split(",") if s]
    strategies = tuple(str(s) for s in strategies)
    unknown = set(strategies) - set(known_strategies())
    if unknown:
        raise GridPointError(f"unknown strategies {sorted(unknown)}")
    return benchmark, strategies


def _synthesis_key(params: dict[str, Any]) -> str:
    benchmark, strategies = _synthesis_parts(params)
    return (f"grid/synthesis/v1/{benchmark.name}"
            f"/{benchmark.function.on.content_hash()}"
            f"/{','.join(strategies)}")


def _synthesis_compute(params: dict[str, Any], processes: int) -> dict:
    from ..engine import lattice_to_text

    benchmark, strategies = _synthesis_parts(params)
    result = run_portfolio(benchmark.function.on, strategies)
    return {
        "bench": benchmark.name,
        "n": benchmark.n,
        "strategy": result.strategy,
        "rows": result.lattice.rows,
        "cols": result.lattice.cols,
        "area": result.area,
        "lattice": lattice_to_text(result.lattice),
        "outcomes": [
            {"strategy": outcome.strategy, "status": outcome.status,
             "area": outcome.area}
            for outcome in result.outcomes
        ],
    }


def _synthesis_validate(params: dict[str, Any], payload: Any) -> bool:
    return (isinstance(payload, dict)
            and isinstance(payload.get("lattice"), str)
            and isinstance(payload.get("area"), int))


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def _bench_benchmark(params: dict[str, Any]):
    _str_params(params, "bench")
    from ..eval.benchsuite import by_name

    try:
        return by_name(str(params["bench"]))
    except KeyError as error:
        raise GridPointError(str(error.args[0])) from error


def _bench_key(params: dict[str, Any]) -> str:
    benchmark = _bench_benchmark(params)
    return (f"grid/bench/v1/{benchmark.name}"
            f"/{benchmark.function.on.content_hash()}")


def _bench_compute(params: dict[str, Any], processes: int) -> dict:
    benchmark = _bench_benchmark(params)
    metrics = benchmark.function.sop_metrics()
    return {"bench": benchmark.name, **metrics}


def _bench_validate(params: dict[str, Any], payload: Any) -> bool:
    return (isinstance(payload, dict)
            and isinstance(payload.get("products"), int)
            and isinstance(payload.get("dual_products"), int))


_ADAPTERS = {
    "faultsim": (_faultsim_key, _faultsim_compute, _faultsim_validate),
    "varsweep": (_varsweep_key, _varsweep_compute, _varsweep_validate),
    "synthesis": (_synthesis_key, _synthesis_compute, _synthesis_validate),
    "bench": (_bench_key, _bench_compute, _bench_validate),
}

assert set(_ADAPTERS) == set(FAMILIES)


def point_key(family: str, params: dict[str, Any]) -> str:
    """Content-addressed store key for one (family, params) point."""
    return _adapter(family)[0](params)


def compute(family: str, params: dict[str, Any], processes: int = 1) -> dict:
    """Run one point from scratch; deterministic in ``params`` alone."""
    return _adapter(family)[1](params, processes)


def validate_payload(family: str, params: dict[str, Any],
                     payload: Any) -> bool:
    """Is this persisted payload a complete answer for the point?"""
    try:
        return _adapter(family)[2](params, payload)
    except GridPointError:
        return False


def _adapter(family: str):
    try:
        return _ADAPTERS[family]
    except KeyError:
        raise GridConfigError(
            f"unknown family {family!r} "
            f"(expected one of {', '.join(FAMILIES)})") from None
