"""Declarative grid configs: one file names a whole experiment sweep.

A grid config is a small TOML or JSON document::

    name = "faultsim-small"
    family = "faultsim"            # synthesis | faultsim | varsweep | bench
    workers = 2                    # execution policy (overridable on the CLI)
    lease_seconds = 60.0
    max_attempts = 3
    processes = 1                  # per-worker pool size

    [grid]                         # cartesian axes, expanded in axis order
    n = [8, 10]
    density = [0.05, 0.1]

    [fixed]                        # constants merged into every point
    trials = 200
    seed = 7

or, instead of ``[grid]``, an explicit point list::

    points = [{n = 8, density = 0.05}, {n = 12, density = 0.2}]

:func:`load_config` parses either format (TOML requires Python 3.11+;
re-encode as JSON on older interpreters), :meth:`GridConfig.expand`
produces the ordered per-point parameter dicts, and
:func:`grid_id_for` derives the grid's identity from its *content* — the
family plus the sorted content-addressed point keys — so editing a config
yields a fresh grid while re-running an unchanged one resumes the old
rows.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass
from itertools import product
from typing import Any

#: The workload families a grid can sweep.
FAMILIES = ("synthesis", "faultsim", "varsweep", "bench")

_POLICY_DEFAULTS = {
    "workers": 1,
    "lease_seconds": 60.0,
    "max_attempts": 3,
    "processes": 1,
}

_KNOWN_KEYS = frozenset(
    {"name", "family", "grid", "fixed", "points", "store", *_POLICY_DEFAULTS})


class GridConfigError(ValueError):
    """A malformed grid config (bad key, type, or empty grid)."""


@dataclass(frozen=True)
class GridConfig:
    """One parsed grid config (value semantics; see module docstring)."""

    name: str
    family: str
    #: Ordered cartesian axes: ``(axis_name, (value, ...))`` pairs.
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    #: Constants merged into every expanded point (axis values win).
    fixed: tuple[tuple[str, Any], ...] = ()
    #: Explicit point list (mutually exclusive with ``axes``).
    points: tuple[tuple[tuple[str, Any], ...], ...] = ()
    workers: int = 1
    lease_seconds: float = 60.0
    max_attempts: int = 3
    processes: int = 1
    #: Default store path (the CLI's ``--store`` overrides it).
    store: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise GridConfigError("grid configs need a non-empty 'name'")
        if self.family not in FAMILIES:
            raise GridConfigError(
                f"unknown family {self.family!r} "
                f"(expected one of {', '.join(FAMILIES)})")
        if self.axes and self.points:
            raise GridConfigError(
                "'grid' axes and an explicit 'points' list are mutually "
                "exclusive")
        if not self.axes and not self.points:
            raise GridConfigError(
                "a grid config needs a '[grid]' axes table or a 'points' "
                "list")
        if self.workers < 1:
            raise GridConfigError("workers must be positive")
        if self.lease_seconds <= 0:
            raise GridConfigError("lease_seconds must be positive")
        if self.max_attempts < 1:
            raise GridConfigError("max_attempts must be positive")
        if self.processes < 1:
            raise GridConfigError("processes must be positive")

    def expand(self) -> list[dict[str, Any]]:
        """The ordered per-point parameter dicts this config describes.

        Cartesian axes expand in declaration order (the last axis varies
        fastest, like nested loops); explicit points keep list order.
        ``fixed`` entries are merged underneath each point.
        """
        base = dict(self.fixed)
        if self.points:
            return [{**base, **dict(point)} for point in self.points]
        names = [axis for axis, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        return [
            {**base, **dict(zip(names, combo))}
            for combo in product(*value_lists)
        ]


def _as_pairs(table: Any, where: str) -> tuple[tuple[str, Any], ...]:
    if not isinstance(table, dict):
        raise GridConfigError(f"{where} must be a table/object")
    return tuple((str(key), value) for key, value in table.items())


def config_from_dict(data: dict[str, Any]) -> GridConfig:
    """Validate and normalise one decoded config document."""
    if not isinstance(data, dict):
        raise GridConfigError("a grid config must be a table/object")
    unknown = set(data) - _KNOWN_KEYS
    if unknown:
        raise GridConfigError(f"unknown grid config keys {sorted(unknown)}")

    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    if "grid" in data:
        grid = data["grid"]
        if not isinstance(grid, dict) or not grid:
            raise GridConfigError("'grid' must be a non-empty table of "
                                  "axis -> value-list")
        pairs = []
        for axis, values in grid.items():
            if not isinstance(values, list) or not values:
                raise GridConfigError(
                    f"grid axis {axis!r} must map to a non-empty list")
            pairs.append((str(axis), tuple(values)))
        axes = tuple(pairs)

    points: tuple[tuple[tuple[str, Any], ...], ...] = ()
    if "points" in data:
        raw_points = data["points"]
        if not isinstance(raw_points, list) or not raw_points:
            raise GridConfigError("'points' must be a non-empty list of "
                                  "tables/objects")
        points = tuple(_as_pairs(point, "each entry of 'points'")
                       for point in raw_points)

    policy: dict[str, Any] = {}
    for key, default in _POLICY_DEFAULTS.items():
        value = data.get(key, default)
        try:
            policy[key] = type(default)(value)
        except (TypeError, ValueError) as error:
            raise GridConfigError(f"bad {key!r}: {error}") from error

    store = data.get("store")
    return GridConfig(
        name=str(data.get("name", "")),
        family=str(data.get("family", "")),
        axes=axes,
        fixed=_as_pairs(data.get("fixed", {}), "'fixed'"),
        points=points,
        store=str(store) if store is not None else None,
        **policy,
    )


def load_config(path: str) -> GridConfig:
    """Parse a TOML (``.toml``, Python 3.11+) or JSON grid config file."""
    if path.endswith(".toml"):
        if sys.version_info < (3, 11):
            raise GridConfigError(
                "TOML grid configs need Python 3.11+ (no tomllib on "
                f"{sys.version_info.major}.{sys.version_info.minor}); "
                "re-encode the config as JSON")
        import tomllib

        with open(path, "rb") as handle:
            try:
                data = tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise GridConfigError(f"bad TOML in {path}: {error}") \
                    from error
    else:
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise GridConfigError(f"bad JSON in {path}: {error}") \
                    from error
    return config_from_dict(data)


def grid_id_for(config: GridConfig, point_keys: list[str]) -> str:
    """Content-addressed grid identity: name + digest of what it runs.

    The digest covers the family and the *sorted* point keys (grid rows
    are keyed by content, not position), so reordering axes resumes the
    same grid while changing any parameter value starts a fresh one.
    """
    digest = hashlib.sha256(
        "|".join([config.family, *sorted(point_keys)]).encode()
    ).hexdigest()[:12]
    return f"{config.name}-{digest}"
