"""Arithmetic elements from crossbar blocks (paper sub-objective 3).

Ripple-carry adders and magnitude comparators whose per-output functions
are synthesised onto crossbar arrays.  Input packing convention: operand
``a`` occupies bits ``0..width-1``, operand ``b`` bits ``width..2*width-1``,
and (for the adder) the carry-in is the last bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boolean.truthtable import TruthTable
from .blocks import CombinationalCircuit, circuit_from_tables


def _adder_bit_tables(width: int, with_carry_in: bool = False) -> list[TruthTable]:
    """Truth tables for the sum bits and the carry-out of an adder."""
    n = 2 * width + (1 if with_carry_in else 0)
    tables = []
    for out_bit in range(width + 1):
        def value(m: int, out_bit=out_bit) -> bool:
            a = m & ((1 << width) - 1)
            b = (m >> width) & ((1 << width) - 1)
            cin = (m >> (2 * width)) & 1 if with_carry_in else 0
            total = a + b + cin
            return bool((total >> out_bit) & 1)

        tables.append(TruthTable.from_callable(n, value))
    return tables


@dataclass(frozen=True)
class AdderReport:
    """Area of a crossbar ripple/flat adder (one experiment row)."""

    width: int
    style: str
    total_area: int
    per_output_areas: tuple[int, ...]


def synthesize_adder(width: int, style: str = "lattice",
                     with_carry_in: bool = False) -> CombinationalCircuit:
    """A ``width``-bit adder: width sum bits plus the carry-out.

    Outputs are synthesised flat (each output bit as one two-level block),
    which is the only form a crossbar can realise directly (Section III-A).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    tables = _adder_bit_tables(width, with_carry_in)
    labels = [f"sum{i}" for i in range(width)] + ["carry"]
    circuit = circuit_from_tables(f"adder{width}", tables, style, labels)
    return circuit


def adder_reference(width: int, with_carry_in: bool = False):
    """Reference model matching the adder circuit's packing."""

    def reference(m: int) -> int:
        a = m & ((1 << width) - 1)
        b = (m >> width) & ((1 << width) - 1)
        cin = (m >> (2 * width)) & 1 if with_carry_in else 0
        return a + b + cin

    return reference


def adder_report(width: int, style: str = "lattice") -> AdderReport:
    circuit = synthesize_adder(width, style)
    return AdderReport(
        width=width,
        style=style,
        total_area=circuit.total_area,
        per_output_areas=tuple(block.area for block in circuit.blocks),
    )


def synthesize_adder_shared(width: int, with_carry_in: bool = False):
    """The adder on ONE shared diode plane (joint multi-output cover).

    Returns a :class:`~repro.synthesis.multi_output.MultiOutputDiodePlane`
    whose ``evaluate`` packs sum bits and carry exactly like
    :func:`adder_reference`.
    """
    from ..synthesis.multi_output import MultiOutputDiodePlane

    if width < 1:
        raise ValueError("width must be >= 1")
    tables = _adder_bit_tables(width, with_carry_in)
    plane = MultiOutputDiodePlane(tables)
    if not plane.implements_all():
        raise RuntimeError("shared adder plane failed verification")
    return plane


def shared_adder_report(width: int) -> dict:
    """Shared-plane vs per-output diode adder areas."""
    plane = synthesize_adder_shared(width)
    independent = synthesize_adder(width, style="diode")
    return {
        "width": width,
        "shared_shape": plane.shape,
        "shared_area": plane.area,
        "independent_area": independent.total_area,
        "shared_rows": plane.num_rows,
        "independent_rows": sum(
            block.array.num_rows for block in independent.blocks
        ),
    }


# ----------------------------------------------------------------------
# Comparator
# ----------------------------------------------------------------------
def _comparator_tables(width: int) -> list[TruthTable]:
    """Truth tables for (a < b, a == b, a > b)."""
    n = 2 * width

    def unpack(m: int) -> tuple[int, int]:
        return m & ((1 << width) - 1), (m >> width) & ((1 << width) - 1)

    lt = TruthTable.from_callable(n, lambda m: unpack(m)[0] < unpack(m)[1])
    eq = TruthTable.from_callable(n, lambda m: unpack(m)[0] == unpack(m)[1])
    gt = TruthTable.from_callable(n, lambda m: unpack(m)[0] > unpack(m)[1])
    return [lt, eq, gt]


def synthesize_comparator(width: int, style: str = "lattice") -> CombinationalCircuit:
    """A ``width``-bit magnitude comparator with lt/eq/gt outputs."""
    if width < 1:
        raise ValueError("width must be >= 1")
    tables = _comparator_tables(width)
    return circuit_from_tables(
        f"cmp{width}", tables, style, ["lt", "eq", "gt"]
    )


def comparator_reference(width: int):
    """Reference: bit0 = a<b, bit1 = a==b, bit2 = a>b."""

    def reference(m: int) -> int:
        a = m & ((1 << width) - 1)
        b = (m >> width) & ((1 << width) - 1)
        return (a < b) | ((a == b) << 1) | ((a > b) << 2)

    return reference
