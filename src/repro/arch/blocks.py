"""Logic blocks: one function mapped onto one crossbar (Section V roadmap).

The paper's sub-objectives 3-4 build *arithmetic and memory elements* and
finally a synchronous state machine out of crossbar arrays.  A
:class:`LogicBlock` is the unit of that construction: a Boolean function
plus a concrete array implementation (four-terminal lattice, diode plane or
FET plane) with area/verification metadata.  A :class:`CombinationalCircuit`
bundles one block per output bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..boolean.function import BooleanFunction
from ..boolean.truthtable import TruthTable
from ..crossbar.diode import DiodeCrossbar
from ..crossbar.fet import FetCrossbar
from ..crossbar.lattice import Lattice
from ..synthesis.lattice_dual import synthesize_lattice_dual
from ..synthesis.optimize import fold_lattice
from ..synthesis.two_terminal import synthesize_diode, synthesize_fet

#: Supported implementation styles.
STYLES = ("lattice", "diode", "fet")


@dataclass(frozen=True)
class LogicBlock:
    """One output bit realised on one crossbar array."""

    name: str
    function: BooleanFunction
    style: str
    array: Lattice | DiodeCrossbar | FetCrossbar

    @property
    def shape(self) -> tuple[int, int]:
        if isinstance(self.array, Lattice):
            return self.array.shape
        return self.array.shape

    @property
    def area(self) -> int:
        rows, cols = self.shape
        return rows * cols

    def evaluate(self, assignment: int) -> bool:
        return self.array.evaluate(assignment)


def synthesize_block(name: str, function: BooleanFunction,
                     style: str = "lattice", fold: bool = True) -> LogicBlock:
    """Map one function onto an array in the requested style.

    Constant functions get degenerate 1x1 lattices regardless of style
    (two-terminal planes cannot express constants).
    """
    if style not in STYLES:
        raise ValueError(f"unknown style {style!r}; expected one of {STYLES}")
    table = function.on
    if table.is_constant() or style == "lattice":
        lattice = synthesize_lattice_dual(table)
        if fold and not table.is_constant():
            lattice = fold_lattice(lattice, table)
        return LogicBlock(name, function, "lattice", lattice)
    if style == "diode":
        return LogicBlock(name, function, style, synthesize_diode(table))
    return LogicBlock(name, function, style, synthesize_fet(table))


@dataclass(frozen=True)
class CombinationalCircuit:
    """A multi-output combinational element: one block per output bit."""

    name: str
    blocks: tuple[LogicBlock, ...]

    @property
    def num_inputs(self) -> int:
        return self.blocks[0].function.n if self.blocks else 0

    @property
    def num_outputs(self) -> int:
        return len(self.blocks)

    @property
    def total_area(self) -> int:
        return sum(block.area for block in self.blocks)

    def evaluate(self, assignment: int) -> int:
        """All output bits packed into an int (bit i = block i)."""
        out = 0
        for i, block in enumerate(self.blocks):
            if block.evaluate(assignment):
                out |= 1 << i
        return out

    def verify_against(self, reference) -> bool:
        """Exhaustively compare with ``reference(assignment) -> int``."""
        return all(
            self.evaluate(m) == reference(m) for m in range(1 << self.num_inputs)
        )


def circuit_from_tables(name: str, tables: Sequence[TruthTable],
                        style: str = "lattice",
                        labels: Sequence[str] | None = None) -> CombinationalCircuit:
    """Build a circuit from per-output truth tables."""
    blocks = []
    for i, table in enumerate(tables):
        label = labels[i] if labels is not None else f"{name}[{i}]"
        function = BooleanFunction.from_truth_table(table, label=label)
        blocks.append(synthesize_block(label, function, style))
    return CombinationalCircuit(name, tuple(blocks))
