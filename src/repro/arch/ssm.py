"""A synchronous state machine from crossbar logic (paper sub-objective 4).

"With combination of arithmetic and memory elements a synchronous state
machine (SSM), representation of a computer, is realized" (Section II).
Here the next-state and output functions are synthesised onto crossbar
blocks (one per bit) and a :class:`~repro.arch.memory.RegisterBank` holds
the state between clock edges.

Input packing for the combinational core: state bits occupy positions
``0..state_bits-1``, external inputs ``state_bits..state_bits+input_bits-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..boolean.truthtable import TruthTable
from .blocks import CombinationalCircuit, circuit_from_tables
from .memory import RegisterBank


@dataclass(frozen=True)
class SsmSpec:
    """Behavioural specification of a Moore/Mealy machine.

    ``next_state(state, inputs)`` and ``output(state, inputs)`` define the
    semantics; bit widths bound the encodings.
    """

    state_bits: int
    input_bits: int
    output_bits: int
    next_state: Callable[[int, int], int]
    output: Callable[[int, int], int]
    reset_state: int = 0
    name: str = "ssm"


class SynchronousStateMachine:
    """Crossbar-synthesised SSM: combinational core + state register."""

    def __init__(self, spec: SsmSpec, style: str = "lattice"):
        self.spec = spec
        n = spec.state_bits + spec.input_bits

        def packed(fn: Callable[[int, int], int], bit: int) -> TruthTable:
            def value(m: int) -> bool:
                state = m & ((1 << spec.state_bits) - 1)
                inputs = m >> spec.state_bits
                return bool((fn(state, inputs) >> bit) & 1)

            return TruthTable.from_callable(n, value)

        next_tables = [packed(spec.next_state, b) for b in range(spec.state_bits)]
        out_tables = [packed(spec.output, b) for b in range(spec.output_bits)]
        self.next_logic = circuit_from_tables(
            f"{spec.name}.next", next_tables, style,
            [f"ns{b}" for b in range(spec.state_bits)],
        )
        self.output_logic = circuit_from_tables(
            f"{spec.name}.out", out_tables, style,
            [f"out{b}" for b in range(spec.output_bits)],
        ) if spec.output_bits else CombinationalCircuit(f"{spec.name}.out", ())
        self.register = RegisterBank(spec.state_bits, spec.reset_state)

    # ------------------------------------------------------------------
    @property
    def state(self) -> int:
        return self.register.state

    @property
    def total_area(self) -> int:
        """Crossbar sites of both combinational cores."""
        return self.next_logic.total_area + self.output_logic.total_area

    def reset(self) -> None:
        self.register.reset(self.spec.reset_state)

    def _pack(self, inputs: int) -> int:
        if not 0 <= inputs < (1 << self.spec.input_bits):
            raise ValueError(f"inputs {inputs} exceed {self.spec.input_bits} bits")
        return self.register.state | (inputs << self.spec.state_bits)

    def step(self, inputs: int = 0) -> int:
        """One clock cycle; returns the output sampled before the edge."""
        packed = self._pack(inputs)
        output = self.output_logic.evaluate(packed) if self.spec.output_bits else 0
        self.register.capture(self.next_logic.evaluate(packed))
        self.register.clock()
        return output

    def run(self, input_sequence: Iterable[int]) -> list[int]:
        """Clock the machine through a sequence, collecting outputs."""
        return [self.step(inputs) for inputs in input_sequence]

    def verify_against_spec(self) -> bool:
        """Exhaustively compare the synthesised core with the behaviour."""
        spec = self.spec
        for state in range(1 << spec.state_bits):
            for inputs in range(1 << spec.input_bits):
                packed = state | (inputs << spec.state_bits)
                if self.next_logic.evaluate(packed) != spec.next_state(state, inputs):
                    return False
                if spec.output_bits and (
                    self.output_logic.evaluate(packed) != spec.output(state, inputs)
                ):
                    return False
        return True


# ----------------------------------------------------------------------
# Example machines
# ----------------------------------------------------------------------
def counter_spec(bits: int, name: str = "counter") -> SsmSpec:
    """An up-counter with enable input; output = current state."""
    mask = (1 << bits) - 1
    return SsmSpec(
        state_bits=bits,
        input_bits=1,
        output_bits=bits,
        next_state=lambda s, i: (s + i) & mask,
        output=lambda s, i: s,
        name=name,
    )


def sequence_detector_spec(pattern: Sequence[int],
                           name: str = "detector") -> SsmSpec:
    """Moore detector for a bit pattern on a serial input (overlapping).

    State = length of the longest pattern prefix matched so far; output 1
    is emitted in the cycle after the full pattern was seen.
    """
    if not pattern or any(b not in (0, 1) for b in pattern):
        raise ValueError("pattern must be a non-empty 0/1 sequence")
    pattern = list(pattern)
    length = len(pattern)
    state_bits = max(1, length.bit_length())

    def next_state(state: int, inputs: int) -> int:
        if state > length:
            state = 0  # unreachable encodings behave like the reset state
        seen = pattern[:state] + [inputs & 1]
        # Longest suffix of the observed window that is a pattern prefix
        # (k = length means the pattern just (re-)completed).
        for k in range(min(len(seen), length), 0, -1):
            if seen[len(seen) - k:] == pattern[:k]:
                return k
        return 0

    def output(state: int, inputs: int) -> int:
        return 1 if state == length else 0

    return SsmSpec(
        state_bits=state_bits,
        input_bits=1,
        output_bits=1,
        next_state=next_state,
        output=output,
        name=name,
    )
