"""Memory elements from crossbar structures (paper sub-objective 3).

* :class:`CrossbarMemory` — a word-addressable crossbar ROM/RAM: word
  lines are crossbar rows, bit lines are columns, a programmed crosspoint
  stores a 1 and the selected row drives the bit lines (wired-OR read-out).
  The address decoder is itself a diode crossbar (one product term per word
  line), so the whole memory is made of the same fabric the logic uses.
* :class:`RegisterBank` — clocked state storage for the SSM; behavioural
  (flip-flops are not crossbar devices in this technology generation, as
  the paper's SSM objective notes arithmetic *and* memory elements must be
  combined with sequential elements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..boolean.cover import Cover
from ..boolean.cube import Cube
from ..crossbar.diode import DiodeCrossbar


def address_decoder(address_bits: int) -> DiodeCrossbar:
    """A 1-of-2^k decoder as a diode crossbar: row i = minterm i."""
    if address_bits < 1:
        raise ValueError("need at least one address bit")
    cubes = [Cube.from_minterm(address_bits, m) for m in range(1 << address_bits)]
    return DiodeCrossbar(Cover(address_bits, cubes))


class CrossbarMemory:
    """A 2^k x width crossbar memory with a diode-crossbar decoder."""

    def __init__(self, address_bits: int, width: int):
        if address_bits < 1 or width < 1:
            raise ValueError("address bits and width must be positive")
        self.address_bits = address_bits
        self.width = width
        self.decoder = address_decoder(address_bits)
        self.cells = [[False] * width for _ in range(1 << address_bits)]

    @property
    def num_words(self) -> int:
        return 1 << self.address_bits

    @property
    def array_shape(self) -> tuple[int, int]:
        """Storage plane shape (word lines x bit lines)."""
        return (self.num_words, self.width)

    @property
    def total_area(self) -> int:
        """Storage plane plus decoder crosspoints."""
        rows, cols = self.array_shape
        return rows * cols + self.decoder.area

    # ------------------------------------------------------------------
    def _word_line(self, address: int) -> int:
        """Drive the decoder and return the selected word line index."""
        if not 0 <= address < self.num_words:
            raise ValueError(f"address {address} out of range")
        selected = [
            r for r in range(self.decoder.num_rows)
            if self.decoder.row_value(r, address)
        ]
        if len(selected) != 1:
            raise RuntimeError("decoder must select exactly one word line")
        return selected[0]

    def write(self, address: int, value: int) -> None:
        """Program one word (reprogrammable crosspoints)."""
        if not 0 <= value < (1 << self.width):
            raise ValueError(f"value {value} exceeds width {self.width}")
        row = self._word_line(address)
        for c in range(self.width):
            self.cells[row][c] = bool((value >> c) & 1)

    def read(self, address: int) -> int:
        """Wired-OR read of the selected word line."""
        row = self._word_line(address)
        value = 0
        for c in range(self.width):
            if self.cells[row][c]:
                value |= 1 << c
        return value

    def load(self, contents: dict[int, int]) -> None:
        for address, value in contents.items():
            self.write(address, value)


@dataclass
class RegisterBank:
    """Edge-triggered state register for the synchronous state machine."""

    width: int
    state: int = 0
    _next: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("register width must be positive")
        self._check(self.state)

    def _check(self, value: int) -> None:
        if not 0 <= value < (1 << self.width):
            raise ValueError(f"value {value} exceeds register width {self.width}")

    def capture(self, next_state: int) -> None:
        """Latch the next-state value (D inputs)."""
        self._check(next_state)
        self._next = next_state

    def clock(self) -> int:
        """Rising edge: transfer D to Q; returns the new state."""
        if self._next is None:
            raise RuntimeError("clock edge without captured next state")
        self.state = self._next
        self._next = None
        return self.state

    def reset(self, value: int = 0) -> None:
        self._check(value)
        self.state = value
        self._next = None
