"""Architecture extensions: arithmetic, memory and the SSM (Section V).

These implement the paper's future-work sub-objectives 3 and 4 on top of
the synthesis flows: arithmetic/memory elements realised with crossbar
arrays and a synchronous state machine combining them.
"""

from .arithmetic import (
    AdderReport,
    adder_reference,
    adder_report,
    comparator_reference,
    shared_adder_report,
    synthesize_adder,
    synthesize_adder_shared,
    synthesize_comparator,
)
from .blocks import (
    CombinationalCircuit,
    LogicBlock,
    STYLES,
    circuit_from_tables,
    synthesize_block,
)
from .memory import CrossbarMemory, RegisterBank, address_decoder
from .ssm import (
    SsmSpec,
    SynchronousStateMachine,
    counter_spec,
    sequence_detector_spec,
)

__all__ = [
    "AdderReport",
    "CombinationalCircuit",
    "CrossbarMemory",
    "LogicBlock",
    "RegisterBank",
    "STYLES",
    "SsmSpec",
    "SynchronousStateMachine",
    "address_decoder",
    "adder_reference",
    "adder_report",
    "circuit_from_tables",
    "comparator_reference",
    "counter_spec",
    "sequence_detector_spec",
    "shared_adder_report",
    "synthesize_adder",
    "synthesize_adder_shared",
    "synthesize_block",
    "synthesize_comparator",
]
