"""Lattice expressiveness enumeration.

Which Boolean functions fit a given lattice shape?  For small shapes and
variable counts this is answerable exhaustively: enumerate every site
labelling (literals + constants), evaluate the lattice, and collect the
distinct functions — optionally collapsed to NPN classes (synthesis cost is
NPN-invariant on crossbars).

This quantifies the expressiveness trade-off behind [3]/[9]: how much
function coverage each extra site buys, and which functions *require*
area k (the optimality frontier the SAT synthesiser proves per-instance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..boolean.cube import Literal
from ..boolean.npn import npn_canonical
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Site
from ..xbareval import evaluate_labellings

#: Labellings evaluated per batched flood call (bounds the dense
#: ``(chunk * 2^n, rows, cols)`` conduction tensor).
_CHUNK_LABELLINGS = 4096


def _labels(n: int, include_constants: bool = True) -> list[Site]:
    labels: list[Site] = []
    for var in range(n):
        labels.append(Literal(var, True))
        labels.append(Literal(var, False))
    if include_constants:
        labels.extend([True, False])
    return labels


def _label_value_table(labels: list[Site], n: int) -> np.ndarray:
    """Boolean ``(num_labels, 2^n)`` value table of the candidate labels."""
    assignments = np.arange(1 << n, dtype=np.int64)
    values = np.empty((len(labels), 1 << n), dtype=bool)
    for k, label in enumerate(labels):
        if isinstance(label, Literal):
            values[k] = (((assignments >> label.var) & 1) == 1) == label.positive
        else:
            values[k] = bool(label)
    return values


def enumerate_lattice_functions(rows: int, cols: int, n: int,
                                include_constants: bool = True,
                                limit: int | None = 2_000_000
                                ) -> set[TruthTable]:
    """All functions computable by some rows x cols lattice over n vars.

    Exhaustive over ``(2n+2)^(rows*cols)`` labellings; ``limit`` guards the
    combinatorial blow-up.  Labellings are evaluated in chunks through the
    batched flood of :func:`repro.xbareval.evaluate_labellings` — one
    conduction tensor per chunk instead of one union-find call per
    (labelling, assignment) pair.
    """
    labels = _labels(n, include_constants)
    sites = rows * cols
    num_labels = len(labels)
    total = num_labels ** sites
    if limit is not None and total > limit:
        raise ValueError(
            f"{total} labellings exceed the enumeration limit {limit}"
        )
    label_values = _label_value_table(labels, n)
    seen: set[bytes] = set()
    for start in range(0, total, _CHUNK_LABELLINGS):
        stop = min(start + _CHUNK_LABELLINGS, total)
        # Mixed-radix decode of the labelling indices (itertools.product
        # order: the last site varies fastest).
        codes = np.arange(start, stop, dtype=np.int64)
        grids = np.empty((stop - start, sites), dtype=np.int64)
        for s in range(sites - 1, -1, -1):
            grids[:, s] = codes % num_labels
            codes //= num_labels
        tables = evaluate_labellings(
            label_values, grids.reshape(stop - start, rows, cols))
        packed = np.packbits(tables, axis=1)
        seen.update(row.tobytes() for row in packed)
    return {
        TruthTable(n, np.unpackbits(np.frombuffer(packed, dtype=np.uint8),
                                    count=1 << n).astype(bool))
        for packed in seen
    }


@dataclass(frozen=True)
class ExpressivenessRow:
    """One (shape, n) entry of the expressiveness table."""

    rows: int
    cols: int
    n: int
    labellings: int
    distinct_functions: int
    npn_classes: int
    total_functions: int

    @property
    def coverage(self) -> float:
        return self.distinct_functions / self.total_functions


def expressiveness(rows: int, cols: int, n: int) -> ExpressivenessRow:
    """Distinct functions and NPN classes a shape realises over n vars."""
    functions = enumerate_lattice_functions(rows, cols, n)
    classes = {
        npn_canonical(f)[0].values.tobytes() for f in functions
    }
    labels = len(_labels(n))
    return ExpressivenessRow(
        rows=rows,
        cols=cols,
        n=n,
        labellings=labels ** (rows * cols),
        distinct_functions=len(functions),
        npn_classes=len(classes),
        total_functions=1 << (1 << n),
    )


def minimal_area_map(n: int, max_area: int = 4) -> dict[TruthTable, int]:
    """Smallest lattice area realising each reachable function.

    Enumerates shapes by increasing area; functions first reached at area k
    provably need k sites (every smaller shape was fully enumerated).
    """
    result: dict[TruthTable, int] = {}
    shapes = sorted(
        ((r, c) for r in range(1, max_area + 1) for c in range(1, max_area + 1)
         if r * c <= max_area),
        key=lambda shape: shape[0] * shape[1],
    )
    for r, c in shapes:
        area = r * c
        for function in enumerate_lattice_functions(r, c, n):
            # shapes arrive in increasing area, so first reach is minimal
            result.setdefault(function, area)
    return result
