"""Lattice expressiveness enumeration.

Which Boolean functions fit a given lattice shape?  For small shapes and
variable counts this is answerable exhaustively: enumerate every site
labelling (literals + constants), evaluate the lattice, and collect the
distinct functions — optionally collapsed to NPN classes (synthesis cost is
NPN-invariant on crossbars).

This quantifies the expressiveness trade-off behind [3]/[9]: how much
function coverage each extra site buys, and which functions *require*
area k (the optimality frontier the SAT synthesiser proves per-instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..boolean.cube import Literal
from ..boolean.npn import npn_canonical
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice, Site


def _labels(n: int, include_constants: bool = True) -> list[Site]:
    labels: list[Site] = []
    for var in range(n):
        labels.append(Literal(var, True))
        labels.append(Literal(var, False))
    if include_constants:
        labels.extend([True, False])
    return labels


def enumerate_lattice_functions(rows: int, cols: int, n: int,
                                include_constants: bool = True,
                                limit: int | None = 2_000_000
                                ) -> set[TruthTable]:
    """All functions computable by some rows x cols lattice over n vars.

    Exhaustive over ``(2n+2)^(rows*cols)`` labellings; ``limit`` guards the
    combinatorial blow-up.
    """
    labels = _labels(n, include_constants)
    sites = rows * cols
    total = len(labels) ** sites
    if limit is not None and total > limit:
        raise ValueError(
            f"{total} labellings exceed the enumeration limit {limit}"
        )
    functions: set[TruthTable] = set()
    for assignment in product(labels, repeat=sites):
        grid = [list(assignment[r * cols:(r + 1) * cols]) for r in range(rows)]
        lattice = Lattice(n, grid)
        functions.add(lattice.to_truth_table())
    return functions


@dataclass(frozen=True)
class ExpressivenessRow:
    """One (shape, n) entry of the expressiveness table."""

    rows: int
    cols: int
    n: int
    labellings: int
    distinct_functions: int
    npn_classes: int
    total_functions: int

    @property
    def coverage(self) -> float:
        return self.distinct_functions / self.total_functions


def expressiveness(rows: int, cols: int, n: int) -> ExpressivenessRow:
    """Distinct functions and NPN classes a shape realises over n vars."""
    functions = enumerate_lattice_functions(rows, cols, n)
    classes = {
        npn_canonical(f)[0].values.tobytes() for f in functions
    }
    labels = len(_labels(n))
    return ExpressivenessRow(
        rows=rows,
        cols=cols,
        n=n,
        labellings=labels ** (rows * cols),
        distinct_functions=len(functions),
        npn_classes=len(classes),
        total_functions=1 << (1 << n),
    )


def minimal_area_map(n: int, max_area: int = 4) -> dict[TruthTable, int]:
    """Smallest lattice area realising each reachable function.

    Enumerates shapes by increasing area; functions first reached at area k
    provably need k sites (every smaller shape was fully enumerated).
    """
    result: dict[TruthTable, int] = {}
    shapes = sorted(
        ((r, c) for r in range(1, max_area + 1) for c in range(1, max_area + 1)
         if r * c <= max_area),
        key=lambda shape: shape[0] * shape[1],
    )
    for r, c in shapes:
        area = r * c
        for function in enumerate_lattice_functions(r, c, n):
            # shapes arrive in increasing area, so first reach is minimal
            result.setdefault(function, area)
    return result
