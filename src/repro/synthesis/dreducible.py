"""D-reducible preprocessing for lattice synthesis (Section III-B.2, [4],[6]).

A D-reducible function satisfies ``f = chi_A * f_A`` where ``A`` is the
affine hull of the on-set, ``chi_A`` its characteristic function and
``f_A`` the projection of ``f`` onto ``A``.  The flow synthesises the two
factors as independent lattices and recomposes them with the AND padding
rule; when ``dim(A)`` is much smaller than ``n``, the ``f_A`` lattice
shrinks dramatically and the total beats direct synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..boolean.affine import AffineSpace, d_reduction, embed_projection, parity_table
from ..boolean.function import BooleanFunction
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice
from .compose import constant_lattice, lattice_and, lattice_and_many
from .lattice_dual import synthesize_lattice_dual
from .optimize import fold_lattice

LatticeSynthesizer = Callable[[TruthTable], Lattice]


def synthesize_characteristic(space: AffineSpace,
                              synthesizer: LatticeSynthesizer | None = None,
                              fold: bool = True) -> Lattice:
    """Lattice for ``chi_A`` built constraint-by-constraint ([6]).

    ``chi_A`` is the conjunction of independent parity constraints; each
    constraint usually touches few variables, so synthesising one small
    parity lattice per constraint and AND-composing them is far cheaper
    than synthesising the monolithic product function.
    """
    synth = synthesizer or synthesize_lattice_dual
    if not space.constraints:
        return constant_lattice(space.n, True)
    factors = []
    for mask, rhs in space.constraints:
        table = parity_table(space.n, mask, rhs)
        lattice = synth(table)
        if fold:
            lattice = fold_lattice(lattice, table)
        factors.append(lattice)
    chi = lattice_and_many(factors)
    if fold:
        chi = fold_lattice(chi, space.characteristic_table())
    return chi


@dataclass(frozen=True)
class DReducibleLattice:
    """Result of the D-reducible decomposition flow."""

    space: AffineSpace
    chi_lattice: Lattice
    projection_lattice: Lattice
    lattice: Lattice

    @property
    def area(self) -> int:
        return self.lattice.area

    @property
    def dimension_drop(self) -> int:
        """How many dimensions the affine restriction removed."""
        return self.space.n - self.space.dim


def synthesize_dreducible(function: BooleanFunction | TruthTable,
                          synthesizer: LatticeSynthesizer | None = None,
                          verify: bool = True,
                          fold_blocks: bool = True) -> DReducibleLattice | None:
    """Synthesize ``f`` as ``chi_A AND f_A`` when ``f`` is D-reducible.

    ``chi_A`` is built constraint-wise (:func:`synthesize_characteristic`)
    and both factors are folded before composition when ``fold_blocks``.
    Returns ``None`` when the function is constant-0 or its affine hull is
    the full space (no reduction available).
    """
    table = function.on if isinstance(function, BooleanFunction) else function
    synth = synthesizer or synthesize_lattice_dual
    decomposition = d_reduction(table)
    if decomposition is None:
        return None
    space, projected = decomposition
    # The embedded projection depends only on the free variables of A but is
    # expressed in the full n-variable space, so the AND composition needs
    # no re-indexing.
    embedded = embed_projection(projected, space)
    chi_lattice = synthesize_characteristic(space, synthesizer, fold_blocks)
    projection_lattice = synth(embedded)
    if fold_blocks:
        projection_lattice = fold_lattice(projection_lattice, embedded)
    lattice = lattice_and(chi_lattice, projection_lattice)
    if verify and not lattice.implements(table):
        raise RuntimeError("D-reducible recomposition failed verification")
    return DReducibleLattice(
        space=space,
        chi_lattice=chi_lattice,
        projection_lattice=projection_lattice,
        lattice=lattice,
    )
