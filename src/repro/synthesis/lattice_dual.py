"""Dual-based lattice synthesis (Altun & Riedel [2],[3]; Fig. 5).

The construction: minimize ``f`` and its dual ``f^D``; build a lattice with
one **column per product of f** and one **row per product of f^D**; assign
to site (i, j) a literal shared by column product ``p_j`` and row product
``q_i``.  The duality lemma guarantees such a literal exists for every
pair, and the resulting lattice computes exactly ``f``:

* if ``f(x) = 1`` some ``p_j`` is true, so every site of column ``j`` (all
  literals of ``p_j``) conducts — a straight top-bottom path;
* if ``f(x) = 0`` then ``f^D(~x) = 1``, so some ``q_i`` has all its
  literals false at ``x`` — row ``i`` is fully OFF and cuts every path.

The size ``#products(f^D) x #products(f)`` (Fig. 5) is correct but not
always minimal — the motivation for the preprocessing flows and the SAT
optimal synthesiser.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boolean.cover import Cover
from ..boolean.cube import Cube, Literal
from ..boolean.function import BooleanFunction
from ..boolean.minimize import minimize
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice
from ..xbareval import implements_table
from .compose import constant_lattice


class SynthesisError(RuntimeError):
    """Raised when a construction invariant is violated."""


def lattice_size_formula(cover: Cover, dual_cover: Cover) -> tuple[int, int]:
    """Fig. 5 size formula: (products of f^D, products of f)."""
    return dual_cover.num_products, cover.num_products


def pick_shared_literal(column_product: Cube, row_product: Cube) -> Literal:
    """Deterministically choose a literal shared by the two products."""
    shared = column_product.shared_literals(row_product)
    if not shared:
        raise SynthesisError(
            f"duality lemma violated: products {column_product} and "
            f"{row_product} share no literal (are these really covers of a "
            "function and its dual?)"
        )
    return shared[0]


#: Site tie-break strategies for :func:`lattice_from_covers`.  Any shared
#: literal yields a correct lattice; the choice affects how well the result
#: folds afterwards (an ablation knob, see benchmarks/bench_ablations.py).
TIE_BREAKS = ("first", "last", "frequent")


def lattice_from_covers(cover: Cover, dual_cover: Cover,
                        tie_break: str = "first") -> Lattice:
    """Altun-Riedel lattice for explicit covers of ``f`` and ``f^D``.

    Args:
        tie_break: which shared literal to place when several qualify —
            ``"first"``/``"last"`` in variable order, or ``"frequent"``
            (the literal shared by the most product pairs overall, which
            maximises site repetition and tends to fold better).
    """
    if tie_break not in TIE_BREAKS:
        raise ValueError(f"unknown tie_break {tie_break!r}; expected {TIE_BREAKS}")
    n = cover.n
    if cover.num_products == 0:
        return constant_lattice(n, False)
    if dual_cover.num_products == 0:
        return constant_lattice(n, True)
    shared_lists = [
        [p.shared_literals(q) for p in cover]
        for q in dual_cover
    ]
    for row in shared_lists:
        for shared in row:
            if not shared:
                raise SynthesisError(
                    "duality lemma violated: a product pair shares no literal"
                )
    if tie_break == "frequent":
        counts: dict[Literal, int] = {}
        for row in shared_lists:
            for shared in row:
                for lit in shared:
                    counts[lit] = counts.get(lit, 0) + 1
        sites = [
            [max(shared, key=lambda lit: (counts[lit], -lit.var))
             for shared in row]
            for row in shared_lists
        ]
    elif tie_break == "last":
        sites = [[shared[-1] for shared in row] for row in shared_lists]
    else:
        sites = [[shared[0] for shared in row] for row in shared_lists]
    return Lattice(n, sites)


def synthesize_lattice_dual(function: BooleanFunction | TruthTable,
                            method: str = "auto",
                            verify: bool = True) -> Lattice:
    """Synthesize a lattice for a function via the dual-based construction.

    Args:
        function: target (don't-cares, if any, are resolved to 0 — lattice
            synthesis with flexibility is delegated to the P-circuit flow).
        method: minimization engine for both covers.
        verify: exhaustively check the lattice implements the function
            (cheap for the n ranges used here).

    Returns:
        A :class:`~repro.crossbar.lattice.Lattice` computing the function.
    """
    table = function.on if isinstance(function, BooleanFunction) else function
    cover = minimize(table, method=method)
    dual_cover = minimize(table.dual(), method=method)
    lattice = lattice_from_covers(cover, dual_cover)
    # Candidate check through the batched evaluation core (one flood call
    # over all 2^n assignments).
    if verify and not implements_table(lattice, table):
        raise SynthesisError("dual-based lattice failed verification")
    return lattice


@dataclass(frozen=True)
class DualSynthesisReport:
    """Everything the Fig. 5 experiment rows need."""

    label: str
    n: int
    products: int
    dual_products: int
    formula_shape: tuple[int, int]
    lattice: Lattice

    @property
    def area(self) -> int:
        return self.lattice.area


def dual_synthesis_report(function: BooleanFunction,
                          method: str = "auto") -> DualSynthesisReport:
    """Run the flow and capture the size-formula quantities alongside."""
    cover = minimize(function.on, method=method)
    dual_cover = minimize(function.on.dual(), method=method)
    lattice = lattice_from_covers(cover, dual_cover)
    if not implements_table(lattice, function.on):
        raise SynthesisError("dual-based lattice failed verification")
    return DualSynthesisReport(
        label=function.label or "f",
        n=function.n,
        products=cover.num_products,
        dual_products=dual_cover.num_products,
        formula_shape=lattice_size_formula(cover, dual_cover),
        lattice=lattice,
    )
