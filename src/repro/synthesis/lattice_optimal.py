"""SAT-based exact lattice synthesis (the approach of [9], Gange et al.).

For a candidate shape R x C, a CNF encodes "some labelling of the R*C sites
with literals/constants computes exactly f":

* one-hot site labels ``s[r][c][k]`` over the 2n literals plus constants;
* per input assignment ``a``, a conduction variable ``g[r][c][a]`` tied to
  the chosen label's value under ``a``;
* for every ON minterm: some enumerated self-avoiding top-bottom path has
  all its sites conducting (Tseitin path selectors + one OR clause);
* for every OFF minterm: every top-bottom path is broken (one clause per
  path: the disjunction of its sites' ``~g``).

Shapes are tried in increasing area; the first satisfiable shape is a
provably minimal-area lattice.  The dual-based construction (folded)
provides the upper bound that terminates the search.  Practical for the
same regime [9] reports exact results in (areas up to ~12-16 sites, few
variables); beyond that the search degrades gracefully to the heuristic
result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..boolean.cube import Literal
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice, Site
from ..crossbar.paths import enumerate_top_bottom_paths
from ..sat.cnf import Cnf
from ..sat.encodings import exactly_one
from ..sat.solver import Solver
from ..xbareval import implements_table
from .compose import constant_lattice
from .lattice_dual import synthesize_lattice_dual
from .optimize import fold_lattice

#: Shapes whose path count exceeds this are skipped (encoding blow-up).
MAX_PATHS_PER_SHAPE = 4000


@lru_cache(maxsize=256)
def _paths_for_shape(rows: int, cols: int) -> tuple[tuple[tuple[int, int], ...], ...]:
    return tuple(enumerate_top_bottom_paths(rows, cols))


def _labels(n: int) -> list[Site]:
    labels: list[Site] = []
    for var in range(n):
        labels.append(Literal(var, True))
        labels.append(Literal(var, False))
    labels.append(True)
    labels.append(False)
    return labels


def _label_value(label: Site, assignment: int) -> bool:
    if label is True or label is False:
        return label
    return label.evaluate(assignment)


def encode_shape(table: TruthTable, rows: int, cols: int) -> tuple[Cnf, list[list[list[int]]]]:
    """Build the CNF for one candidate shape.

    Returns the formula and the site-label selector variables
    ``site_vars[r][c][k]``.
    """
    n = table.n
    labels = _labels(n)
    cnf = Cnf()
    site_vars = [[[cnf.new_var() for _ in labels] for _ in range(cols)]
                 for _ in range(rows)]
    for r in range(rows):
        for c in range(cols):
            exactly_one(cnf, site_vars[r][c])
    paths = _paths_for_shape(rows, cols)
    for assignment in range(1 << n):
        target = table.evaluate(assignment)
        g = [[cnf.new_var() for _ in range(cols)] for _ in range(rows)]
        for r in range(rows):
            for c in range(cols):
                for k, label in enumerate(labels):
                    if _label_value(label, assignment):
                        cnf.add_clause([-site_vars[r][c][k], g[r][c]])
                    else:
                        cnf.add_clause([-site_vars[r][c][k], -g[r][c]])
        if target:
            selectors = []
            for path in paths:
                p = cnf.new_var()
                for r, c in path:
                    cnf.add_clause([-p, g[r][c]])
                selectors.append(p)
            cnf.add_clause(selectors)
        else:
            for path in paths:
                cnf.add_clause([-g[r][c] for r, c in path])
    return cnf, site_vars


def decode_lattice(table: TruthTable, rows: int, cols: int,
                   site_vars: list[list[list[int]]],
                   model: dict[int, bool]) -> Lattice:
    """Read the chosen labels out of a satisfying model."""
    labels = _labels(table.n)
    sites: list[list[Site]] = []
    for r in range(rows):
        row: list[Site] = []
        for c in range(cols):
            chosen = [k for k, var in enumerate(site_vars[r][c]) if model[var]]
            if len(chosen) != 1:
                raise RuntimeError("one-hot site labelling violated")
            row.append(labels[chosen[0]])
        sites.append(row)
    return Lattice(table.n, sites)


def candidate_shapes(max_area: int) -> list[tuple[int, int]]:
    """All shapes with area < max_area, by increasing area then squareness."""
    shapes = [
        (r, c)
        for r in range(1, max_area + 1)
        for c in range(1, max_area + 1)
        if r * c < max_area
    ]
    shapes.sort(key=lambda shape: (shape[0] * shape[1],
                                   abs(shape[0] - shape[1]), shape))
    return shapes


@dataclass
class OptimalSynthesisResult:
    """Outcome of the exact search."""

    lattice: Lattice
    proved_optimal: bool
    shapes_tried: list[tuple[int, int]] = field(default_factory=list)
    shapes_skipped: list[tuple[int, int]] = field(default_factory=list)
    conflicts: int = 0

    @property
    def area(self) -> int:
        return self.lattice.area

    @property
    def shape(self) -> tuple[int, int]:
        return self.lattice.shape


def synthesize_lattice_optimal(table: TruthTable,
                               conflict_budget: int | None = 200_000,
                               max_paths_per_shape: int = MAX_PATHS_PER_SHAPE,
                               upper_bound: Lattice | None = None
                               ) -> OptimalSynthesisResult:
    """Find a minimum-area lattice for ``table``.

    Args:
        table: the target function (completely specified).
        conflict_budget: per-shape CDCL conflict cap; exceeding it skips the
            shape and forfeits the optimality proof.
        max_paths_per_shape: skip shapes whose path enumeration explodes.
        upper_bound: a known-correct lattice to cap the search (defaults to
            the folded dual-based construction).

    Returns:
        The best lattice found; ``proved_optimal`` is True when every
        smaller shape was refuted by the SAT solver.
    """
    if table.is_contradiction():
        return OptimalSynthesisResult(constant_lattice(table.n, False), True)
    if table.is_tautology():
        return OptimalSynthesisResult(constant_lattice(table.n, True), True)
    if upper_bound is None:
        upper_bound = fold_lattice(synthesize_lattice_dual(table), table)
    best = upper_bound
    proved = True
    tried: list[tuple[int, int]] = []
    skipped: list[tuple[int, int]] = []
    conflicts = 0
    for rows, cols in candidate_shapes(best.area):
        paths = _paths_for_shape(rows, cols)
        if not paths or len(paths) > max_paths_per_shape:
            if len(paths) > max_paths_per_shape:
                skipped.append((rows, cols))
                proved = False
            continue
        cnf, site_vars = encode_shape(table, rows, cols)
        solver = Solver()
        if not solver.add_cnf(cnf):
            tried.append((rows, cols))
            continue
        outcome = solver.solve(conflict_budget=conflict_budget)
        conflicts += solver.conflicts
        tried.append((rows, cols))
        if outcome is True:
            lattice = decode_lattice(table, rows, cols, site_vars, solver.model())
            if not implements_table(lattice, table):
                raise RuntimeError("SAT-synthesised lattice failed verification")
            return OptimalSynthesisResult(lattice, proved, tried, skipped, conflicts)
        if outcome is None:
            skipped.append((rows, cols))
            proved = False
    return OptimalSynthesisResult(best, proved, tried, skipped, conflicts)
