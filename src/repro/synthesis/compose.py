"""The lattice composition algebra of [3] (Altun & Riedel, DAC'10).

Given lattices computing ``f`` and ``g``:

* their **disjunction** ``f + g`` is computed by placing the lattices side
  by side separated by a *padding column of 0s* (the OFF column prevents
  lateral current between the operands);
* their **conjunction** ``f * g`` is computed by stacking them separated by
  a *padding row of 1s* (the ON row lets current re-align on any column
  while still forcing it through both operands).

Height/width mismatches are equalised by appending rows of 1s (harmless
below a lattice: they can only be reached after full traversal) or columns
of 0s (never conduct).  These rules are exactly the ones the paper invokes
for P-circuit recomposition (Section III-B.1).
"""

from __future__ import annotations

from ..boolean.cube import Cube, Literal
from ..crossbar.lattice import Lattice, Site


def constant_lattice(n: int, value: bool) -> Lattice:
    """A 1x1 lattice computing a constant."""
    return Lattice(n, [[bool(value)]])


def literal_lattice(n: int, literal: Literal) -> Lattice:
    """A 1x1 lattice computing a single literal."""
    return Lattice(n, [[literal]])


def product_lattice(n: int, cube: Cube) -> Lattice:
    """A one-column lattice computing a product (series connection)."""
    literals = list(cube.literals())
    if not literals:
        return constant_lattice(n, True)
    return Lattice(n, [[lit] for lit in literals])


def pad_rows(lattice: Lattice, target_rows: int) -> Lattice:
    """Append rows of 1s at the bottom until the height matches.

    A full ON row below the lattice is reachable only after a complete
    top-to-bottom traversal, so the computed function is unchanged.
    """
    if target_rows < lattice.rows:
        raise ValueError("cannot shrink a lattice by padding")
    if target_rows == lattice.rows:
        return lattice
    rows: list[list[Site]] = [list(row) for row in lattice.sites]
    for _ in range(target_rows - lattice.rows):
        rows.append([True] * lattice.cols)
    return Lattice(lattice.n, rows)


def pad_cols(lattice: Lattice, target_cols: int) -> Lattice:
    """Append columns of 0s on the right until the width matches.

    OFF columns neither conduct nor couple columns, so the function is
    unchanged.
    """
    if target_cols < lattice.cols:
        raise ValueError("cannot shrink a lattice by padding")
    if target_cols == lattice.cols:
        return lattice
    extra = target_cols - lattice.cols
    rows = [list(row) + [False] * extra for row in lattice.sites]
    return Lattice(lattice.n, rows)


def lattice_or(a: Lattice, b: Lattice) -> Lattice:
    """Disjunction: side-by-side with a separating column of 0s."""
    if a.n != b.n:
        raise ValueError("operands live in different variable spaces")
    height = max(a.rows, b.rows)
    a = pad_rows(a, height)
    b = pad_rows(b, height)
    rows: list[list[Site]] = []
    for ra, rb in zip(a.sites, b.sites):
        rows.append(list(ra) + [False] + list(rb))
    return Lattice(a.n, rows)


def lattice_and(a: Lattice, b: Lattice) -> Lattice:
    """Conjunction: stacked with a separating row of 1s."""
    if a.n != b.n:
        raise ValueError("operands live in different variable spaces")
    width = max(a.cols, b.cols)
    a = pad_cols(a, width)
    b = pad_cols(b, width)
    rows: list[list[Site]] = [list(row) for row in a.sites]
    rows.append([True] * width)
    rows.extend(list(row) for row in b.sites)
    return Lattice(a.n, rows)


def lattice_or_many(lattices: list[Lattice]) -> Lattice:
    """Fold :func:`lattice_or` over a non-empty list."""
    if not lattices:
        raise ValueError("need at least one operand")
    result = lattices[0]
    for other in lattices[1:]:
        result = lattice_or(result, other)
    return result


def lattice_and_many(lattices: list[Lattice]) -> Lattice:
    """Fold :func:`lattice_and` over a non-empty list."""
    if not lattices:
        raise ValueError("need at least one operand")
    result = lattices[0]
    for other in lattices[1:]:
        result = lattice_and(result, other)
    return result


def lift_lattice(lattice: Lattice, var: int) -> Lattice:
    """Re-embed a lattice over n-1 variables into an n-variable space.

    Inserts a fresh (unused) variable at index ``var``; literals on
    variables >= var shift up by one.  This is how P-circuit cofactor
    blocks, synthesised in the (n-1)-dimensional sub-space, are placed back
    into the full space before composition.
    """

    def shift(site: Site) -> Site:
        if isinstance(site, Literal) and site.var >= var:
            return Literal(site.var + 1, site.positive)
        return site

    rows = [[shift(site) for site in row] for row in lattice.sites]
    return Lattice(lattice.n + 1, rows)
