"""Multi-output diode-plane synthesis with product-term sharing.

A diode crossbar is a PLA plane: products are rows, literals are columns,
and *several outputs can share the same rows* — each output adds one OR
column connected to the rows of its cover.  For multi-output functions
(adders, comparators, the paper's arithmetic elements) sharing shrinks the
array versus one independent plane per output:

    independent:  sum_o products(f_o) x (literals(f_o) + 1)
    shared:       |union of products| x (|union of literals| + #outputs)

Sharing wins when outputs overlap in products (decoder/ROM-style bundles,
symmetric-output families) and loses when covers are disjoint — the
report exposes both sides honestly.  Product collection is deliberately
simple (union of the per-output minimized covers, deduplicated); a full
multi-output minimizer (espresso-MV) is out of scope and unnecessary for
the experiment shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..boolean.cube import Cube, Literal
from ..boolean.minimize import minimize, prime_implicants
from ..boolean.truthtable import TruthTable


def multi_output_minimize(tables: Sequence[TruthTable]
                          ) -> list[tuple[Cube, frozenset[int]]]:
    """Joint two-level minimization of an output bundle (espresso-MV-lite).

    Multi-output implicants are (cube, output-set) pairs where the cube is
    an implicant of *every* tagged output.  Candidates are the primes of
    each non-empty output intersection, tagged with the maximal output set
    they serve; a greedy covering over all (minterm, output) pairs then
    selects rows, preferring rows that serve many outputs at once.  The
    result is verified by construction (every pair covered, no cube outside
    its outputs' on-sets).
    """
    if not tables:
        raise ValueError("need at least one output")
    n = tables[0].n
    if any(t.n != n for t in tables):
        raise ValueError("all outputs must share the input space")
    k = len(tables)
    # Candidate generation: primes of every non-empty intersection.
    candidates: dict[Cube, frozenset[int]] = {}
    for subset in range(1, 1 << k):
        members = [o for o in range(k) if (subset >> o) & 1]
        meet = tables[members[0]]
        for o in members[1:]:
            meet = meet & tables[o]
        if meet.is_contradiction():
            continue
        for prime in prime_implicants(meet):
            prime_table = TruthTable.from_cubes(n, [prime])
            tags = frozenset(
                o for o in range(k) if prime_table.implies(tables[o])
            )
            existing = candidates.get(prime)
            if existing is None or len(tags) > len(existing):
                candidates[prime] = tags
    # Greedy covering of all (minterm, output) pairs.
    universe: set[tuple[int, int]] = set()
    for o, table in enumerate(tables):
        universe.update((m, o) for m in table.minterms())
    chosen: list[tuple[Cube, frozenset[int]]] = []
    pair_cover: dict[Cube, set[tuple[int, int]]] = {}
    for cube, tags in candidates.items():
        pairs = {
            (m, o) for o in tags for m in cube.minterms()
            if tables[o].evaluate(m)
        }
        pair_cover[cube] = pairs
    remaining = set(universe)
    while remaining:
        best_cube = max(
            pair_cover,
            key=lambda c: (len(pair_cover[c] & remaining), -c.num_literals),
        )
        gain = pair_cover[best_cube] & remaining
        if not gain:
            raise RuntimeError("multi-output covering stalled (internal bug)")
        chosen.append((best_cube, candidates[best_cube]))
        remaining -= gain
    # Redundancy pruning: drop rows whose pairs are covered by the rest.
    pruned = True
    while pruned:
        pruned = False
        for i in range(len(chosen)):
            others: set[tuple[int, int]] = set()
            for j, (cube, _tags) in enumerate(chosen):
                if j != i:
                    others |= pair_cover[cube] & universe
            if (pair_cover[chosen[i][0]] & universe) <= others:
                chosen.pop(i)
                pruned = True
                break
    return chosen


@dataclass(frozen=True)
class SharedPlaneReport:
    """Shared vs independent two-level area for one function bundle."""

    num_outputs: int
    shared_rows: int
    shared_cols: int
    independent_area: int

    @property
    def shared_area(self) -> int:
        return self.shared_rows * self.shared_cols

    @property
    def saving(self) -> int:
        return self.independent_area - self.shared_area


class MultiOutputDiodePlane:
    """One diode crossbar implementing several outputs over shared rows.

    ``mode="joint"`` (default) uses :func:`multi_output_minimize` so rows
    serving several outputs are found; ``mode="union"`` simply unions the
    independently minimized covers (the naive baseline).
    """

    def __init__(self, tables: Sequence[TruthTable], method: str = "auto",
                 mode: str = "joint"):
        if not tables:
            raise ValueError("need at least one output")
        n = tables[0].n
        if any(t.n != n for t in tables):
            raise ValueError("all outputs must share the input space")
        if any(t.is_contradiction() for t in tables):
            raise ValueError("constant-0 outputs have no diode rows")
        if mode not in ("joint", "union"):
            raise ValueError(f"unknown mode {mode!r}")
        self.n = n
        self.tables = list(tables)
        self.covers = [minimize(t, method=method) for t in tables]

        def union_layout() -> tuple[list[Cube], list[set[int]]]:
            products: list[Cube] = []
            output_rows: list[set[int]] = [set() for _ in tables]
            index: dict[Cube, int] = {}
            for out, cover in enumerate(self.covers):
                for cube in cover:
                    row = index.get(cube)
                    if row is None:
                        row = len(products)
                        index[cube] = row
                        products.append(cube)
                    output_rows[out].add(row)
            return products, output_rows

        def joint_layout() -> tuple[list[Cube], list[set[int]]]:
            products: list[Cube] = []
            output_rows: list[set[int]] = [set() for _ in tables]
            for row, (cube, tags) in enumerate(multi_output_minimize(tables)):
                products.append(cube)
                for o in tags:
                    output_rows[o].add(row)
            return products, output_rows

        if mode == "joint":
            # The greedy joint covering can lose to the per-output exact
            # covers (classic greedy set-cover gap): keep whichever layout
            # needs fewer rows, so joint mode never regresses below union.
            joint = joint_layout()
            union = union_layout()
            self.products, self.output_rows = (
                joint if len(joint[0]) <= len(union[0]) else union
            )
        else:
            self.products, self.output_rows = union_layout()
        literals: set[Literal] = set()
        for cube in self.products:
            literals.update(cube.literals())
        self.literals = sorted(literals)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.products)

    @property
    def num_cols(self) -> int:
        """Literal columns plus one OR column per output."""
        return len(self.literals) + len(self.output_rows)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def area(self) -> int:
        return self.num_rows * self.num_cols

    def evaluate(self, assignment: int) -> int:
        """All outputs packed into an int (bit o = output o)."""
        row_values = [cube.evaluate(assignment) for cube in self.products]
        out = 0
        for o, rows in enumerate(self.output_rows):
            if any(row_values[r] for r in rows):
                out |= 1 << o
        return out

    def implements_all(self) -> bool:
        """Exhaustive check of every output column."""
        for assignment in range(1 << self.n):
            packed = self.evaluate(assignment)
            for o, table in enumerate(self.tables):
                if bool((packed >> o) & 1) != table.evaluate(assignment):
                    return False
        return True

    def report(self) -> SharedPlaneReport:
        independent = sum(
            cover.num_products * (cover.num_distinct_literals + 1)
            for cover in self.covers
        )
        return SharedPlaneReport(
            num_outputs=len(self.output_rows),
            shared_rows=self.num_rows,
            shared_cols=self.num_cols,
            independent_area=independent,
        )


def shared_plane_report(tables: Sequence[TruthTable],
                        method: str = "auto") -> SharedPlaneReport:
    """Build the shared plane (with verification) and report the areas."""
    plane = MultiOutputDiodePlane(tables, method=method)
    if not plane.implements_all():
        raise RuntimeError("shared diode plane failed verification")
    return plane.report()
