"""Post-synthesis lattice reduction (in the spirit of [11], Morgul & Altun).

The dual-based construction is frequently non-minimal (Section III-B).  Two
cheap semantic-preserving post-passes recover part of the gap:

* **row/column folding** — greedily delete whole rows or columns whenever
  the reduced lattice still implements the target;
* **site simplification** — rewrite individual sites to constants (``1``
  preferred: it only *adds* conduction, so when the function is unchanged
  the site's switch and its input wire can be dropped).

Both passes verify against the full truth table, so they are exact for the
function sizes used in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice


def remove_row(lattice: Lattice, row: int) -> Lattice:
    """Delete one row (must leave at least one)."""
    if lattice.rows == 1:
        raise ValueError("cannot remove the only row")
    rows = [list(r) for i, r in enumerate(lattice.sites) if i != row]
    return Lattice(lattice.n, rows)


def remove_col(lattice: Lattice, col: int) -> Lattice:
    """Delete one column (must leave at least one)."""
    if lattice.cols == 1:
        raise ValueError("cannot remove the only column")
    rows = [[s for j, s in enumerate(r) if j != col] for r in lattice.sites]
    return Lattice(lattice.n, rows)


def fold_lattice(lattice: Lattice, target: TruthTable) -> Lattice:
    """Greedy row/column deletion while the target function is preserved.

    Scans rows then columns repeatedly until a fixpoint; each accepted
    deletion is verified exhaustively.
    """
    if target.n != lattice.n:
        raise ValueError("variable space mismatch")
    current = lattice
    improved = True
    while improved:
        improved = False
        r = 0
        while current.rows > 1 and r < current.rows:
            candidate = remove_row(current, r)
            if candidate.implements(target):
                current = candidate
                improved = True
            else:
                r += 1
        c = 0
        while current.cols > 1 and c < current.cols:
            candidate = remove_col(current, c)
            if candidate.implements(target):
                current = candidate
                improved = True
            else:
                c += 1
    return current


def simplify_sites(lattice: Lattice, target: TruthTable) -> Lattice:
    """Replace sites with constants when the function is preserved.

    Tries ``1`` first (removes a switch), then ``0`` (documents that the
    site is dead).  Literal sites that survive both substitutions are kept.
    """
    if target.n != lattice.n:
        raise ValueError("variable space mismatch")
    current = lattice
    for r in range(current.rows):
        for c in range(current.cols):
            site = current.site(r, c)
            if site is True or site is False:
                continue
            for replacement in (True, False):
                candidate = current.with_site(r, c, replacement)
                if candidate.implements(target):
                    current = candidate
                    break
    return current


@dataclass(frozen=True)
class OptimizationReport:
    """Before/after shapes for the folding experiment rows."""

    original_shape: tuple[int, int]
    folded_shape: tuple[int, int]
    original_area: int
    folded_area: int
    lattice: Lattice

    @property
    def area_saving(self) -> int:
        return self.original_area - self.folded_area


def optimize_lattice(lattice: Lattice, target: TruthTable,
                     simplify: bool = True) -> OptimizationReport:
    """Run folding (and optionally site simplification) with verification."""
    folded = fold_lattice(lattice, target)
    if simplify:
        folded = simplify_sites(folded, target)
        folded = fold_lattice(folded, target)
    if not folded.implements(target):
        raise RuntimeError("optimization broke the lattice (internal bug)")
    return OptimizationReport(
        original_shape=lattice.shape,
        folded_shape=folded.shape,
        original_area=lattice.area,
        folded_area=folded.area,
        lattice=folded,
    )
