"""Synthesis flows for nano-crossbar arrays — the paper's Section III.

* two-terminal (diode / FET) SOP mapping with the Fig. 3 size formulas;
* dual-based four-terminal lattice synthesis (Fig. 5, [2],[3]);
* SAT-based exact lattice synthesis ([9]);
* P-circuit decomposition preprocessing ([5],[7]);
* D-reducible decomposition preprocessing ([4],[6]);
* lattice algebra (OR/AND padding) and post-synthesis folding ([11]).
"""

from .compose import (
    constant_lattice,
    lattice_and,
    lattice_and_many,
    lattice_or,
    lattice_or_many,
    lift_lattice,
    literal_lattice,
    pad_cols,
    pad_rows,
    product_lattice,
)
from .dreducible import (
    DReducibleLattice,
    synthesize_characteristic,
    synthesize_dreducible,
)
from .enumerate_lattices import (
    ExpressivenessRow,
    enumerate_lattice_functions,
    expressiveness,
    minimal_area_map,
)
from .lattice_dual import (
    DualSynthesisReport,
    SynthesisError,
    dual_synthesis_report,
    lattice_from_covers,
    lattice_size_formula,
    pick_shared_literal,
    synthesize_lattice_dual,
)
from .lattice_optimal import (
    OptimalSynthesisResult,
    candidate_shapes,
    encode_shape,
    synthesize_lattice_optimal,
)
from .multi_output import (
    MultiOutputDiodePlane,
    SharedPlaneReport,
    shared_plane_report,
)
from .optimize import (
    OptimizationReport,
    fold_lattice,
    optimize_lattice,
    remove_col,
    remove_row,
    simplify_sites,
)
from .pcircuit import (
    PCircuitDecomposition,
    PCircuitLattice,
    best_pcircuit,
    pcircuit_decompose,
    recompose_table,
    synthesize_pcircuit,
)
from .two_terminal import (
    TwoTerminalError,
    TwoTerminalReport,
    synthesize_diode,
    synthesize_fet,
    two_terminal_report,
)

__all__ = [
    "DReducibleLattice",
    "DualSynthesisReport",
    "ExpressivenessRow",
    "MultiOutputDiodePlane",
    "OptimalSynthesisResult",
    "SharedPlaneReport",
    "OptimizationReport",
    "PCircuitDecomposition",
    "PCircuitLattice",
    "SynthesisError",
    "TwoTerminalError",
    "TwoTerminalReport",
    "best_pcircuit",
    "candidate_shapes",
    "constant_lattice",
    "dual_synthesis_report",
    "encode_shape",
    "enumerate_lattice_functions",
    "expressiveness",
    "fold_lattice",
    "lattice_and",
    "lattice_and_many",
    "lattice_from_covers",
    "lattice_or",
    "lattice_or_many",
    "lattice_size_formula",
    "lift_lattice",
    "literal_lattice",
    "minimal_area_map",
    "synthesize_characteristic",
    "optimize_lattice",
    "pad_cols",
    "pad_rows",
    "pcircuit_decompose",
    "pick_shared_literal",
    "product_lattice",
    "recompose_table",
    "remove_col",
    "remove_row",
    "shared_plane_report",
    "simplify_sites",
    "synthesize_diode",
    "synthesize_dreducible",
    "synthesize_fet",
    "synthesize_lattice_dual",
    "synthesize_lattice_optimal",
    "synthesize_pcircuit",
    "two_terminal_report",
]
