"""P-circuit decomposition for lattice synthesis (Section III-B.1, [5],[7]).

A P-circuit decomposes ``f`` around one splitting variable ``x_i`` and
polarity ``p``::

    P-circuit(f) = (x_i = p) f^=  +  (x_i = ~p) f^!=  +  f^I

where, with ``I`` the intersection of the two cofactor on-sets,

1. ``(f|x_i=p  \\ I)  subset-of  f^=   subset-of  f|x_i=p``
2. ``(f|x_i=~p \\ I)  subset-of  f^!=  subset-of  f|x_i=~p``
3. ``empty            subset-of  f^I   subset-of  I``

The sub-functions live in the (n-1)-variable space, have smaller on-sets
than ``f``, and usually admit smaller lattices; the full lattice is
recomposed with the OR/AND padding algebra of [3].  The interval freedom in
(1)-(3) is exactly the *flexibility* of [7]: here each block is minimized
with the interval encoded as a don't-care set, and ``f^I = I`` so exactness
never depends on the block minimizer's choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..boolean.cube import Literal
from ..boolean.function import BooleanFunction
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice
from .compose import (
    lattice_and,
    lattice_or_many,
    lift_lattice,
    literal_lattice,
)
from .lattice_dual import synthesize_lattice_dual

#: A lattice synthesiser for the (n-1)-variable blocks.
BlockSynthesizer = Callable[[TruthTable], Lattice]


@dataclass(frozen=True)
class PCircuitDecomposition:
    """The three blocks of one P-circuit split.

    ``f_eq``/``f_neq`` carry their interval flexibility as (on, dc) pairs;
    ``intersection`` is the fixed ``f^I = I`` block.  All three are
    functions of the (n-1)-variable space with ``var`` removed.
    """

    var: int
    polarity: bool
    f_eq_on: TruthTable
    f_eq_dc: TruthTable
    f_neq_on: TruthTable
    f_neq_dc: TruthTable
    intersection: TruthTable

    def blocks(self) -> dict[str, TruthTable]:
        return {
            "f_eq": self.f_eq_on,
            "f_neq": self.f_neq_on,
            "f_I": self.intersection,
        }


def pcircuit_decompose(table: TruthTable, var: int,
                       polarity: bool = True) -> PCircuitDecomposition:
    """Split ``f`` on ``x_var = polarity`` into the P-circuit blocks.

    The returned blocks use the *disjoint* lower bounds as on-sets and the
    intersection ``I`` as don't-care set, matching the flexibility of [7].
    """
    if not 0 <= var < table.n:
        raise ValueError(f"variable {var} out of range")
    cof_eq = table.cofactor(var, polarity)
    cof_neq = table.cofactor(var, not polarity)
    intersection = cof_eq & cof_neq
    return PCircuitDecomposition(
        var=var,
        polarity=polarity,
        f_eq_on=cof_eq.difference(intersection),
        f_eq_dc=intersection,
        f_neq_on=cof_neq.difference(intersection),
        f_neq_dc=intersection,
        intersection=intersection,
    )


def recompose_table(dec: PCircuitDecomposition, f_eq: TruthTable,
                    f_neq: TruthTable, f_int: TruthTable) -> TruthTable:
    """Evaluate the P-circuit formula back into the n-variable space.

    Used by tests to confirm that *any* choice inside the intervals
    reconstructs ``f`` (with ``f^I = I``).
    """
    n = f_eq.n + 1
    lit_eq = TruthTable.variable(n, dec.var)
    if not dec.polarity:
        lit_eq = ~lit_eq
    expand = lambda t: _lift_table(t, dec.var)  # noqa: E731
    return (lit_eq & expand(f_eq)) | (~lit_eq & expand(f_neq)) | expand(f_int)


def _lift_table(table: TruthTable, var: int) -> TruthTable:
    """Insert an ignored variable at position ``var``."""
    import numpy as np

    n = table.n + 1
    idx = np.arange(1 << n)
    low = idx & ((1 << var) - 1)
    high = idx >> (var + 1)
    sub = low | (high << var)
    return TruthTable(n, table.values[sub])


@dataclass(frozen=True)
class PCircuitLattice:
    """Result of the decompose-synthesize-recompose flow."""

    decomposition: PCircuitDecomposition
    block_lattices: dict[str, Lattice]
    lattice: Lattice

    @property
    def area(self) -> int:
        return self.lattice.area

    @property
    def block_areas(self) -> dict[str, int]:
        return {k: v.area for k, v in self.block_lattices.items()}


def _default_block_synthesizer(table: TruthTable) -> Lattice:
    return synthesize_lattice_dual(table)


def synthesize_pcircuit(function: BooleanFunction | TruthTable, var: int,
                        polarity: bool = True,
                        block_synthesizer: BlockSynthesizer | None = None,
                        use_flexibility: bool = True,
                        verify: bool = True) -> PCircuitLattice:
    """Build the P-circuit lattice for one (var, polarity) split.

    Args:
        function: the target.
        var, polarity: the split.
        block_synthesizer: lattice engine for the (n-1)-variable blocks
            (defaults to the dual-based construction).
        use_flexibility: when True, blocks ``f^=``/``f^!=`` are minimized
            with ``I`` as don't-care (the [7] flexibility); when False the
            full cofactors are used (``f^I`` then still ``I`` — harmless).
        verify: exhaustively check the recomposed lattice.
    """
    table = function.on if isinstance(function, BooleanFunction) else function
    synth = block_synthesizer or _default_block_synthesizer
    dec = pcircuit_decompose(table, var, polarity)

    def synthesize_block(on: TruthTable, dc: TruthTable) -> Lattice:
        if use_flexibility:
            from ..boolean.minimize import minimize

            # Resolve the flexibility once, by two-level minimization, then
            # synthesize the resolved (completely specified) function.
            cover = minimize(on, dc)
            resolved = cover.to_truth_table()
            return synth(resolved)
        return synth(on | dc)

    lat_eq = synthesize_block(dec.f_eq_on, dec.f_eq_dc)
    lat_neq = synthesize_block(dec.f_neq_on, dec.f_neq_dc)
    lat_int = synth(dec.intersection)

    n = table.n
    lit_eq = Literal(var, polarity)
    lit_neq = Literal(var, not polarity)
    branch_eq = lattice_and(literal_lattice(n, lit_eq),
                            lift_lattice(lat_eq, var))
    branch_neq = lattice_and(literal_lattice(n, lit_neq),
                             lift_lattice(lat_neq, var))
    parts = [branch_eq, branch_neq]
    if not dec.intersection.is_contradiction():
        parts.append(lift_lattice(lat_int, var))
    lattice = lattice_or_many(parts)
    if verify and not lattice.implements(table):
        raise RuntimeError("P-circuit recomposition failed verification")
    return PCircuitLattice(
        decomposition=dec,
        block_lattices={"f_eq": lat_eq, "f_neq": lat_neq, "f_I": lat_int},
        lattice=lattice,
    )


def best_pcircuit(function: BooleanFunction | TruthTable,
                  block_synthesizer: BlockSynthesizer | None = None,
                  use_flexibility: bool = True) -> PCircuitLattice:
    """Try every (var, polarity) split and keep the smallest lattice."""
    table = function.on if isinstance(function, BooleanFunction) else function
    best: PCircuitLattice | None = None
    for var in range(table.n):
        for polarity in (True, False):
            candidate = synthesize_pcircuit(
                table, var, polarity,
                block_synthesizer=block_synthesizer,
                use_flexibility=use_flexibility,
            )
            if best is None or candidate.area < best.area:
                best = candidate
    if best is None:
        raise ValueError("function has no variables to split on")
    return best
