"""Two-terminal synthesis flows (Section III-A, Fig. 3).

Functions must be flattened to (minimized) SOP — factored forms and BDDs
cannot be wired on a nanoarray — and then sized by the Fig. 3 formulas:

* diode array: ``#products x (#literals + 1)``;
* FET array: ``#literals x (#products(f) + #products(f^D))``.

Both are optimal for the chosen SOP cover, so the only optimisation lever
is the cover itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boolean.function import BooleanFunction
from ..boolean.minimize import minimize
from ..boolean.truthtable import TruthTable
from ..crossbar.diode import DiodeCrossbar, diode_size_formula
from ..crossbar.fet import FetCrossbar, fet_size_formula


class TwoTerminalError(RuntimeError):
    """Raised when a flow invariant breaks (verification failure)."""


def synthesize_diode(function: BooleanFunction | TruthTable,
                     method: str = "auto", verify: bool = True) -> DiodeCrossbar:
    """Minimize and map onto a diode-resistor crossbar."""
    table = function.on if isinstance(function, BooleanFunction) else function
    cover = minimize(table, method=method)
    if cover.num_products == 0:
        raise TwoTerminalError("constant-0 function needs no diode array")
    array = DiodeCrossbar(cover)
    if verify and not array.implements(table):
        raise TwoTerminalError("diode array failed verification")
    return array


def synthesize_fet(function: BooleanFunction | TruthTable,
                   method: str = "auto", verify: bool = True) -> FetCrossbar:
    """Minimize ``f`` and ``f^D`` and map onto a complementary FET crossbar."""
    table = function.on if isinstance(function, BooleanFunction) else function
    cover = minimize(table, method=method)
    dual_cover = minimize(table.dual(), method=method)
    if cover.num_products == 0 or dual_cover.num_products == 0:
        raise TwoTerminalError("constant functions need no FET array")
    array = FetCrossbar(cover, dual_cover)
    if verify and not array.implements(table):
        raise TwoTerminalError("FET array failed verification")
    return array


@dataclass(frozen=True)
class TwoTerminalReport:
    """One Fig. 3 table row: formulas and as-built array shapes."""

    label: str
    n: int
    products: int
    dual_products: int
    distinct_literals: int
    diode_formula: tuple[int, int]
    diode_shape: tuple[int, int]
    fet_formula: tuple[int, int]
    fet_shape: tuple[int, int]

    @property
    def diode_area(self) -> int:
        return self.diode_shape[0] * self.diode_shape[1]

    @property
    def fet_area(self) -> int:
        return self.fet_shape[0] * self.fet_shape[1]


def two_terminal_report(function: BooleanFunction,
                        method: str = "auto") -> TwoTerminalReport:
    """Synthesize both two-terminal styles and collect the Fig. 3 row."""
    table = function.on
    cover = minimize(table, method=method)
    dual_cover = minimize(table.dual(), method=method)
    if cover.num_products == 0 or dual_cover.num_products == 0:
        raise TwoTerminalError("constant functions have no Fig. 3 row")
    diode = DiodeCrossbar(cover)
    fet = FetCrossbar(cover, dual_cover)
    if not diode.implements(table) or not fet.implements(table):
        raise TwoTerminalError("two-terminal arrays failed verification")
    return TwoTerminalReport(
        label=function.label or "f",
        n=function.n,
        products=cover.num_products,
        dual_products=dual_cover.num_products,
        distinct_literals=cover.num_distinct_literals,
        diode_formula=diode_size_formula(cover),
        diode_shape=diode.shape,
        fet_formula=fet_size_formula(cover, dual_cover),
        fet_shape=fet.shape,
    )
