"""Campaign reporting: yield curves, Wilson intervals, analytic checks.

Paper anchor: Section IV (manufacturing yield) and Fig. 6 — the same
quantities :mod:`repro.reliability.yield_model` derives analytically for
iid defects are cross-checked here against every campaign estimate:

* :func:`wilson_interval` — Wilson score confidence interval for the
  per-point binomial yield estimate;
* :func:`analytic_crosschecks` — per yield row, the first-moment Markov
  bound :func:`~repro.reliability.yield_model.expected_clean_squares`
  (an upper bound on the true yield) and, for ``k == N``, the exact
  :func:`~repro.reliability.yield_model.clean_placement_probability`
  (the greedy extractor finds the full array clean iff it is defect-free,
  so the Monte-Carlo rate must track it);
* :func:`render_campaign` — aligned text tables for the CLI and benches.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..eval.tables import format_table
from ..reliability.yield_model import (
    clean_placement_probability,
    expected_clean_squares,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .campaign import CampaignResult

#: z for the default 95% interval.
_Z95 = 1.959963984540054


def wilson_interval(successes: int, trials: int,
                    z: float = _Z95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the normal approximation it stays inside ``[0, 1]`` and behaves
    at the extremes (0 or ``trials`` successes) — exactly the regimes
    yield campaigns live in (near-certain recovery, near-certain loss).
    """
    if trials < 0 or not 0 <= successes <= max(trials, 0):
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = p + z2 / (2.0 * trials)
    spread = z * math.sqrt(p * (1.0 - p) / trials
                           + z2 / (4.0 * trials * trials))
    low = max(0.0, (centre - spread) / denom)
    high = min(1.0, (centre + spread) / denom)
    # The closed form hits the boundary exactly at the extremes; pin it
    # there so float noise never excludes the observed proportion.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def analytic_crosschecks(result: "CampaignResult",
                         slack: float = 0.02) -> list[dict]:
    """Check every Bernoulli-model yield row against the analytic models.

    Two checks per row (both trivially pass for non-Bernoulli models,
    where the iid analytics do not apply):

    * ``within_markov``: the Wilson lower bound must not exceed the
      first-moment bound ``min(1, E[#clean k x k])`` (Markov:
      ``P(exists) <= E[count]``) by more than ``slack``;
    * ``matches_exact`` (only for ``k == N``): the Wilson interval,
      widened by ``slack``, must contain ``(1-p)^(N^2)``.
    """
    checks = []
    for row in result.rows():
        applicable = row["model"] == "bernoulli"
        markov = min(1.0, expected_clean_squares(
            row["N"], row["k"], row["density"]))
        within_markov = (not applicable
                         or row["wilson_low"] <= markov + slack)
        exact = None
        matches_exact = True
        if applicable and row["k"] == row["N"]:
            exact = clean_placement_probability(row["N"], row["N"],
                                                row["density"])
            matches_exact = (row["wilson_low"] - slack <= exact
                             <= row["wilson_high"] + slack)
        checks.append({
            "model": row["model"],
            "N": row["N"],
            "k": row["k"],
            "density": row["density"],
            "strategy": row["strategy"],
            "mc_yield": row["yield"],
            "markov_bound": markov,
            "within_markov": within_markov,
            "exact_prob": float("nan") if exact is None else exact,
            "matches_exact": matches_exact,
        })
    return checks


def render_campaign(result: "CampaignResult") -> str:
    """Human-readable campaign report: yield, recovery, checks, stats."""
    spec = result.spec
    lines = [
        f"faultlab campaign: {len(result.estimates)} points x "
        f"{spec.trials} trials  (models={'/'.join(spec.models)}, "
        f"strategies={'/'.join(spec.strategies)}, seed={spec.seed})",
        "",
        format_table(result.rows(), title="yield (Wilson 95% CI)"),
        "",
        format_table(result.recovery_rows(),
                     title="recovered clean-k degradation"),
    ]
    checks = analytic_crosschecks(result)
    failed = [c for c in checks
              if not (c["within_markov"] and c["matches_exact"])]
    if any(c["model"] == "bernoulli" for c in checks):
        lines.append("")
        if failed:
            lines.append(f"analytic cross-checks: {len(failed)} of "
                         f"{len(checks)} rows FAILED")
            lines.append(format_table(failed, title="failing rows"))
        else:
            lines.append(f"analytic cross-checks: all {len(checks)} rows "
                         "within the Markov/exact bounds")
    lines.append("")
    lines.append(
        f"elapsed={result.elapsed:.2f}s  cache_hits={result.cache_hits}/"
        f"{len(result.estimates)} points  sampled={result.trials_sampled} "
        f"trials  throughput={result.throughput:.0f} trials/s")
    return "\n".join(lines)
