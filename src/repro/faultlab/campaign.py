"""Declarative Monte-Carlo fault-tolerance campaigns (Section IV, Figs. 5-6).

A *campaign* sweeps the paper's Section IV questions — "how large a clean
``k x k`` does an ``N x N`` crossbar recover, and with what probability?"
(Fig. 6 recovery, manufacturing yield) — over a grid of crossbar sizes,
defect densities, defect models and extraction strategies, with thousands
of sampled chips per grid point:

* :class:`CampaignSpec` — the declarative grid (``N``, ``k``, density,
  model, strategy, trial count, seed);
* :class:`CampaignPoint` — one sampled ensemble (every ``k`` threshold is
  answered from the same ensemble's recovered-``k`` histogram);
* :func:`iter_campaign` — the streaming core: expands the grid, shards
  each point's trial batches through
  :func:`repro.engine.pool.map_sharded`, persists its histogram in the
  engine's :class:`~repro.engine.store.JsonStore` keyed by
  ``(model, N, density, strategy, trials, seed, ...)`` and **yields** the
  :class:`PointEstimate` as soon as the point completes — the batch
  server streams these to clients incrementally;
* :func:`run_campaign` — drains the iterator into an aggregate
  :class:`CampaignResult`.

Determinism: each point's RNG root is a ``SeedSequence`` over the campaign
seed plus a *content* hash of the point (never its grid position), and
batch streams are spawned from that root — so a seeded campaign is
bit-reproducible between serial and pooled execution, across grid
reorderings, and across cache hits/misses.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from itertools import product

import numpy as np

from ..engine.pool import batch_sizes, iter_sharded
from ..engine.store import JsonStore
from ..obs import get_logger, log_event, metrics, tracing

_LOG = get_logger("faultlab")

_POINTS = metrics.registry()
_POINT_SECONDS = _POINTS.histogram(
    "campaign_point_seconds", "wall-clock per completed campaign grid point",
    labels={"family": "faultsim"})
_POINTS_DONE = _POINTS.counter(
    "campaign_points_total", "campaign grid points by terminal status",
    labels={"family": "faultsim", "status": "completed"})
_POINTS_CACHED = _POINTS.counter(
    "campaign_points_total", "campaign grid points by terminal status",
    labels={"family": "faultsim", "status": "cached"})
_POINTS_FAILED = _POINTS.counter(
    "campaign_points_total", "campaign grid points by terminal status",
    labels={"family": "faultsim", "status": "failed"})
from .kernels import recovered_k_batch, recovered_k_exact_batch
from .maps import bernoulli_defect_batch, clustered_defect_batch

#: Supported defect models and clean-subarray extraction strategies.
MODELS = ("bernoulli", "clustered")
STRATEGIES = ("greedy", "exact")

#: Largest N the "exact" strategy accepts (the scalar branch-and-bound's
#: documented validation regime; see ``max_clean_square_exact``).
MAX_EXACT_N = 14

#: Bump when the sampling semantics change (invalidates persisted points).
_STORE_VERSION = "v1"


@dataclass(frozen=True)
class CampaignPoint:
    """One sampled ensemble: a (model, N, density, strategy) grid point."""

    model: str
    n: int
    density: float
    strategy: str
    trials: int
    seed: int
    stuck_open_fraction: float
    batch_size: int

    def key(self) -> str:
        """Persistent-store key (content-addressed, position-free).

        ``batch_size`` is part of the key because the spawned batch
        streams — and therefore the sampled ensemble — depend on the batch
        layout; two layouts are two (equally valid) estimates.
        """
        return (f"faultlab/{_STORE_VERSION}/{self.model}/n{self.n}"
                f"/d{self.density!r}/{self.strategy}/t{self.trials}"
                f"/s{self.seed}/sof{self.stuck_open_fraction!r}"
                f"/b{self.batch_size}")

    def sampling_key(self) -> str:
        """The part of the key that determines the sampled ensemble.

        The extraction strategy is an *analysis* choice, not a sampling
        one — greedy and exact runs of the same point therefore see
        identical defect maps and are comparable trial-by-trial.
        """
        return (f"faultlab/{_STORE_VERSION}/{self.model}/n{self.n}"
                f"/d{self.density!r}/t{self.trials}/s{self.seed}"
                f"/sof{self.stuck_open_fraction!r}/b{self.batch_size}")

    def entropy(self) -> tuple[int, int]:
        """``SeedSequence`` entropy derived from content, not position."""
        digest = hashlib.sha256(self.sampling_key().encode()).digest()
        return (self.seed, int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative sweep grid for one campaign run."""

    n_values: tuple[int, ...]
    k_values: tuple[int, ...]
    densities: tuple[float, ...]
    models: tuple[str, ...] = ("bernoulli",)
    strategies: tuple[str, ...] = ("greedy",)
    trials: int = 1000
    seed: int = 0
    stuck_open_fraction: float = 0.8
    batch_size: int = 256

    def __post_init__(self) -> None:
        for name in ("n_values", "k_values", "densities", "models",
                     "strategies"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not self.n_values or not self.k_values or not self.densities:
            raise ValueError("campaign grid needs at least one N, k and "
                             "density")
        if any(n < 1 for n in self.n_values):
            raise ValueError("crossbar sizes must be positive")
        if any(k < 0 for k in self.k_values):
            raise ValueError("k thresholds must be non-negative")
        if any(not 0.0 <= d <= 1.0 for d in self.densities):
            raise ValueError("densities must be in [0, 1]")
        for model in self.models:
            if model not in MODELS:
                raise ValueError(f"unknown defect model {model!r}")
        for strategy in self.strategies:
            if strategy not in STRATEGIES:
                raise ValueError(f"unknown strategy {strategy!r}")
        if "exact" in self.strategies and max(self.n_values) > MAX_EXACT_N:
            # Beyond this the branch-and-bound extractor both explodes in
            # time and can silently fall back to a sub-optimal k when its
            # node budget trips — which would be persisted as "exact".
            raise ValueError(
                f"the 'exact' strategy is limited to N <= {MAX_EXACT_N} "
                "(the branch-and-bound validation regime); use 'greedy' "
                "for larger crossbars")
        if self.trials < 1:
            raise ValueError("trials must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if not 0.0 <= self.stuck_open_fraction <= 1.0:
            raise ValueError("stuck_open_fraction must be in [0, 1]")

    def points(self) -> list[CampaignPoint]:
        """Grid expansion; ``k`` is not sampled (thresholds share samples)."""
        return [
            CampaignPoint(model, n, density, strategy, self.trials,
                          self.seed, self.stuck_open_fraction,
                          self.batch_size)
            for model, n, density, strategy in product(
                self.models, self.n_values, self.densities, self.strategies)
        ]


@dataclass(frozen=True)
class PointEstimate:
    """Aggregated Monte-Carlo answer for one campaign point."""

    point: CampaignPoint
    #: ``k_histogram[k]`` = number of trials whose recovered clean square
    #: side was exactly ``k`` (length ``n + 1``).
    k_histogram: tuple[int, ...]
    cache_hit: bool

    @property
    def trials(self) -> int:
        return sum(self.k_histogram)

    def successes(self, k: int) -> int:
        """Trials that recovered a clean square of side >= ``k``."""
        if k <= 0:
            return self.trials
        return sum(self.k_histogram[k:])

    def yield_rate(self, k: int) -> float:
        return self.successes(k) / self.trials if self.trials else 0.0

    @property
    def mean_k(self) -> float:
        if not self.trials:
            return 0.0
        return sum(k * count for k, count in enumerate(self.k_histogram)) \
            / self.trials

    @property
    def min_k(self) -> int:
        for k, count in enumerate(self.k_histogram):
            if count:
                return k
        return 0

    @property
    def max_k(self) -> int:
        for k in range(len(self.k_histogram) - 1, -1, -1):
            if self.k_histogram[k]:
                return k
        return 0


@dataclass
class CampaignResult:
    """Everything one ``run_campaign`` call produced."""

    spec: CampaignSpec
    estimates: list[PointEstimate]
    elapsed: float = 0.0
    cache_hits: int = 0
    trials_sampled: int = 0

    def estimate(self, point: CampaignPoint) -> PointEstimate:
        for est in self.estimates:
            if est.point == point:
                return est
        raise KeyError(f"no estimate for {point}")

    def rows(self) -> list[dict]:
        """Yield-curve rows, one per (point, k) pair, with Wilson CIs."""
        from .report import wilson_interval

        rows = []
        for est in self.estimates:
            point = est.point
            for k in self.spec.k_values:
                successes = est.successes(k) if k <= point.n else 0
                low, high = wilson_interval(successes, est.trials)
                rows.append({
                    "model": point.model,
                    "N": point.n,
                    "k": k,
                    "density": point.density,
                    "strategy": point.strategy,
                    "trials": est.trials,
                    "successes": successes,
                    "yield": successes / est.trials if est.trials else 0.0,
                    "wilson_low": low,
                    "wilson_high": high,
                })
        return rows

    def recovery_rows(self) -> list[dict]:
        """Fig. 6b-style recovered-``k`` degradation rows, one per point."""
        return [{
            "model": est.point.model,
            "N": est.point.n,
            "density": est.point.density,
            "strategy": est.point.strategy,
            "trials": est.trials,
            "avg_k": est.mean_k,
            "k_over_n": est.mean_k / est.point.n,
            "min_k": est.min_k,
            "max_k": est.max_k,
        } for est in self.estimates]

    @property
    def throughput(self) -> float:
        """Freshly sampled trials per second (cache hits excluded)."""
        return self.trials_sampled / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        from .report import render_campaign

        return render_campaign(self)


# ----------------------------------------------------------------------
# The sharded runner
# ----------------------------------------------------------------------
def _point_batch_task(task: tuple) -> tuple[int, ...]:
    """Worker body: sample one trial batch, return its recovered-k histogram.

    Module-level and pure (a function of the task tuple alone) so it
    pickles across the process pool and keeps serial == pooled bit-exact.
    """
    model, n, density, strategy, stuck_open_fraction, batch_trials, seed_seq \
        = task
    gen = np.random.default_rng(seed_seq)
    if model == "bernoulli":
        batch = bernoulli_defect_batch(batch_trials, n, n, density, gen,
                                       stuck_open_fraction)
    else:
        batch = clustered_defect_batch(
            batch_trials, n, n, density, gen,
            stuck_open_fraction=stuck_open_fraction)
    if strategy == "greedy":
        ks = recovered_k_batch(batch.defective())
    else:
        ks = recovered_k_exact_batch(batch)
    return tuple(int(x) for x in np.bincount(ks, minlength=n + 1))


def _valid_payload(payload, point: CampaignPoint) -> bool:
    if not isinstance(payload, dict):
        return False
    histogram = payload.get("k_histogram")
    return (isinstance(histogram, list)
            and len(histogram) == point.n + 1
            and all(isinstance(c, int) and c >= 0 for c in histogram)
            and sum(histogram) == point.trials)


def point_from_params(params: dict) -> CampaignPoint:
    """Build one validated :class:`CampaignPoint` from a flat mapping.

    The grid front-end (:mod:`repro.grid`) speaks in per-point parameter
    dicts; this routes them through a single-point :class:`CampaignSpec`
    so every spec invariant (model/strategy names, the ``exact`` size
    ceiling, ranges) is enforced identically to ``run_campaign``.
    """
    spec = CampaignSpec(
        n_values=(int(params["n"]),),
        k_values=(0,),
        densities=(float(params["density"]),),
        models=(str(params.get("model", "bernoulli")),),
        strategies=(str(params.get("strategy", "greedy")),),
        trials=int(params.get("trials", 1000)),
        seed=int(params.get("seed", 0)),
        stuck_open_fraction=float(params.get("stuck_open_fraction", 0.8)),
        batch_size=int(params.get("batch_size", 256)),
    )
    return spec.points()[0]


def payload_for(estimate: PointEstimate) -> dict:
    """The store payload for one estimate (shared by campaigns and grid).

    Grid rows persist exactly this shape under ``point.key()``, so a grid
    sweep and ``run_campaign`` dedup against each other's results.
    """
    return {
        "k_histogram": list(estimate.k_histogram),
        "trials": estimate.point.trials,
    }


def estimate_from_payload(point: CampaignPoint, payload,
                          cache_hit: bool = True) -> PointEstimate | None:
    """Rehydrate a persisted payload, or ``None`` if it fails validation."""
    if not _valid_payload(payload, point):
        return None
    return PointEstimate(point, tuple(payload["k_histogram"]),
                         cache_hit=cache_hit)


def compute_point(point: CampaignPoint, processes: int = 1) -> PointEstimate:
    """Sample one grid point from scratch (no store probe, no persist).

    Batch seeds come from :meth:`CampaignPoint.entropy` alone, so the
    result is bit-identical wherever and however often it runs — the
    property the grid claim protocol leans on when a lease expires and a
    second worker recomputes a point.
    """
    tasks = _point_tasks(point)
    accumulator = np.zeros(point.n + 1, dtype=np.int64)
    for histogram in iter_sharded(_point_batch_task, tasks, processes):
        accumulator += np.array(histogram, dtype=np.int64)
    return PointEstimate(point, tuple(int(x) for x in accumulator),
                         cache_hit=False)


def _point_tasks(point: CampaignPoint) -> list[tuple]:
    """One worker task per seeded trial batch of this grid point."""
    root = np.random.SeedSequence(point.entropy())
    sizes = batch_sizes(point.trials, point.batch_size)
    return [
        (point.model, point.n, point.density, point.strategy,
         point.stuck_open_fraction, batch_trials, child)
        for child, batch_trials in zip(root.spawn(len(sizes)), sizes)
    ]


def iter_campaign(spec: CampaignSpec,
                  store: JsonStore | str | None = None,
                  processes: int = 1):
    """Yield one :class:`PointEstimate` per grid point as it completes.

    The streaming face of the runner: the batch server forwards each
    estimate to its clients the moment the point's trials are in, and
    every fresh point is persisted before it is yielded (an interrupted
    campaign resumes from the store).  Point order matches
    :meth:`CampaignSpec.points`.  Batch seeds are content-addressed
    (never position-based), so streamed estimates are bit-identical to
    the aggregate runner's, serial or pooled — and the pooled path keeps
    the whole grid's batches in flight at once
    (:func:`repro.engine.pool.iter_sharded`): workers sample point
    ``i+1`` while point ``i`` is being yielded.

    Args:
        store: a :class:`~repro.engine.store.JsonStore`, a path to open one
            at (closed when the iterator is exhausted), or ``None`` for no
            persistence.
        processes: worker count (``1`` = serial; results are
            bit-identical either way).
    """
    owned = isinstance(store, str)
    json_store: JsonStore | None = JsonStore(store) if owned else store
    try:
        yield from _iter_campaign(spec, json_store, processes)
    finally:
        if owned and json_store is not None:
            json_store.close()


def _iter_campaign(spec: CampaignSpec, store: JsonStore | None,
                   processes: int):
    # Plan the whole grid first (store probes are cheap reads), so one
    # shared pool can pipeline every fresh batch across points.
    plans: list[tuple[CampaignPoint, PointEstimate | None, int]] = []
    tasks: list[tuple] = []
    for point in spec.points():
        payload = store.get(point.key()) if store is not None else None
        cached_estimate = (estimate_from_payload(point, payload)
                          if payload is not None else None)
        if cached_estimate is not None:
            plans.append((point, cached_estimate, 0))
            continue
        point_tasks = _point_tasks(point)
        tasks.extend(point_tasks)
        plans.append((point, None, len(point_tasks)))

    results = iter_sharded(_point_batch_task, tasks, processes)
    for point, cached, task_count in plans:
        if cached is not None:
            _POINTS_CACHED.inc()
            yield cached
            continue
        # The span closes before the yield: it times sampling + persist,
        # not however long the consumer sits on the estimate.
        with tracing.span("faultlab.point", key=point.key()):
            point_start = time.perf_counter()
            try:
                accumulator = np.zeros(point.n + 1, dtype=np.int64)
                for _ in range(task_count):
                    accumulator += np.array(next(results), dtype=np.int64)
                estimate = PointEstimate(
                    point, tuple(int(x) for x in accumulator),
                    cache_hit=False)
                if store is not None:
                    store.put(point.key(), payload_for(estimate))
            except Exception:
                _POINTS_FAILED.inc()
                raise
            point_seconds = time.perf_counter() - point_start
            _POINT_SECONDS.observe(point_seconds)
            _POINTS_DONE.inc()
            log_event(_LOG, "point done", key=point.key(),
                      trials=point.trials,
                      seconds=round(point_seconds, 6))
        yield estimate


def run_campaign(spec: CampaignSpec,
                 store: JsonStore | str | None = None,
                 processes: int = 1) -> CampaignResult:
    """Run a whole campaign through :func:`iter_campaign` and aggregate."""
    start = time.perf_counter()
    estimates = list(iter_campaign(spec, store, processes))
    return CampaignResult(
        spec=spec,
        estimates=estimates,
        elapsed=time.perf_counter() - start,
        cache_hits=sum(1 for est in estimates if est.cache_hit),
        trials_sampled=sum(est.point.trials for est in estimates
                           if not est.cache_hit),
    )
