"""Vectorized Monte-Carlo fault-tolerance campaigns (Section IV at scale).

:mod:`repro.reliability` models one chip at a time with per-crosspoint
dicts and scalar RNG loops; this package turns the paper's Section IV
experiments into *campaigns* — declarative sweeps over crossbar size,
defect density, defect model and extraction strategy, evaluated as NumPy
kernels over whole trial ensembles and sharded across the
:mod:`repro.engine` worker pool with estimates persisted in the engine's
JSON store.

API -> paper map:

* :mod:`repro.faultlab.maps` — batched defect-map ensembles and their
  Bernoulli / clustered generators (Section IV defect regimes; the local
  density variation motivating hybrid BISM and Fig. 6's per-chip flow);
* :mod:`repro.faultlab.kernels` — vectorized clean-subarray extraction
  (Fig. 6 / Section IV-C), clean-``k`` feasibility (manufacturing yield),
  and defect-aware placement checks (Section IV-B self-mapping), each
  validated against its scalar :mod:`repro.reliability` reference;
* :mod:`repro.faultlab.campaign` — ``CampaignSpec`` grids, the sharded
  runner and persisted ``PointEstimate`` histograms (Fig. 6b recovery
  curves and the Section IV yield story, at ensemble scale);
* :mod:`repro.faultlab.report` — yield curves with Wilson intervals and
  cross-checks against the analytic
  :mod:`repro.reliability.yield_model` bounds.

Quickstart::

    from repro.faultlab import CampaignSpec, run_campaign

    spec = CampaignSpec(n_values=(32,), k_values=(24, 28, 32),
                        densities=(0.01, 0.05, 0.1), trials=1000)
    result = run_campaign(spec, store="campaigns.sqlite", processes=4)
    print(result.render())

The same sweep is available from the shell as ``nanoxbar faultsim``.
"""

from ..xbareval.placement import (
    SITE_CONST0,
    SITE_CONST1,
    SITE_LITERAL,
)
from .campaign import (
    MAX_EXACT_N,
    MODELS,
    STRATEGIES,
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    PointEstimate,
    iter_campaign,
    run_campaign,
)
from .kernels import (
    clean_feasibility_batch,
    greedy_clean_subarray_batch,
    map_lattice_random_batch,
    placement_valid_batch,
    recovered_k_batch,
    recovered_k_exact_batch,
    sample_line_subsets,
    target_site_codes,
)
from .maps import (
    OK,
    STUCK_CLOSED,
    STUCK_OPEN,
    DefectBatch,
    bernoulli_defect_batch,
    clustered_defect_batch,
    spawn_streams,
)
from .report import analytic_crosschecks, render_campaign, wilson_interval

__all__ = [
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "DefectBatch",
    "MAX_EXACT_N",
    "MODELS",
    "OK",
    "PointEstimate",
    "SITE_CONST0",
    "SITE_CONST1",
    "SITE_LITERAL",
    "STRATEGIES",
    "STUCK_CLOSED",
    "STUCK_OPEN",
    "analytic_crosschecks",
    "bernoulli_defect_batch",
    "clean_feasibility_batch",
    "clustered_defect_batch",
    "greedy_clean_subarray_batch",
    "iter_campaign",
    "map_lattice_random_batch",
    "placement_valid_batch",
    "recovered_k_batch",
    "recovered_k_exact_batch",
    "render_campaign",
    "run_campaign",
    "sample_line_subsets",
    "spawn_streams",
    "target_site_codes",
    "wilson_interval",
]
