"""Vectorized fault-tolerance kernels operating on whole trial batches.

Paper anchors:

* **Fig. 6 / Section IV-C** — clean-subarray recovery: the greedy
  worst-line-elimination extractor of
  :func:`repro.reliability.defect_unaware.greedy_clean_subarray`, run for
  every trial of a :class:`~repro.faultlab.maps.DefectBatch` at once and
  **bit-exact** against the scalar reference (both sides break ties toward
  the lowest-numbered line);
* **Section IV (manufacturing yield)** — clean-``k`` feasibility over the
  ensemble, the quantity behind
  :func:`repro.reliability.yield_model.monte_carlo_yield`;
* **Section IV-B (self-mapping)** — batched placement-validity and random
  mapping-success checks against defective fabrics, the vectorized
  counterparts of :func:`repro.reliability.lattice_mapping.placement_valid`
  and :func:`repro.reliability.lattice_mapping.map_lattice_random`.

All kernels take plain ``numpy`` arrays: a ``(trials, rows, cols)`` uint8
state tensor (codes of :mod:`repro.faultlab.maps`) or its boolean
defectiveness mask.
"""

from __future__ import annotations

import numpy as np

from ..crossbar.lattice import Lattice
from ..xbareval import placement_valid_batch as _placement_valid_batch
from ..xbareval.placement import lattice_site_codes
from .maps import DefectBatch


# ----------------------------------------------------------------------
# Clean-subarray extraction (Fig. 6)
# ----------------------------------------------------------------------
def greedy_clean_subarray_batch(defective: np.ndarray
                                ) -> tuple[np.ndarray, np.ndarray]:
    """Worst-line elimination + re-insertion for every trial at once.

    Args:
        defective: boolean ``(trials, rows, cols)`` defectiveness mask.

    Returns:
        ``(row_mask, col_mask)`` boolean selections of shape
        ``(trials, rows)`` / ``(trials, cols)`` — per trial identical to
        the scalar
        :func:`~repro.reliability.defect_unaware.greedy_clean_subarray`
        (same worst-line choices, same tie-breaks, same re-insertion).
    """
    if defective.ndim != 3:
        raise ValueError("defectiveness mask must be 3-D (trials, rows, cols)")
    defective = np.ascontiguousarray(defective, dtype=bool)
    trials, rows, cols = defective.shape
    row_alive = np.ones((trials, rows), dtype=bool)
    col_alive = np.ones((trials, cols), dtype=bool)
    # Live-defect counts per line, maintained incrementally: one elimination
    # step costs O(active * (rows + cols)) instead of re-reducing the whole
    # (trials, rows, cols) tensor.
    row_counts = defective.sum(axis=2, dtype=np.int64)
    col_counts = defective.sum(axis=1, dtype=np.int64)
    n_rows = np.full(trials, rows, dtype=np.int64)
    n_cols = np.full(trials, cols, dtype=np.int64)
    remaining = row_counts.sum(axis=1)
    active = np.nonzero(remaining > 0)[0]
    while active.size:
        rc = row_counts[active]
        cc = col_counts[active]
        # argmax picks the lowest index among equal maxima — the scalar
        # tie-break contract.  Active trials always have a live defect, so
        # the argmax line is alive.
        worst_row = rc.argmax(axis=1)
        worst_col = cc.argmax(axis=1)
        max_row = np.take_along_axis(rc, worst_row[:, None], axis=1)[:, 0]
        max_col = np.take_along_axis(cc, worst_col[:, None], axis=1)[:, 0]
        balance_row = n_rows[active] - n_cols[active]
        # Lexicographic (count, balance) comparison: remove the row unless
        # the column strictly wins.
        remove_row = (max_row > max_col) | (
            (max_row == max_col) & (balance_row >= -balance_row))
        rm_t = active[remove_row]
        rm_r = worst_row[remove_row]
        row_alive[rm_t, rm_r] = False
        n_rows[rm_t] -= 1
        remaining[rm_t] -= row_counts[rm_t, rm_r]
        col_counts[rm_t] -= defective[rm_t, rm_r, :] & col_alive[rm_t]
        row_counts[rm_t, rm_r] = 0
        cm_t = active[~remove_row]
        cm_c = worst_col[~remove_row]
        col_alive[cm_t, cm_c] = False
        n_cols[cm_t] -= 1
        remaining[cm_t] -= col_counts[cm_t, cm_c]
        row_counts[cm_t] -= defective[cm_t, :, cm_c] & row_alive[cm_t]
        col_counts[cm_t, cm_c] = 0
        active = active[remaining[active] > 0]
    # Re-insertion: a removed line is re-added when it is clean w.r.t. the
    # surviving perpendicular selection.  Row re-insertions cannot create
    # row conflicts (the check only reads columns) so the whole pass is two
    # masked reductions — columns are checked against the *updated* rows,
    # matching the scalar order.
    row_conflict = (defective & col_alive[:, None, :]).any(axis=2)
    row_alive |= ~row_conflict
    col_conflict = (defective & row_alive[:, :, None]).any(axis=1)
    col_alive |= ~col_conflict
    return row_alive, col_alive


def recovered_k_batch(defective: np.ndarray) -> np.ndarray:
    """Greedy recovered clean-square side ``k`` per trial, shape ``(trials,)``."""
    row_alive, col_alive = greedy_clean_subarray_batch(defective)
    return np.minimum(row_alive.sum(axis=1), col_alive.sum(axis=1))


def recovered_k_exact_batch(batch: DefectBatch) -> np.ndarray:
    """Exact recovered ``k`` per trial via the scalar branch-and-bound.

    Not vectorized (the search is exponential and per-map); provided so
    campaigns can run the validation-grade ``"exact"`` strategy through
    the same batched interface, and so tests can bound the greedy kernel.
    """
    from ..reliability.defect_unaware import max_clean_square_exact

    return np.array([
        max_clean_square_exact(defect_map).k
        for defect_map in batch.iter_defect_maps()
    ], dtype=np.int64)


def clean_feasibility_batch(defective: np.ndarray, k: int) -> np.ndarray:
    """Per-trial "recovers a clean ``k x k``" flags (greedy lower bound)."""
    return recovered_k_batch(defective) >= k


# ----------------------------------------------------------------------
# Defect-aware mapping checks (Section IV-B)
# ----------------------------------------------------------------------
def target_site_codes(target: Lattice) -> np.ndarray:
    """Encode a target lattice's sites for the mapping kernels.

    Thin alias of :func:`repro.xbareval.lattice_site_codes` (the encoding
    moved into the evaluation core); kept so campaign code keeps one
    import site.
    """
    return lattice_site_codes(target)


def placement_valid_batch(states: np.ndarray, codes: np.ndarray,
                          row_maps: np.ndarray,
                          col_maps: np.ndarray) -> np.ndarray:
    """Validity of one placement per trial, shape ``(trials,)``.

    Delegates to :func:`repro.xbareval.placement_valid_batch`; per trial
    identical to the scalar
    :func:`repro.reliability.lattice_mapping.placement_valid`: every target
    site must land on a compatible fabric site, and no selected row may
    carry a stuck-closed site on an unused column (a permanently
    conducting stray bridge).
    """
    return _placement_valid_batch(states, codes, row_maps, col_maps)


def sample_line_subsets(gen: np.random.Generator, trials: int, n: int,
                        k: int) -> np.ndarray:
    """``(trials, k)`` sorted uniform ``k``-subsets of ``range(n)``.

    Sorted selections preserve relative line order — the same constraint
    the scalar mapper obeys (paths cross rows in order).
    """
    if k > n:
        raise ValueError("cannot draw more lines than the fabric has")
    scores = gen.random((trials, n))
    picks = np.argsort(scores, axis=1, kind="stable")[:, :k]
    return np.sort(picks, axis=1)


def map_lattice_random_batch(states: np.ndarray, codes: np.ndarray,
                             gen: np.random.Generator,
                             max_trials: int = 500
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Blind random placement search for every fabric of a batch at once.

    The batched counterpart of
    :func:`repro.reliability.lattice_mapping.map_lattice_random`: up to
    ``max_trials`` order-preserving random placements per fabric, stopping
    per trial at the first valid one.  Placements are drawn for the whole
    batch each attempt (already-mapped trials' draws are discarded), which
    keeps the stream layout-independent.

    Returns:
        ``(success, attempts)`` arrays of shape ``(trials,)``; ``attempts``
        is the 1-based attempt index that succeeded, or ``max_trials`` for
        failures — the same accounting as the scalar result's ``trials``.
    """
    trials, rows, cols = states.shape
    t_rows, t_cols = codes.shape
    if t_rows > rows or t_cols > cols:
        raise ValueError("target lattice larger than the fabric")
    success = np.zeros(trials, dtype=bool)
    attempts = np.full(trials, max_trials, dtype=np.int64)
    for attempt in range(1, max_trials + 1):
        if success.all():
            break
        row_maps = sample_line_subsets(gen, trials, rows, t_rows)
        col_maps = sample_line_subsets(gen, trials, cols, t_cols)
        valid = placement_valid_batch(states, codes, row_maps, col_maps)
        newly = valid & ~success
        attempts[newly] = attempt
        success |= valid
    return success, attempts
