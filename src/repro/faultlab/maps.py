"""Batched defect maps for Monte-Carlo fault-tolerance campaigns.

Paper anchor: Section IV (defect tolerance) — the defect regimes whose
scalar, one-chip-at-a-time models live in :mod:`repro.reliability.defects`.
Here a whole *ensemble* of crossbars is one dense ``(trials, rows, cols)``
``uint8`` tensor so the Section IV questions (Fig. 6 recovery, yield) can
be answered for thousands of sampled chips per NumPy kernel call:

* :class:`DefectBatch` — the tensor plus conversions to/from the scalar
  :class:`~repro.reliability.defects.DefectMap`;
* :func:`bernoulli_defect_batch` — iid Bernoulli defects (global density),
  the batched analogue of
  :func:`~repro.reliability.defects.random_defect_map`;
* :func:`clustered_defect_batch` — Poisson cluster centres with Gaussian
  spread (local density variation), the batched analogue of
  :func:`~repro.reliability.defects.clustered_defect_map`;
* :func:`spawn_streams` — ``SeedSequence``-spawned independent per-worker
  ``numpy.random.Generator`` streams.

State codes match :data:`repro.reliability.defects.STATE_TO_CODE`:
``0`` OK, ``1`` stuck-open, ``2`` stuck-closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..reliability.defects import (
    CODE_TO_STATE,
    STATE_TO_CODE,
    CrosspointState,
    DefectMap,
)

#: Numeric crosspoint states of the batch tensor.
OK = 0
STUCK_OPEN = STATE_TO_CODE[CrosspointState.STUCK_OPEN]
STUCK_CLOSED = STATE_TO_CODE[CrosspointState.STUCK_CLOSED]


@dataclass(frozen=True)
class DefectBatch:
    """An ensemble of same-sized defect maps as one dense uint8 tensor."""

    states: np.ndarray  # (trials, rows, cols) uint8, values in {0, 1, 2}

    def __post_init__(self) -> None:
        if self.states.ndim != 3:
            raise ValueError("defect batch tensor must be 3-D "
                             "(trials, rows, cols)")
        if self.states.dtype != np.uint8:
            raise ValueError("defect batch tensor must be uint8")
        if self.states.size and int(self.states.max()) > STUCK_CLOSED:
            raise ValueError("defect batch contains unknown state codes")

    # -- shape ------------------------------------------------------------
    @property
    def trials(self) -> int:
        return int(self.states.shape[0])

    @property
    def rows(self) -> int:
        return int(self.states.shape[1])

    @property
    def cols(self) -> int:
        return int(self.states.shape[2])

    # -- views ------------------------------------------------------------
    def defective(self) -> np.ndarray:
        """Boolean ``(trials, rows, cols)`` mask of non-OK crosspoints."""
        return self.states != OK

    def densities(self) -> np.ndarray:
        """Observed defect density per trial, shape ``(trials,)``."""
        if self.rows * self.cols == 0:
            return np.zeros(self.trials)
        return self.defective().mean(axis=(1, 2))

    def packed_bits(self) -> np.ndarray:
        """Bit-packed defectiveness mask, ``(trials, ceil(rows*cols/8))``.

        The compact form used when a whole ensemble crosses a process
        boundary and only cleanliness (not the open/closed split) matters.
        """
        flat = self.defective().reshape(self.trials, -1)
        return np.packbits(flat, axis=1)

    # -- conversions to/from the scalar reference model -------------------
    def to_defect_map(self, trial: int) -> DefectMap:
        """Materialise one trial as a scalar (dict-based) ``DefectMap``."""
        grid = self.states[trial]
        defects = {
            (int(r), int(c)): CODE_TO_STATE[int(grid[r, c])]
            for r, c in zip(*np.nonzero(grid))
        }
        return DefectMap(self.rows, self.cols, defects)

    def iter_defect_maps(self) -> Iterable[DefectMap]:
        for trial in range(self.trials):
            yield self.to_defect_map(trial)

    @staticmethod
    def from_defect_maps(maps: Sequence[DefectMap]) -> "DefectBatch":
        """Stack same-sized scalar maps into one batch tensor."""
        if not maps:
            raise ValueError("cannot build a batch from zero maps")
        rows, cols = maps[0].rows, maps[0].cols
        states = np.zeros((len(maps), rows, cols), dtype=np.uint8)
        for t, defect_map in enumerate(maps):
            if (defect_map.rows, defect_map.cols) != (rows, cols):
                raise ValueError("all maps in a batch must share one shape")
            for (r, c), state in defect_map.defects.items():
                states[t, r, c] = STATE_TO_CODE[state]
        return DefectBatch(states)


# ----------------------------------------------------------------------
# Seeding
# ----------------------------------------------------------------------
def spawn_streams(entropy: int | Sequence[int],
                  count: int) -> list[np.random.Generator]:
    """``count`` independent generators from one ``SeedSequence`` root.

    The campaign runner hands each worker batch its own spawned stream, so
    results are independent of how batches are interleaved across the pool
    (serial and pooled runs see identical streams).
    """
    root = np.random.SeedSequence(entropy)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def _validate(trials: int, rows: int, cols: int, density: float,
              stuck_open_fraction: float) -> None:
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if rows < 0 or cols < 0:
        raise ValueError("rows and cols must be non-negative")
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    if not 0.0 <= stuck_open_fraction <= 1.0:
        raise ValueError("stuck_open_fraction must be in [0, 1]")


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def bernoulli_defect_batch(trials: int, rows: int, cols: int, density: float,
                           gen: np.random.Generator,
                           stuck_open_fraction: float = 0.8) -> DefectBatch:
    """Independent Bernoulli defects for a whole ensemble in two draws.

    Distribution-equivalent to ``trials`` calls of
    :func:`~repro.reliability.defects.random_defect_map`: each crosspoint
    is defective with probability ``density``, and a defect is stuck-open
    with probability ``stuck_open_fraction``.  A single uniform draw
    decides both: ``u < density`` marks the defect and — since ``u`` is
    then uniform on ``[0, density)`` — ``u < density * stuck_open_fraction``
    splits opens from closeds with the right conditional probability.
    """
    _validate(trials, rows, cols, density, stuck_open_fraction)
    u = gen.random((trials, rows, cols))
    states = np.where(
        u < density * stuck_open_fraction,
        np.uint8(STUCK_OPEN),
        np.where(u < density, np.uint8(STUCK_CLOSED), np.uint8(OK)),
    )
    return DefectBatch(states)


def clustered_defect_batch(trials: int, rows: int, cols: int, density: float,
                           gen: np.random.Generator,
                           cluster_radius: float = 1.5,
                           stuck_open_fraction: float = 0.8) -> DefectBatch:
    """Clustered defects, batched: Poisson centres with Gaussian spread.

    Distribution-equivalent to ``trials`` calls of
    :func:`~repro.reliability.defects.clustered_defect_map`: per trial,
    ``num_clusters`` uniform centres each attempt an
    ``Exp(defects_per_cluster)``-sized burst of Gaussian-offset defects;
    attempts that fall outside the crossbar or on an already-defective
    crosspoint are skipped, and placements stop once the per-trial budget
    ``round(density * rows * cols)`` is reached — exactly the scalar
    semantics, evaluated for all trials at once.
    """
    _validate(trials, rows, cols, density, stuck_open_fraction)
    states = np.zeros((trials, rows, cols), dtype=np.uint8)
    target = density * rows * cols
    budget = round(target)
    defects_per_cluster = max(2.0, cluster_radius * 2)
    num_clusters = max(1, round(target / defects_per_cluster)) if target > 0 else 0
    if trials == 0 or budget <= 0 or num_clusters == 0:
        return DefectBatch(states)

    # Per-cluster attempt counts.  The cap only bounds the dense attempt
    # tensor: it sits at the ~2e-9 tail of the exponential, so unlike a
    # budget-sized cap it does not starve small-budget regimes of the
    # retry attempts the scalar generator gets (out-of-bounds/duplicate
    # attempts consume no budget on either side).
    attempt_cap = max(16, round(defects_per_cluster * 20))
    sizes = np.maximum(
        1, np.rint(gen.exponential(defects_per_cluster,
                                   size=(trials, num_clusters))))
    sizes = np.minimum(sizes, attempt_cap).astype(np.int64)
    max_size = int(sizes.max())

    centre_r = gen.uniform(0, rows - 1, size=(trials, num_clusters))
    centre_c = gen.uniform(0, cols - 1, size=(trials, num_clusters))
    attempt_shape = (trials, num_clusters, max_size)
    r = np.rint(centre_r[..., None]
                + gen.normal(0.0, cluster_radius, size=attempt_shape))
    c = np.rint(centre_c[..., None]
                + gen.normal(0.0, cluster_radius, size=attempt_shape))
    opens = gen.random(attempt_shape) < stuck_open_fraction

    # Flatten to (trials, attempts) in cluster-major attempt order — the
    # order the scalar generator visits them in.
    attempts = num_clusters * max_size
    live = np.arange(max_size)[None, None, :] < sizes[..., None]
    in_bounds = (r >= 0) & (r < rows) & (c >= 0) & (c < cols)
    valid = (live & in_bounds).reshape(trials, attempts)
    flat = (np.clip(r, 0, max(rows - 1, 0)) * cols
            + np.clip(c, 0, max(cols - 1, 0))).astype(np.int64)
    flat = flat.reshape(trials, attempts)
    opens = opens.reshape(trials, attempts)

    # Order-preserving dedup per trial: among valid attempts on the same
    # crosspoint only the first places a defect (scalar "skip duplicates").
    order = np.broadcast_to(np.arange(attempts), (trials, attempts))
    trial_ids = np.broadcast_to(np.arange(trials)[:, None], (trials, attempts))
    # Invalid attempts are pushed to a sentinel bucket so they never shadow
    # a valid first occurrence.
    key = np.where(valid, flat, rows * cols)
    perm = np.lexsort((order.ravel(), key.ravel(), trial_ids.ravel()))
    sorted_trials = trial_ids.ravel()[perm]
    sorted_key = key.ravel()[perm]
    first = np.ones(trials * attempts, dtype=bool)
    first[1:] = (sorted_trials[1:] != sorted_trials[:-1]) | \
                (sorted_key[1:] != sorted_key[:-1])
    keep = np.empty(trials * attempts, dtype=bool)
    keep[perm] = first
    keep = keep.reshape(trials, attempts) & valid

    # Budget: the scalar loop stops placing once `budget` defects landed;
    # duplicates and out-of-bounds attempts never consume budget.
    rank = np.cumsum(keep, axis=1)
    place = keep & (rank <= budget)

    t_idx, a_idx = np.nonzero(place)
    codes = np.where(opens[t_idx, a_idx], STUCK_OPEN,
                     STUCK_CLOSED).astype(np.uint8)
    states.reshape(trials, -1)[t_idx, flat[t_idx, a_idx]] = codes
    return DefectBatch(states)
