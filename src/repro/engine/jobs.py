"""Declarative batch-synthesis jobs and their results.

A :class:`SynthesisJob` is a plain, hashable, picklable description of one
synthesis request: the target function (packed truth-table bits), which
strategies of the portfolio to race, and optional fault-tolerance
post-processing (defect-aware mapping onto a random fabric, TMR).  Jobs
deliberately carry *no* live objects — they cross process boundaries in the
sharded pool and act as deduplication units, so everything is value-like.

A :class:`JobResult` records the winning lattice plus enough provenance to
audit the run: which strategy won, every strategy's outcome, whether the
answer came from the persistent NPN cache, and the fault-tolerance report
when one was requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..boolean.function import BooleanFunction
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice

#: Portfolio strategy order (also the tie-break order: earlier wins ties).
DEFAULT_STRATEGIES = ("dual", "dreducible", "pcircuit", "optimal")


@dataclass(frozen=True)
class FaultToleranceSpec:
    """Optional reliability post-processing for a job.

    When ``defect_density > 0`` the winning lattice is mapped onto a random
    defective fabric (:mod:`repro.reliability.lattice_mapping`); when
    ``redundancy == "tmr"`` the lattice is additionally tripled through the
    majority-voter lattice (:mod:`repro.reliability.redundancy`).  ``seed``
    makes the whole post-processing deterministic.
    """

    defect_density: float = 0.0
    fabric_rows: int = 8
    fabric_cols: int = 8
    mapping_trials: int = 200
    redundancy: str = "none"  # "none" | "tmr"
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.defect_density < 1.0:
            raise ValueError("defect_density must be in [0, 1)")
        if self.redundancy not in ("none", "tmr"):
            raise ValueError(f"unknown redundancy {self.redundancy!r}")


@dataclass(frozen=True)
class FaultToleranceReport:
    """What the reliability post-processing observed."""

    mapped: bool = False
    mapping_trials: int = 0
    exploited_defects: int = 0
    tmr_area: int = 0


@dataclass(frozen=True)
class SynthesisJob:
    """One batch-synthesis request (value semantics, picklable)."""

    label: str
    n: int
    bits: int
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    fault_tolerance: FaultToleranceSpec | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("jobs need at least one variable")
        if self.bits < 0 or self.bits >> (1 << self.n):
            raise ValueError(f"truth-table bits out of range for n={self.n}")
        if not self.strategies:
            raise ValueError("a job must name at least one strategy")

    @staticmethod
    def from_function(function: BooleanFunction | TruthTable,
                      label: str = "",
                      strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
                      fault_tolerance: FaultToleranceSpec | None = None
                      ) -> "SynthesisJob":
        """Build a job from a live function object (don't-cares read as 0)."""
        if isinstance(function, BooleanFunction):
            table = function.on
            label = label or function.label or "f"
        else:
            table = function
            label = label or "f"
        return SynthesisJob(
            label=label,
            n=table.n,
            bits=table.bits,
            strategies=tuple(strategies),
            fault_tolerance=fault_tolerance,
        )

    @property
    def table(self) -> TruthTable:
        """Rehydrate the dense truth table."""
        return TruthTable.from_bits(self.n, self.bits)


@dataclass(frozen=True)
class StrategyOutcome:
    """What one portfolio strategy did for one function.

    ``status`` is ``"ok"`` (produced a verified lattice), ``"skipped"``
    (deterministic effort gate declined to run it), ``"not-applicable"``
    (e.g. a non-D-reducible function in the D-reducible flow),
    ``"failed"`` (the flow raised), or ``"preempted"`` (a raced portfolio
    killed it after the incumbent provably sealed the race).  ``area`` is
    -1 unless ``status == "ok"``.
    """

    strategy: str
    status: str
    area: int = -1
    shape: tuple[int, int] = (0, 0)
    elapsed: float = 0.0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class JobResult:
    """The engine's answer for one job.

    ``elapsed`` covers the per-job tail work only (witness rewrite,
    verification, fault-tolerance post-processing); the portfolio races
    run batched and deduplicated across jobs, so their cost lives in
    ``outcomes[*].elapsed`` and the engine-level ``EngineStats.elapsed``.
    """

    label: str
    n: int
    strategy: str
    lattice: Lattice
    cache_hit: bool
    elapsed: float = 0.0
    outcomes: tuple[StrategyOutcome, ...] = field(default_factory=tuple)
    fault_tolerance: FaultToleranceReport | None = None

    @property
    def area(self) -> int:
        return self.lattice.area

    @property
    def shape(self) -> tuple[int, int]:
        return self.lattice.shape
