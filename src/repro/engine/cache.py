"""Persistent NPN-canonical result store (SQLite-backed).

Lattice synthesis cost is invariant under input permutation and input
negation (literals are free in both polarities on a crossbar), and a
lattice for the complement is a distinct but equally cacheable object.  The
cache therefore keys results by the **NPN-canonical form** of the target
function plus a *polarity slot*:

* ``canonical_cache_key`` maps a truth table to its NPN canonical
  representative ``c`` and the witness :class:`~repro.boolean.npn.NpnTransform`
  ``t`` with ``c(x) = f(sigma_t(x)) ^ t.output_negate``;
* the stored lattice implements the *canonical-polarity* function
  ``g = c ^ t.output_negate`` — i.e. ``g(x) = f(sigma_t(x))`` — so a hit is
  rewritten back to the original ``f`` by the **input-only** literal
  substitution of :func:`transform_lattice_from_canonical` (no lattice
  complementation is ever needed);
* functions with more than :data:`MAX_NPN_VARS` variables use the
  ``O(n 2^n)`` **semi-canonical** witness of
  :func:`repro.boolean.npn.npn_semicanonical` (exact NPN canonicalisation
  is exponential in ``n``): class members still share a key whenever the
  invariant decisions are tie-free, and because the key is the content
  hash of the *full* representative table — which the store also keeps
  verbatim in the ``gtable`` column and re-checks on every probe — a key
  collision between distinct functions can never surface a wrong hit.
  Up to n = 6 the pruned packed-uint64 search of
  :func:`repro.boolean.npn.npn_canonical` keeps exact class-level keys
  affordable.

Key texts are the :meth:`~repro.boolean.truthtable.TruthTable.content_hash`
of the keyed table (the packed-bit wire format of ``TruthTable.to_bytes``),
not ad-hoc hex packing — the same content-addressing scheme ``DefectMap``
uses in the faultlab store.

Every rewritten lattice is re-verified against the requesting function by
the engine, so a stale or corrupted cache can never produce a wrong
answer — only a slower one.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from functools import lru_cache

from ..boolean.cube import Literal
from ..boolean.npn import NpnTransform, npn_canonical, npn_semicanonical
from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice, Site
from .jobs import StrategyOutcome

#: Largest n with exact NPN-canonical cache keys.  The pruned
#: packed-uint64 search (:func:`repro.boolean.npn.npn_canonical`) makes
#: n = 6 affordable; beyond that the semi-canonical witness keeps
#: class-level sharing alive (splitting a class on invariant ties, never
#: merging two).
MAX_NPN_VARS = 6


# ----------------------------------------------------------------------
# Canonical keys and witness transforms
# ----------------------------------------------------------------------
def identity_transform(n: int) -> NpnTransform:
    return NpnTransform(tuple(range(n)), 0, False)


def canonical_cache_key(table: TruthTable,
                        max_npn_vars: int = MAX_NPN_VARS
                        ) -> tuple[str, NpnTransform]:
    """The cache key text for ``table`` plus the witness transform.

    For ``n <= max_npn_vars`` the key is the content hash of the exact
    NPN canonical representative; beyond that the semi-canonical
    representative's hash keys the class — still a real witness
    transform, so hits rewrite across class members, but a tie in the
    invariant statistics may split a class across keys (never merge two
    distinct functions under one: the key hashes the full table).
    """
    return _canonical_from_bits(table.n, table.bits, max_npn_vars)


@lru_cache(maxsize=1 << 14)
def _canonical_from_bits(n: int, bits: int, max_npn_vars: int
                         ) -> tuple[str, NpnTransform]:
    # Canonicalisation is the warm-path bottleneck, so memoise per packed
    # table.
    table = TruthTable.from_bits(n, bits)
    if n <= max_npn_vars:
        canonical, transform = npn_canonical(table)
    else:
        canonical, transform = npn_semicanonical(table)
    return canonical.content_hash(), transform


def canonical_polarity_table(table: TruthTable,
                             transform: NpnTransform) -> TruthTable:
    """The canonical-polarity function ``g`` with ``g(x) = f(sigma(x))``.

    ``g`` equals the canonical representative when the witness has no
    output negation, and its complement otherwise; either way ``g`` is
    reachable from ``f`` by input transforms alone, which is what makes the
    stored lattice rewritable without complementation.
    """
    from ..boolean.npn import apply_transform

    canonical = apply_transform(table, transform)
    return ~canonical if transform.output_negate else canonical


def _map_sites(lattice: Lattice, mapping) -> Lattice:
    return lattice.map_sites(
        lambda r, c, site: mapping(site) if isinstance(site, Literal) else site
    )


def transform_lattice_to_canonical(lattice: Lattice,
                                   transform: NpnTransform) -> Lattice:
    """Rewrite a lattice for ``f`` into one for ``g(x) = f(sigma(x))``.

    With ``sigma(x)[perm[i]] = x[i] ^ neg[perm[i]]``, a site reading
    ``f``-input ``v`` becomes a site reading ``g``-input ``perm^-1(v)``
    with polarity flipped when ``neg[v]`` is set.
    """
    inverse = [0] * len(transform.permutation)
    for new_var, old_var in enumerate(transform.permutation):
        inverse[old_var] = new_var
    neg = transform.input_negation_mask

    def remap(site: Literal) -> Literal:
        flip = bool((neg >> site.var) & 1)
        return Literal(inverse[site.var], site.positive ^ flip)

    return _map_sites(lattice, remap)


def transform_lattice_from_canonical(lattice: Lattice,
                                     transform: NpnTransform) -> Lattice:
    """Rewrite a cached lattice for ``g`` back into one for the original ``f``.

    Inverse of :func:`transform_lattice_to_canonical`: ``f(y) =
    g(sigma^-1(y))`` and ``sigma^-1(y)[i] = y[perm[i]] ^ neg[perm[i]]``.
    """
    perm = transform.permutation
    neg = transform.input_negation_mask

    def remap(site: Literal) -> Literal:
        old_var = perm[site.var]
        flip = bool((neg >> old_var) & 1)
        return Literal(old_var, site.positive ^ flip)

    return _map_sites(lattice, remap)


# ----------------------------------------------------------------------
# Lattice serialisation (compact, human-greppable)
# ----------------------------------------------------------------------
def _site_token(site: Site) -> str:
    if site is True:
        return "1"
    if site is False:
        return "0"
    return f"{'p' if site.positive else 'n'}{site.var}"


def _site_from_token(token: str) -> Site:
    if token == "1":
        return True
    if token == "0":
        return False
    return Literal(int(token[1:]), token[0] == "p")


def lattice_to_text(lattice: Lattice) -> str:
    """Serialise as rows of space-separated site tokens."""
    return "\n".join(" ".join(_site_token(s) for s in row)
                     for row in lattice.sites)


def lattice_from_text(n: int, text: str) -> Lattice:
    return Lattice(n, [[_site_from_token(tok) for tok in line.split()]
                       for line in text.splitlines()])


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CachedResult:
    """One persisted portfolio answer (for the canonical-polarity function).

    ``table`` carries the full canonical-polarity truth table when the
    entry was keyed semi-canonically (``n > MAX_NPN_VARS``): the store
    persists it verbatim so a probe can prove the hit is for the *same*
    function, not merely the same key.  Exact-keyed entries leave it
    ``None`` (the exact canonical form already is the function).
    """

    strategy: str
    lattice: Lattice
    outcomes: tuple[StrategyOutcome, ...]
    table: TruthTable | None = None

    @property
    def area(self) -> int:
        return self.lattice.area


def _outcomes_to_json(outcomes: tuple[StrategyOutcome, ...]) -> str:
    return json.dumps([
        {"strategy": o.strategy, "status": o.status, "area": o.area,
         "shape": list(o.shape), "elapsed": o.elapsed, "detail": o.detail}
        for o in outcomes
    ])


def _outcomes_from_json(text: str) -> tuple[StrategyOutcome, ...]:
    return tuple(
        StrategyOutcome(
            strategy=o["strategy"], status=o["status"], area=o["area"],
            shape=tuple(o["shape"]), elapsed=o["elapsed"], detail=o["detail"],
        )
        for o in json.loads(text)
    )


class ResultCache:
    """SQLite-backed map ``(n, canonical key, config) -> CachedResult``.

    ``path=":memory:"`` gives a process-local ephemeral cache with the same
    interface.  The ``config`` column fingerprints the portfolio
    configuration so differently-configured runs never cross-contaminate.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS results (
        n        INTEGER NOT NULL,
        canon    TEXT    NOT NULL,
        polarity INTEGER NOT NULL,
        config   TEXT    NOT NULL,
        strategy TEXT    NOT NULL,
        area     INTEGER NOT NULL,
        lattice  TEXT    NOT NULL,
        outcomes TEXT    NOT NULL,
        created  REAL    NOT NULL,
        gtable   TEXT,
        PRIMARY KEY (n, canon, polarity, config)
    )
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        # check_same_thread=False + RLock: the BatchEngine's non-blocking
        # submit path runs batches on a dedicated executor thread while
        # other threads (e.g. the server's stats endpoint) may probe the
        # same connection; every statement takes the lock.
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        with self._lock:
            self._conn.execute(self._SCHEMA)
            # Migrate pre-semicanonical stores in place: the nullable
            # gtable column (hex of TruthTable.to_bytes for wide-n
            # entries) is simply absent there.
            columns = {row[1] for row in self._conn.execute(
                "PRAGMA table_info(results)")}
            if "gtable" not in columns:
                self._conn.execute(
                    "ALTER TABLE results ADD COLUMN gtable TEXT")
            self._conn.commit()

    # -- mapping interface ------------------------------------------------
    def get(self, n: int, canon: str, polarity: bool,
            config: str) -> CachedResult | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT strategy, lattice, outcomes, gtable FROM results"
                " WHERE n = ? AND canon = ? AND polarity = ? AND config = ?",
                (n, canon, int(polarity), config),
            ).fetchone()
        if row is None:
            return None
        strategy, lattice_text, outcomes_text, gtable_text = row
        try:
            return CachedResult(
                strategy=strategy,
                lattice=lattice_from_text(n, lattice_text),
                outcomes=_outcomes_from_json(outcomes_text),
                table=(TruthTable.from_bytes(bytes.fromhex(gtable_text))
                       if gtable_text else None),
            )
        except (ValueError, TypeError, KeyError, IndexError,
                json.JSONDecodeError):
            # An unparseable row reads as a miss: the engine re-races and
            # overwrites it (corruption costs time, never correctness).
            return None

    def put(self, n: int, canon: str, polarity: bool, config: str,
            result: CachedResult) -> None:
        self.put_many([(n, canon, polarity, config, result)])

    def put_many(self, entries: list[tuple[int, str, bool, str, CachedResult]]
                 ) -> None:
        """Persist a batch of entries in a single transaction/fsync."""
        now = time.time()
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO results"
                " (n, canon, polarity, config,"
                "  strategy, area, lattice, outcomes, created, gtable)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(n, canon, int(polarity), config, result.strategy,
                  result.area, lattice_to_text(result.lattice),
                  _outcomes_to_json(result.outcomes), now,
                  result.table.to_bytes().hex()
                  if result.table is not None else None)
                 for n, canon, polarity, config, result in entries],
            )
            self._conn.commit()

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results")
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
