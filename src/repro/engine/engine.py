"""The :class:`BatchEngine` facade: cache-probe, dedupe, shard, rewrite.

The pipeline for ``run(jobs)``:

1. **Canonicalise** every job's function and probe the persistent cache
   (:mod:`repro.engine.cache`) under the portfolio-config fingerprint.
2. **Dedupe** the misses by canonical key — one portfolio race per NPN
   class per batch, however many jobs land in it.
3. **Shard** the unique races across the worker pool
   (:mod:`repro.engine.pool`); workers synthesise the canonical-polarity
   function, so their results are directly storable.
4. **Rewrite** each cached/computed canonical lattice back to the job's
   original function through the stored NPN witness, re-verify it against
   the job's truth table, and run any requested fault-tolerance
   post-processing (defect-aware mapping, TMR) with a per-job seed.

Workers are pure functions of their task tuples and all tie-breaks are
deterministic, so serial and pooled runs return bit-identical results.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Iterable, Sequence

from ..boolean.npn import NpnTransform
from ..boolean.truthtable import TruthTable
from ..xbareval import implements_table
from .cache import (
    CachedResult,
    ResultCache,
    canonical_cache_key,
    canonical_polarity_table,
    transform_lattice_from_canonical,
)
from .jobs import (
    FaultToleranceReport,
    FaultToleranceSpec,
    JobResult,
    SynthesisJob,
)
from .pool import default_processes, map_sharded
from .portfolio import PortfolioConfig, run_portfolio


@dataclass
class EngineStats:
    """Aggregate accounting for one or more ``run`` calls."""

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    races_run: int = 0
    deduped: int = 0
    elapsed: float = 0.0
    strategy_wins: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0

    @property
    def throughput(self) -> float:
        """Functions per second over the accounted runs."""
        return self.jobs / self.elapsed if self.elapsed > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot (the server's ``/api/stats`` payload)."""
        return {
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "races_run": self.races_run,
            "deduped": self.deduped,
            "elapsed": self.elapsed,
            "hit_rate": self.hit_rate,
            "throughput": self.throughput,
            "strategy_wins": dict(sorted(self.strategy_wins.items())),
        }

    def render(self) -> str:
        wins = ", ".join(f"{name}:{count}"
                         for name, count in sorted(self.strategy_wins.items()))
        return (
            f"jobs={self.jobs}  hits={self.cache_hits}  "
            f"misses={self.cache_misses}  races={self.races_run}  "
            f"deduped={self.deduped}  hit_rate={self.hit_rate:.1%}  "
            f"throughput={self.throughput:.2f} fn/s\n"
            f"strategy wins: {wins or '-'}"
        )


def _race_task(task: tuple[str, int, int, tuple[str, ...]],
               config: PortfolioConfig) -> tuple[str, CachedResult]:
    """Worker body: run one portfolio race on a canonical-polarity function.

    Module-level (and driven through ``functools.partial``) so it pickles
    across the process pool.
    """
    canon, n, bits, strategies = task
    table = TruthTable.from_bits(n, bits)
    outcome = run_portfolio(table, strategies, config)
    return canon, CachedResult(
        strategy=outcome.strategy,
        lattice=outcome.lattice,
        outcomes=outcome.outcomes,
    )


def _fault_tolerance_report(lattice, spec: FaultToleranceSpec,
                            job: SynthesisJob) -> FaultToleranceReport:
    """Deterministic reliability post-processing for one job.

    The RNG stream is derived from the spec's seed plus the *job content*
    (not its batch position), so the same benchmark under the same seed
    sees the same fabric regardless of which other jobs ran alongside it.
    """
    from ..reliability.defects import random_defect_map
    from ..reliability.lattice_mapping import map_lattice_random
    from ..reliability.redundancy import make_tmr

    mapped = False
    trials = 0
    exploited = 0
    if spec.defect_density > 0:
        content = zlib.crc32(f"{job.n}/{job.bits}/{job.label}".encode())
        rng = random.Random((spec.seed << 32) ^ content)
        fabric_rows = max(spec.fabric_rows, lattice.rows)
        fabric_cols = max(spec.fabric_cols, lattice.cols)
        defect_map = random_defect_map(fabric_rows, fabric_cols,
                                       spec.defect_density, rng)
        result = map_lattice_random(lattice, defect_map, rng,
                                    max_trials=spec.mapping_trials)
        mapped = result.success
        trials = result.trials
        exploited = result.exploited_defects
    tmr_area = make_tmr(lattice).area if spec.redundancy == "tmr" else 0
    return FaultToleranceReport(
        mapped=mapped,
        mapping_trials=trials,
        exploited_defects=exploited,
        tmr_area=tmr_area,
    )


class BatchEngine:
    """Parallel batch synthesis with a persistent NPN-canonical cache.

    Args:
        cache_path: SQLite file for the result store (``":memory:"`` for an
            ephemeral per-engine cache).
        processes: worker count for the sharded pool; ``1`` runs serially
            and ``None`` picks :func:`~repro.engine.pool.default_processes`.
        config: deterministic portfolio knobs (shared by every job).
    """

    def __init__(self, cache_path: str = ":memory:",
                 processes: int | None = 1,
                 config: PortfolioConfig | None = None):
        self.cache = ResultCache(cache_path)
        self.processes = default_processes() if processes is None else processes
        self.config = config or PortfolioConfig()
        self.stats = EngineStats()
        self._run_lock = threading.RLock()
        # Eagerly constructed (the worker thread itself only spawns on
        # first submit), so concurrent first submissions cannot race a
        # lazy check-then-set into two executors.
        self._submit_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="batch-engine")

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        self._submit_executor.shutdown(wait=True)
        self.cache.close()

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the batch pipeline ----------------------------------------------
    def submit(self, jobs: Sequence[SynthesisJob] | Iterable[SynthesisJob]
               ) -> "Future[list[JobResult]]":
        """Non-blocking submission: queue a batch, get a ``Future`` back.

        Batches are serialised through a single dedicated worker thread
        (they already shard internally over the process pool, so stacking
        batch-level threads on top would only contend on the cache
        connection).  Callers — the async server's worker bridge first
        among them — can await the future off their event loop while
        further submissions queue behind it.
        """
        return self._submit_executor.submit(self.run, list(jobs))

    def run(self, jobs: Sequence[SynthesisJob] | Iterable[SynthesisJob]
            ) -> list[JobResult]:
        """Synthesize every job, reusing the cache and the pool."""
        with self._run_lock:
            return self._run(list(jobs))

    def _run(self, jobs: list[SynthesisJob]) -> list[JobResult]:
        start = time.perf_counter()

        # Phase 1: canonicalise + probe the cache.  The NPN canonical key
        # is shared by a function and its complement-reachable classmates,
        # so the *polarity* of the witness (its output negation) is part of
        # the slot: each class stores up to two lattices, one per polarity.
        keys: list[tuple[str, NpnTransform]] = []
        probed: list[CachedResult | None] = []
        tasks: dict[str, tuple[str, int, int, tuple[str, ...]]] = {}
        task_keys: list[str] = []
        deduped = 0
        for job in jobs:
            table = job.table
            canon, transform = canonical_cache_key(table)
            config_fp = self.config.fingerprint(job.strategies)
            polarity = transform.output_negate
            keys.append((canon, transform))
            cached = self.cache.get(job.n, canon, polarity, config_fp)
            probed.append(cached)
            task_key = f"{job.n}/{canon}/{int(polarity)}/{config_fp}"
            task_keys.append(task_key)
            if cached is None:
                if task_key in tasks:
                    deduped += 1
                else:
                    g_table = canonical_polarity_table(table, transform)
                    tasks[task_key] = (task_key, job.n, g_table.bits,
                                      job.strategies)

        # Phase 2+3: race the unique misses across the pool, then persist
        # the whole wave in one transaction.
        worker = partial(_race_task, config=self.config)
        raced = dict(map_sharded(worker, list(tasks.values()), self.processes))
        self.cache.put_many([
            (int(n), canon, polarity == "1", config_fp, result)
            for task_key, result in raced.items()
            for n, canon, polarity, config_fp in [task_key.split("/", 3)]
        ])

        # Phase 4: rewrite each canonical answer back to its job.
        results: list[JobResult] = []
        healed: dict[str, CachedResult] = {}
        for index, (job, (canon, transform), cached) in enumerate(
                zip(jobs, keys, probed)):
            job_start = time.perf_counter()
            hit = cached is not None
            if cached is None:
                cached = raced.get(task_keys[index])
            if cached is None:  # pragma: no cover - phase 2 guarantees presence
                raise RuntimeError(f"cache lost the result for {job.label}")
            table = job.table
            lattice = transform_lattice_from_canonical(cached.lattice,
                                                       transform)
            if not implements_table(lattice, table):
                if not hit:
                    raise RuntimeError(
                        f"freshly-raced lattice for {job.label!r} failed "
                        "the witness-rewrite verification (engine bug)")
                # A corrupted persistent entry costs time, never
                # correctness: re-race this class and overwrite the row.
                cached = healed.get(task_keys[index])
                if cached is None:
                    g_table = canonical_polarity_table(table, transform)
                    _, cached = _race_task(
                        (task_keys[index], job.n, g_table.bits,
                         job.strategies),
                        self.config)
                    n, canon_text, polarity, config_fp = \
                        task_keys[index].split("/", 3)
                    self.cache.put(int(n), canon_text, polarity == "1",
                                   config_fp, cached)
                    healed[task_keys[index]] = cached
                hit = False
                lattice = transform_lattice_from_canonical(cached.lattice,
                                                           transform)
                if not implements_table(lattice, table):  # pragma: no cover
                    raise RuntimeError(
                        f"re-raced lattice for {job.label!r} still fails "
                        "verification (engine bug)")
            report = None
            if job.fault_tolerance is not None:
                report = _fault_tolerance_report(lattice, job.fault_tolerance,
                                                 job)
            results.append(JobResult(
                label=job.label,
                n=job.n,
                strategy=cached.strategy,
                lattice=lattice,
                cache_hit=hit,
                elapsed=time.perf_counter() - job_start,
                outcomes=cached.outcomes,
                fault_tolerance=report,
            ))

        # Accounting.
        elapsed = time.perf_counter() - start
        hits = sum(1 for result in results if result.cache_hit)
        self.stats.jobs += len(jobs)
        self.stats.cache_hits += hits
        self.stats.cache_misses += len(jobs) - hits
        self.stats.races_run += len(tasks) + len(healed)
        self.stats.deduped += deduped
        self.stats.elapsed += elapsed
        for result in results:
            self.stats.strategy_wins[result.strategy] = (
                self.stats.strategy_wins.get(result.strategy, 0) + 1)
        return results

    def report(self) -> str:
        """Human-readable throughput / cache summary."""
        mode = "serial" if self.processes <= 1 else f"{self.processes} workers"
        return (f"BatchEngine [{mode}, cache={self.cache.path}, "
                f"{len(self.cache)} entries]\n" + self.stats.render())
