"""The :class:`BatchEngine` facade: cache-probe, dedupe, shard, rewrite.

The pipeline for ``run(jobs)``:

1. **Canonicalise** every job's function and probe the persistent cache
   (:mod:`repro.engine.cache`) under the portfolio-config fingerprint.
2. **Dedupe** the misses by canonical key — one portfolio race per NPN
   class per batch, however many jobs land in it.
3. **Shard** the unique races across the worker pool
   (:mod:`repro.engine.pool`); workers synthesise the canonical-polarity
   function, so their results are directly storable.
4. **Rewrite** each cached/computed canonical lattice back to the job's
   original function through the stored NPN witness, re-verify it against
   the job's truth table, and run any requested fault-tolerance
   post-processing (defect-aware mapping, TMR) with a per-job seed.

Workers are pure functions of their task tuples and all tie-breaks are
deterministic, so serial and pooled runs return bit-identical results.
"""

from __future__ import annotations

import contextvars
import random
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Iterable, Sequence

from ..boolean.npn import NpnTransform
from ..boolean.truthtable import TruthTable
from ..obs import get_logger, log_event, metrics, tracing
from ..xbareval import implements_table
from .cache import (
    MAX_NPN_VARS,
    CachedResult,
    ResultCache,
    canonical_cache_key,
    canonical_polarity_table,
    transform_lattice_from_canonical,
)
from .jobs import (
    FaultToleranceReport,
    FaultToleranceSpec,
    JobResult,
    SynthesisJob,
)
from .pool import default_processes, map_sharded
from .portfolio import PortfolioConfig, run_portfolio, run_portfolio_raced

_LOG = get_logger("engine")


@dataclass
class EngineStats:
    """Aggregate accounting for one or more ``run`` calls.

    Accumulation and snapshotting are atomic under an internal lock:
    ``run`` calls record a whole batch in one :meth:`record_run`, and
    ``as_dict`` (the server's ``/api/stats`` payload, read from another
    thread while batches from ``submit()`` futures land) never observes
    a half-applied batch.  ``strategy_wins`` is kept key-sorted, so
    snapshot order is deterministic however runs interleave.
    """

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    races_run: int = 0
    deduped: int = 0
    elapsed: float = 0.0
    strategy_wins: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_run(self, jobs: int, cache_hits: int, races_run: int,
                   deduped: int, elapsed: float,
                   strategy_wins: dict[str, int]) -> None:
        """Fold one batch's accounting in as a single atomic step."""
        with self._lock:
            self.jobs += jobs
            self.cache_hits += cache_hits
            self.cache_misses += jobs - cache_hits
            self.races_run += races_run
            self.deduped += deduped
            self.elapsed += elapsed
            merged = dict(self.strategy_wins)
            for name, count in strategy_wins.items():
                merged[name] = merged.get(name, 0) + count
            self.strategy_wins = {name: merged[name]
                                  for name in sorted(merged)}

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0

    @property
    def throughput(self) -> float:
        """Functions per second over the accounted runs."""
        return self.jobs / self.elapsed if self.elapsed > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot (the server's ``/api/stats`` payload)."""
        with self._lock:
            jobs, hits = self.jobs, self.cache_hits
            return {
                "jobs": jobs,
                "cache_hits": hits,
                "cache_misses": self.cache_misses,
                "races_run": self.races_run,
                "deduped": self.deduped,
                "elapsed": self.elapsed,
                "hit_rate": hits / jobs if jobs else 0.0,
                "throughput": jobs / self.elapsed if self.elapsed > 0
                else 0.0,
                "strategy_wins": dict(sorted(self.strategy_wins.items())),
            }

    def render(self) -> str:
        snapshot = self.as_dict()
        wins = ", ".join(f"{name}:{count}"
                         for name, count in snapshot["strategy_wins"].items())
        return (
            f"jobs={snapshot['jobs']}  hits={snapshot['cache_hits']}  "
            f"misses={snapshot['cache_misses']}  "
            f"races={snapshot['races_run']}  "
            f"deduped={snapshot['deduped']}  "
            f"hit_rate={snapshot['hit_rate']:.1%}  "
            f"throughput={snapshot['throughput']:.2f} fn/s\n"
            f"strategy wins: {wins or '-'}"
        )


def _race_task(task: tuple[str, int, int, tuple[str, ...]],
               config: PortfolioConfig) -> tuple[str, CachedResult]:
    """Worker body: run one portfolio race on a canonical-polarity function.

    Module-level (and driven through ``functools.partial``) so it pickles
    across the process pool.
    """
    canon, n, bits, strategies = task
    table = TruthTable.from_bits(n, bits)
    # Raced mode degrades to serial by itself inside daemonic pool
    # workers; the verdict is identical either way.
    race = run_portfolio_raced if config.preempt else run_portfolio
    outcome = race(table, strategies, config)
    return canon, CachedResult(
        strategy=outcome.strategy,
        lattice=outcome.lattice,
        outcomes=outcome.outcomes,
        # Semi-canonically keyed entries (n > MAX_NPN_VARS) persist the
        # full synthesised table so probes can prove a hit is for the
        # same function; exact keys don't need the extra bytes.
        table=table if n > MAX_NPN_VARS else None,
    )


def _fault_tolerance_report(lattice, spec: FaultToleranceSpec,
                            job: SynthesisJob) -> FaultToleranceReport:
    """Deterministic reliability post-processing for one job.

    The RNG stream is derived from the spec's seed plus the *job content*
    (not its batch position), so the same benchmark under the same seed
    sees the same fabric regardless of which other jobs ran alongside it.
    """
    from ..reliability.defects import random_defect_map
    from ..reliability.lattice_mapping import map_lattice_random
    from ..reliability.redundancy import make_tmr

    mapped = False
    trials = 0
    exploited = 0
    if spec.defect_density > 0:
        content = zlib.crc32(f"{job.n}/{job.bits}/{job.label}".encode())
        rng = random.Random((spec.seed << 32) ^ content)
        fabric_rows = max(spec.fabric_rows, lattice.rows)
        fabric_cols = max(spec.fabric_cols, lattice.cols)
        defect_map = random_defect_map(fabric_rows, fabric_cols,
                                       spec.defect_density, rng)
        result = map_lattice_random(lattice, defect_map, rng,
                                    max_trials=spec.mapping_trials)
        mapped = result.success
        trials = result.trials
        exploited = result.exploited_defects
    tmr_area = make_tmr(lattice).area if spec.redundancy == "tmr" else 0
    return FaultToleranceReport(
        mapped=mapped,
        mapping_trials=trials,
        exploited_defects=exploited,
        tmr_area=tmr_area,
    )


class BatchEngine:
    """Parallel batch synthesis with a persistent NPN-canonical cache.

    Args:
        cache_path: SQLite file for the result store (``":memory:"`` for an
            ephemeral per-engine cache).
        processes: worker count for the sharded pool; ``1`` runs serially
            and ``None`` picks :func:`~repro.engine.pool.default_processes`.
        config: deterministic portfolio knobs (shared by every job).
    """

    def __init__(self, cache_path: str = ":memory:",
                 processes: int | None = 1,
                 config: PortfolioConfig | None = None):
        self.cache = ResultCache(cache_path)
        self.processes = default_processes() if processes is None else processes
        self.config = config or PortfolioConfig()
        self.stats = EngineStats()
        self._run_lock = threading.RLock()
        registry = metrics.registry()
        self._m_jobs = registry.counter(
            "engine_jobs_total", "synthesis jobs processed")
        self._m_hits = registry.counter(
            "engine_cache_hits_total", "jobs answered from the NPN cache")
        self._m_misses = registry.counter(
            "engine_cache_misses_total", "jobs that needed a portfolio race")
        self._m_deduped = registry.counter(
            "engine_dedup_total", "in-batch duplicate jobs folded away")
        self._m_races = registry.counter(
            "engine_races_total", "portfolio races executed")
        self._m_batch_seconds = registry.histogram(
            "engine_batch_seconds", "wall-clock of whole engine.run batches")
        # Eagerly constructed (the worker thread itself only spawns on
        # first submit), so concurrent first submissions cannot race a
        # lazy check-then-set into two executors.
        self._submit_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="batch-engine")

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        self._submit_executor.shutdown(wait=True)
        self.cache.close()

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the batch pipeline ----------------------------------------------
    def submit(self, jobs: Sequence[SynthesisJob] | Iterable[SynthesisJob]
               ) -> "Future[list[JobResult]]":
        """Non-blocking submission: queue a batch, get a ``Future`` back.

        Batches are serialised through a single dedicated worker thread
        (they already shard internally over the process pool, so stacking
        batch-level threads on top would only contend on the cache
        connection).  Callers — the async server's worker bridge first
        among them — can await the future off their event loop while
        further submissions queue behind it.

        The caller's context (most importantly the ambient trace ID) is
        copied onto the batch thread, so engine spans stay inside the
        submitting request's trace.
        """
        context = contextvars.copy_context()
        return self._submit_executor.submit(context.run, self.run,
                                            list(jobs))

    def run(self, jobs: Sequence[SynthesisJob] | Iterable[SynthesisJob]
            ) -> list[JobResult]:
        """Synthesize every job, reusing the cache and the pool."""
        with self._run_lock:
            return self._run(list(jobs))

    def _run(self, jobs: list[SynthesisJob]) -> list[JobResult]:
        with tracing.span("engine.run_batch", jobs=len(jobs)):
            return self._run_spanned(jobs)

    def _run_spanned(self, jobs: list[SynthesisJob]) -> list[JobResult]:
        start = time.perf_counter()

        # Phase 1: canonicalise + probe the cache.  The NPN canonical key
        # is shared by a function and its complement-reachable classmates,
        # so the *polarity* of the witness (its output negation) is part of
        # the slot: each class stores up to two lattices, one per polarity.
        keys: list[tuple[str, NpnTransform]] = []
        probed: list[CachedResult | None] = []
        tasks: dict[str, tuple[str, int, int, tuple[str, ...]]] = {}
        task_keys: list[str] = []
        deduped = 0
        with tracing.span("engine.cache_probe", jobs=len(jobs)):
            for job in jobs:
                table = job.table
                canon, transform = canonical_cache_key(table)
                config_fp = self.config.fingerprint(job.strategies)
                polarity = transform.output_negate
                keys.append((canon, transform))
                cached = self.cache.get(job.n, canon, polarity, config_fp)
                if cached is not None and cached.table is not None:
                    # Semi-canonical keys hash the full representative, so
                    # a collision cannot happen in practice — but the
                    # stored table makes the guarantee unconditional: a
                    # mismatched entry reads as a miss, never a wrong hit.
                    if cached.table != canonical_polarity_table(table,
                                                               transform):
                        cached = None
                probed.append(cached)
                task_key = f"{job.n}/{canon}/{int(polarity)}/{config_fp}"
                task_keys.append(task_key)
                if cached is None:
                    if task_key in tasks:
                        deduped += 1
                    else:
                        g_table = canonical_polarity_table(table, transform)
                        tasks[task_key] = (task_key, job.n, g_table.bits,
                                          job.strategies)

        # Phase 2+3: race the unique misses across the pool, then persist
        # the whole wave in one transaction.
        worker = partial(_race_task, config=self.config)
        with tracing.span("engine.race", tasks=len(tasks)):
            raced = dict(map_sharded(worker, list(tasks.values()),
                                     self.processes))
        for result in raced.values():
            self._observe_race(result)
        self.cache.put_many([
            (int(n), canon, polarity == "1", config_fp, result)
            for task_key, result in raced.items()
            for n, canon, polarity, config_fp in [task_key.split("/", 3)]
        ])

        # Phase 4: rewrite each canonical answer back to its job.
        with tracing.span("engine.rewrite", jobs=len(jobs)):
            results, healed = self._rewrite_phase(jobs, keys, probed, raced,
                                                  task_keys)

        # Accounting: one atomic fold into the shared stats, mirrored to
        # the metrics registry (counters are independently atomic; scrape
        # consistency across them is best-effort by design).
        elapsed = time.perf_counter() - start
        hits = sum(1 for result in results if result.cache_hit)
        wins: dict[str, int] = {}
        for result in results:
            wins[result.strategy] = wins.get(result.strategy, 0) + 1
        self.stats.record_run(len(jobs), hits, len(tasks) + len(healed),
                              deduped, elapsed, wins)
        self._m_jobs.inc(len(jobs))
        self._m_hits.inc(hits)
        self._m_misses.inc(len(jobs) - hits)
        self._m_races.inc(len(tasks) + len(healed))
        self._m_deduped.inc(deduped)
        self._m_batch_seconds.observe(elapsed)
        registry = metrics.registry()
        for name, count in wins.items():
            registry.counter(
                "engine_strategy_wins_total",
                "jobs whose winning lattice came from this strategy",
                labels={"strategy": name},
            ).inc(count)
        log_event(_LOG, "batch complete", jobs=len(jobs), cache_hits=hits,
                  races=len(tasks) + len(healed), deduped=deduped,
                  seconds=round(elapsed, 6))
        return results

    def _observe_race(self, result: CachedResult) -> None:
        """Record per-strategy latency/outcome metrics for one fresh race.

        Only freshly raced results flow through here — cache hits replay
        persisted :class:`StrategyOutcome` rows whose elapsed times were
        already observed when they were first computed.
        """
        registry = metrics.registry()
        for outcome in result.outcomes:
            registry.counter(
                "engine_strategy_outcomes_total",
                "portfolio strategy attempts by terminal status",
                labels={"strategy": outcome.strategy,
                        "status": outcome.status},
            ).inc()
            registry.histogram(
                "engine_strategy_seconds",
                "per-strategy synthesis latency inside portfolio races",
                labels={"strategy": outcome.strategy},
            ).observe(outcome.elapsed)

    def _rewrite_phase(
        self,
        jobs: list[SynthesisJob],
        keys: list[tuple[str, NpnTransform]],
        probed: list[CachedResult | None],
        raced: dict[str, CachedResult],
        task_keys: list[str],
    ) -> tuple[list[JobResult], dict[str, CachedResult]]:
        results: list[JobResult] = []
        healed: dict[str, CachedResult] = {}
        for index, (job, (_canon, transform), cached) in enumerate(
                zip(jobs, keys, probed)):
            job_start = time.perf_counter()
            hit = cached is not None
            if cached is None:
                cached = raced.get(task_keys[index])
            if cached is None:  # pragma: no cover - phase 2 guarantees presence
                raise RuntimeError(f"cache lost the result for {job.label}")
            table = job.table
            lattice = transform_lattice_from_canonical(cached.lattice,
                                                       transform)
            if not implements_table(lattice, table):
                if not hit:
                    raise RuntimeError(
                        f"freshly-raced lattice for {job.label!r} failed "
                        "the witness-rewrite verification (engine bug)")
                # A corrupted persistent entry costs time, never
                # correctness: re-race this class and overwrite the row.
                cached = healed.get(task_keys[index])
                if cached is None:
                    g_table = canonical_polarity_table(table, transform)
                    _, cached = _race_task(
                        (task_keys[index], job.n, g_table.bits,
                         job.strategies),
                        self.config)
                    n, canon_text, polarity, config_fp = \
                        task_keys[index].split("/", 3)
                    self.cache.put(int(n), canon_text, polarity == "1",
                                   config_fp, cached)
                    healed[task_keys[index]] = cached
                    self._observe_race(cached)
                hit = False
                lattice = transform_lattice_from_canonical(cached.lattice,
                                                           transform)
                if not implements_table(lattice, table):  # pragma: no cover
                    raise RuntimeError(
                        f"re-raced lattice for {job.label!r} still fails "
                        "verification (engine bug)")
            report = None
            if job.fault_tolerance is not None:
                report = _fault_tolerance_report(lattice, job.fault_tolerance,
                                                 job)
            results.append(JobResult(
                label=job.label,
                n=job.n,
                strategy=cached.strategy,
                lattice=lattice,
                cache_hit=hit,
                elapsed=time.perf_counter() - job_start,
                outcomes=cached.outcomes,
                fault_tolerance=report,
            ))

        return results, healed

    def report(self) -> str:
        """Human-readable throughput / cache summary."""
        mode = "serial" if self.processes <= 1 else f"{self.processes} workers"
        return (f"BatchEngine [{mode}, cache={self.cache.path}, "
                f"{len(self.cache)} entries]\n" + self.stats.render())
