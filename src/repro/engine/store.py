"""Generic persisted JSON store for non-synthesis job families.

The synthesis path keys lattices by NPN-canonical form
(:mod:`repro.engine.cache`); other batched workloads — first among them the
Monte-Carlo fault-tolerance campaigns of :mod:`repro.faultlab` — need the
same durability with free-form keys and JSON payloads.  :class:`JsonStore`
gives them one table with the cache layer's conventions:

* SQLite-backed, ``":memory:"`` for an ephemeral per-process store;
* writes batched into single transactions (``put_many``);
* unparseable rows read as misses, so corruption costs recompute time,
  never correctness.

Both stores can share one SQLite file: they own distinct tables, so a
single ``results.sqlite`` can hold the synthesis cache *and* every
campaign estimate.
"""

from __future__ import annotations

import json
import sqlite3
import time
from typing import Any


class JsonStore:
    """SQLite-backed ``key -> JSON payload`` map with batched writes."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS json_store (
        key     TEXT NOT NULL PRIMARY KEY,
        payload TEXT NOT NULL,
        created REAL NOT NULL
    )
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute(self._SCHEMA)
        self._conn.commit()

    # -- mapping interface ------------------------------------------------
    def get(self, key: str) -> Any | None:
        row = self._conn.execute(
            "SELECT payload FROM json_store WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except (TypeError, json.JSONDecodeError):
            # An unparseable row reads as a miss; the caller recomputes and
            # overwrites it.
            return None

    def put(self, key: str, payload: Any) -> None:
        self.put_many([(key, payload)])

    def put_many(self, entries: list[tuple[str, Any]]) -> None:
        """Persist a batch of entries in a single transaction/fsync."""
        now = time.time()
        self._conn.executemany(
            "INSERT OR REPLACE INTO json_store (key, payload, created)"
            " VALUES (?, ?, ?)",
            [(key, json.dumps(payload, sort_keys=True), now)
             for key, payload in entries],
        )
        self._conn.commit()

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM json_store").fetchone()
        return int(count)

    def clear(self) -> None:
        self._conn.execute("DELETE FROM json_store")
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JsonStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
