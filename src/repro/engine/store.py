"""Generic persisted JSON store + claimable experiment-grid rows.

The synthesis path keys lattices by NPN-canonical form
(:mod:`repro.engine.cache`); other batched workloads — first among them the
Monte-Carlo fault-tolerance campaigns of :mod:`repro.faultlab` — need the
same durability with free-form keys and JSON payloads.  :class:`JsonStore`
gives them one table with the cache layer's conventions:

* SQLite-backed, ``":memory:"`` for an ephemeral per-process store;
* writes batched into single transactions (``put_many``);
* unparseable rows read as misses, so corruption costs recompute time,
  never correctness.

Both stores can share one SQLite file: they own distinct tables, so a
single ``results.sqlite`` can hold the synthesis cache *and* every
campaign estimate.

The same file also carries the **experiment-grid rows** that
:mod:`repro.grid` materialises: each grid point is one row in a
``grid_rows`` table moving through the claim protocol ::

    pending -> claimed(worker, lease_deadline)
            -> done(result, timestamps) | failed(error, attempts)

Many workers — threads, processes, or hosts sharing the file — pull rows
through :meth:`JsonStore.grid_claim`; a crashed worker's lease expires and
its row returns to the pool (bounded by ``max_attempts``).  Claims take a
single ``BEGIN IMMEDIATE`` transaction: contention is waited out inside
SQLite's busy handler (a blocking OS-level wait), never by a Python
sleep/retry spin.

Concurrency contract (the async server's handlers and pool shards persist
points against one shared store):

* every write is **atomic** — SQLite's transaction machinery stages each
  commit in a side journal and publishes it with an atomic rename-style
  page swap (the database-level equivalent of write-temp + ``os.replace``),
  so readers never observe a half-written payload and a crash mid-write
  leaves the previous committed state intact;
* the store is **thread-safe**: one connection guarded by an RLock
  (``check_same_thread=False``), so asyncio executor threads can share it;
* it is **tolerant of concurrent writers** across processes: file-backed
  stores run in WAL journal mode (readers never block writers), a busy
  timeout waits out lock contention, and transiently locked commits are
  retried with backoff instead of surfacing to the campaign runner.
  Busy events surface on the ``nanoxbar_store_busy_total{op,outcome}``
  counter (``op`` = ``write`` | ``claim``, ``outcome`` = ``retried`` |
  ``exhausted``).
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..obs import get_logger, log_event, metrics

_LOG = get_logger("store")

#: How long one connection waits on a cross-process lock before raising.
_BUSY_TIMEOUT = 10.0

#: Bounded retry schedule (seconds) for transiently locked commits.
_RETRY_DELAYS = (0.05, 0.1, 0.2, 0.4)

_WRITES = metrics.registry().counter(
    "store_writes_total", "committed JsonStore write transactions")
_ROWS = metrics.registry().counter(
    "store_rows_written_total", "rows persisted through JsonStore writes")

_BUSY_HELP = ("transient SQLite locked/busy events by operation and "
              "outcome (retried = will re-run, exhausted = surfaced)")


def _busy_counter(op: str, outcome: str):
    return metrics.registry().counter(
        "nanoxbar_store_busy_total", _BUSY_HELP,
        labels={"op": op, "outcome": outcome})


_GRID_HELP = "experiment-grid rows by claim-protocol transition"


def _grid_counter(status: str):
    return metrics.registry().counter(
        "nanoxbar_grid_points_total", _GRID_HELP, labels={"status": status})


#: Grid-row states.  ``pending`` and ``claimed`` are transient; ``done``
#: and ``failed`` are terminal.
GRID_STATUSES = ("pending", "claimed", "done", "failed")


def _is_transient(error: sqlite3.OperationalError) -> bool:
    text = str(error).lower()
    return "locked" in text or "busy" in text


@dataclass(frozen=True)
class GridRow:
    """One experiment-grid point row (see :meth:`JsonStore.grid_claim`)."""

    grid_id: str
    point_key: str
    params: dict
    status: str
    worker: str | None
    attempts: int
    lease_deadline: float | None
    claimed_at: float | None
    finished_at: float | None
    result: Any | None
    error: str | None


class JsonStore:
    """SQLite-backed ``key -> JSON payload`` map plus claimable grid rows.

    One store object wraps one SQLite connection (WAL mode for file
    paths, plain journal for ``":memory:"``) and two tables:

    * ``json_store`` — the content-addressed results map the campaign
      runners persist per-point payloads into (:meth:`get` /
      :meth:`put` / :meth:`put_many`);
    * ``grid_rows`` — :mod:`repro.grid`'s claimable work rows, keyed by
      ``(grid_id, point_key)`` and driven through the ``grid_*`` methods.

    Multiple processes (or hosts mounting the same filesystem) may each
    open their own :class:`JsonStore` on one path; SQLite's locking makes
    every write atomic across them.  Within a process the store is
    thread-safe and may be shared freely.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS json_store (
        key     TEXT NOT NULL PRIMARY KEY,
        payload TEXT NOT NULL,
        created REAL NOT NULL
    )
    """

    _GRID_SCHEMA = """
    CREATE TABLE IF NOT EXISTS grid_rows (
        grid_id        TEXT NOT NULL,
        point_key      TEXT NOT NULL,
        params         TEXT NOT NULL,
        status         TEXT NOT NULL DEFAULT 'pending',
        worker         TEXT,
        attempts       INTEGER NOT NULL DEFAULT 0,
        lease_deadline REAL,
        claimed_at     REAL,
        finished_at    REAL,
        result         TEXT,
        error          TEXT,
        created        REAL NOT NULL,
        PRIMARY KEY (grid_id, point_key)
    )
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, timeout=_BUSY_TIMEOUT,
                                     check_same_thread=False)
        if path != ":memory:":
            # WAL lets concurrent readers proceed while a writer commits;
            # memory stores reject it (and have no concurrent processes).
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._execute_with_retry(self._SCHEMA, commit=True)
        self._execute_with_retry(self._GRID_SCHEMA, commit=True)

    def _execute_with_retry(self, sql: str, rows: list[tuple] | None = None,
                            commit: bool = False) -> None:
        """Run one write, retrying bounded times on cross-writer lock noise."""
        with self._lock:
            for attempt, delay in enumerate((*_RETRY_DELAYS, None)):
                try:
                    if rows is None:
                        self._conn.execute(sql)
                    else:
                        self._conn.executemany(sql, rows)
                    if commit:
                        self._conn.commit()
                        _WRITES.inc()
                        if rows is not None:
                            _ROWS.inc(len(rows))
                    return
                except sqlite3.OperationalError as error:
                    self._conn.rollback()
                    if not _is_transient(error):
                        raise
                    if delay is None:
                        _busy_counter("write", "exhausted").inc()
                        raise
                    _busy_counter("write", "retried").inc()
                    log_event(_LOG, "transient lock, retrying write",
                              level=logging.WARNING, attempt=attempt + 1,
                              delay=delay, error=str(error))
                    time.sleep(delay)

    # -- mapping interface ------------------------------------------------
    def get(self, key: str) -> Any | None:
        """Return the JSON payload stored under ``key``, or ``None``.

        Unparseable rows read as misses by design: corruption costs a
        recompute (the caller overwrites the row), never a wrong answer.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM json_store WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except (TypeError, json.JSONDecodeError):
            # An unparseable row reads as a miss; the caller recomputes and
            # overwrites it.
            return None

    def put(self, key: str, payload: Any) -> None:
        """Persist one entry (a single-row :meth:`put_many`)."""
        self.put_many([(key, payload)])

    def put_many(self, entries: list[tuple[str, Any]]) -> None:
        """Persist a batch of entries in a single atomic transaction."""
        now = time.time()
        self._execute_with_retry(
            "INSERT OR REPLACE INTO json_store (key, payload, created)"
            " VALUES (?, ?, ?)",
            rows=[(key, json.dumps(payload, sort_keys=True), now)
                  for key, payload in entries],
            commit=True,
        )

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM json_store").fetchone()
        return int(count)

    def clear(self) -> None:
        self._execute_with_retry("DELETE FROM json_store", commit=True)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JsonStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- experiment-grid rows ---------------------------------------------
    # The claim protocol.  Every mutation below runs as one IMMEDIATE
    # transaction: the write lock is taken up front, so a concurrent
    # claimer on another connection blocks inside SQLite's busy handler
    # (up to the busy timeout) instead of interleaving half-applied state
    # — and there is deliberately NO Python-level sleep/retry loop on
    # this path (claims must not spin-wait on a locked store).

    def _begin_immediate(self, op: str) -> None:
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError as error:
            if _is_transient(error):
                _busy_counter(op, "exhausted").inc()
            raise

    def _grid_row(self, row: tuple) -> GridRow:
        (grid_id, point_key, params_text, status, worker, attempts,
         lease_deadline, claimed_at, finished_at, result_text, error) = row
        try:
            params = json.loads(params_text)
        except (TypeError, json.JSONDecodeError):
            params = {}
        result = None
        if result_text is not None:
            try:
                result = json.loads(result_text)
            except (TypeError, json.JSONDecodeError):
                result = None
        return GridRow(grid_id, point_key, params, status, worker,
                       int(attempts), lease_deadline, claimed_at,
                       finished_at, result, error)

    _GRID_COLUMNS = ("grid_id, point_key, params, status, worker, attempts, "
                     "lease_deadline, claimed_at, finished_at, result, error")

    def grid_add_points(self, grid_id: str,
                        entries: list[tuple[str, dict, Any | None]],
                        now: float | None = None) -> int:
        """Materialise grid rows; idempotent.  Returns newly added count.

        ``entries`` are ``(point_key, params, result)`` triples.  A
        non-``None`` ``result`` means the point's answer is already known
        (a content-addressed hit in ``json_store``): the row lands — or,
        if it already exists as ``pending``, is upgraded — directly in
        ``done`` with ``worker='store'``.  Existing rows in any other
        state are left untouched, so re-planning a partially-run grid
        never loses work.
        """
        now = time.time() if now is None else now
        added = 0
        with self._lock:
            self._begin_immediate("write")
            try:
                for point_key, params, result in entries:
                    done = result is not None
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO grid_rows (grid_id, "
                        "point_key, params, status, worker, attempts, "
                        "finished_at, result, created) "
                        "VALUES (?, ?, ?, ?, ?, 0, ?, ?, ?)",
                        (grid_id, point_key,
                         json.dumps(params, sort_keys=True),
                         "done" if done else "pending",
                         "store" if done else None,
                         now if done else None,
                         json.dumps(result, sort_keys=True) if done
                         else None,
                         now))
                    added += cursor.rowcount
                    if done and not cursor.rowcount:
                        # The row predates this plan as pending; the
                        # store has since learned the answer.
                        self._conn.execute(
                            "UPDATE grid_rows SET status = 'done', "
                            "worker = 'store', result = ?, finished_at = ? "
                            "WHERE grid_id = ? AND point_key = ? "
                            "AND status = 'pending'",
                            (json.dumps(result, sort_keys=True), now,
                             grid_id, point_key))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        if added:
            _WRITES.inc()
            _ROWS.inc(added)
        return added

    def grid_claim(self, grid_id: str, worker: str, lease_seconds: float,
                   max_attempts: int = 3,
                   now: float | None = None) -> GridRow | None:
        """Atomically claim the next runnable row, or return ``None``.

        One ``BEGIN IMMEDIATE`` transaction (a) sweeps expired leases —
        a ``claimed`` row whose ``lease_deadline`` has passed returns to
        ``pending``, or moves to ``failed`` once its ``attempts`` have
        reached ``max_attempts`` — and (b) claims the oldest ``pending``
        row for ``worker``, bumping ``attempts`` and stamping a fresh
        lease.  ``None`` means nothing is claimable *right now*: the grid
        may be finished, or other workers may hold live leases (check
        :meth:`grid_counts`).

        ``now`` is injectable for tests; production callers leave it to
        the wall clock.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._begin_immediate("claim")
            try:
                expired = self._conn.execute(
                    "SELECT point_key, attempts, worker FROM grid_rows "
                    "WHERE grid_id = ? AND status = 'claimed' "
                    "AND lease_deadline < ? ORDER BY rowid",
                    (grid_id, now)).fetchall()
                for point_key, attempts, holder in expired:
                    if attempts >= max_attempts:
                        self._conn.execute(
                            "UPDATE grid_rows SET status = 'failed', "
                            "error = ?, finished_at = ? "
                            "WHERE grid_id = ? AND point_key = ?",
                            (f"lease expired after {attempts} attempts "
                             f"(last worker {holder!r})", now,
                             grid_id, point_key))
                        _grid_counter("failed").inc()
                    else:
                        self._conn.execute(
                            "UPDATE grid_rows SET status = 'pending', "
                            "worker = NULL, lease_deadline = NULL, "
                            "claimed_at = NULL "
                            "WHERE grid_id = ? AND point_key = ?",
                            (grid_id, point_key))
                    _grid_counter("lease_expired").inc()
                    log_event(_LOG, "grid lease expired",
                              level=logging.WARNING, grid_id=grid_id,
                              point_key=point_key, attempts=attempts,
                              worker=holder)
                candidate = self._conn.execute(
                    "SELECT point_key, params, attempts FROM grid_rows "
                    "WHERE grid_id = ? AND status = 'pending' "
                    "ORDER BY rowid LIMIT 1", (grid_id,)).fetchone()
                if candidate is None:
                    self._conn.commit()
                    return None
                point_key, params_text, attempts = candidate
                self._conn.execute(
                    "UPDATE grid_rows SET status = 'claimed', worker = ?, "
                    "attempts = ?, lease_deadline = ?, claimed_at = ? "
                    "WHERE grid_id = ? AND point_key = ?",
                    (worker, attempts + 1, now + lease_seconds, now,
                     grid_id, point_key))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        _grid_counter("claimed").inc()
        try:
            params = json.loads(params_text)
        except (TypeError, json.JSONDecodeError):
            params = {}
        return GridRow(grid_id, point_key, params, "claimed", worker,
                       attempts + 1, now + lease_seconds, now, None, None,
                       None)

    def grid_extend_lease(self, grid_id: str, point_key: str, worker: str,
                          lease_seconds: float,
                          now: float | None = None) -> bool:
        """Heartbeat: push ``worker``'s lease deadline out, if still held."""
        now = time.time() if now is None else now
        with self._lock:
            self._begin_immediate("claim")
            try:
                cursor = self._conn.execute(
                    "UPDATE grid_rows SET lease_deadline = ? "
                    "WHERE grid_id = ? AND point_key = ? "
                    "AND status = 'claimed' AND worker = ?",
                    (now + lease_seconds, grid_id, point_key, worker))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return cursor.rowcount == 1

    def grid_complete(self, grid_id: str, point_key: str, worker: str,
                      result: Any, now: float | None = None) -> bool:
        """Move ``worker``'s claimed row to ``done`` with its result.

        Returns ``False`` when the row is no longer ``worker``'s — its
        lease expired and another worker reclaimed it.  The stale
        worker's answer is discarded (the reclaiming worker recomputes
        the identical, content-seeded result), so two workers can never
        publish a point twice.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._begin_immediate("claim")
            try:
                cursor = self._conn.execute(
                    "UPDATE grid_rows SET status = 'done', result = ?, "
                    "finished_at = ?, error = NULL "
                    "WHERE grid_id = ? AND point_key = ? "
                    "AND status = 'claimed' AND worker = ?",
                    (json.dumps(result, sort_keys=True), now, grid_id,
                     point_key, worker))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        if cursor.rowcount == 1:
            _grid_counter("done").inc()
            return True
        return False

    def grid_fail(self, grid_id: str, point_key: str, worker: str,
                  error: str, max_attempts: int = 3,
                  now: float | None = None) -> str | None:
        """Record a failed attempt on ``worker``'s claimed row.

        The row returns to ``pending`` while attempts remain, else lands
        in terminal ``failed`` with the error message.  Returns the new
        status, or ``None`` when the row was not ``worker``'s to fail.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._begin_immediate("claim")
            try:
                held = self._conn.execute(
                    "SELECT attempts FROM grid_rows WHERE grid_id = ? "
                    "AND point_key = ? AND status = 'claimed' "
                    "AND worker = ?",
                    (grid_id, point_key, worker)).fetchone()
                if held is None:
                    self._conn.commit()
                    return None
                (attempts,) = held
                if attempts >= max_attempts:
                    status = "failed"
                    self._conn.execute(
                        "UPDATE grid_rows SET status = 'failed', "
                        "error = ?, finished_at = ? "
                        "WHERE grid_id = ? AND point_key = ?",
                        (error, now, grid_id, point_key))
                else:
                    status = "pending"
                    self._conn.execute(
                        "UPDATE grid_rows SET status = 'pending', "
                        "worker = NULL, lease_deadline = NULL, "
                        "claimed_at = NULL, error = ? "
                        "WHERE grid_id = ? AND point_key = ?",
                        (error, grid_id, point_key))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        _grid_counter("failed" if status == "failed" else "retried").inc()
        return status

    def grid_release_claims(self, grid_id: str,
                            now: float | None = None) -> int:
        """Force every ``claimed`` row back to ``pending`` (resume path).

        Only safe when no worker is still attached to the grid — a live
        worker whose row is released here would race its reclaimer.
        ``nanoxbar grid resume`` calls this on the operator's assertion
        that the previous run is dead.  Attempts counters are preserved.
        """
        with self._lock:
            self._begin_immediate("claim")
            try:
                cursor = self._conn.execute(
                    "UPDATE grid_rows SET status = 'pending', "
                    "worker = NULL, lease_deadline = NULL, "
                    "claimed_at = NULL "
                    "WHERE grid_id = ? AND status = 'claimed'",
                    (grid_id,))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return cursor.rowcount

    def grid_counts(self, grid_id: str) -> dict[str, int]:
        """Row counts by status (absent statuses omitted)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) FROM grid_rows WHERE grid_id = ? "
                "GROUP BY status", (grid_id,)).fetchall()
        return {status: int(count) for status, count in rows}

    def grid_get(self, grid_id: str, point_key: str) -> GridRow | None:
        """Fetch one row by key, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {self._GRID_COLUMNS} FROM grid_rows "
                "WHERE grid_id = ? AND point_key = ?",
                (grid_id, point_key)).fetchone()
        return self._grid_row(row) if row is not None else None

    def grid_rows_for(self, grid_id: str,
                      status: str | None = None) -> list[GridRow]:
        """Every row of a grid (insertion-ordered), optionally filtered."""
        sql = (f"SELECT {self._GRID_COLUMNS} FROM grid_rows "
               "WHERE grid_id = ?")
        args: tuple = (grid_id,)
        if status is not None:
            sql += " AND status = ?"
            args = (grid_id, status)
        sql += " ORDER BY rowid"
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        return [self._grid_row(row) for row in rows]
