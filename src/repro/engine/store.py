"""Generic persisted JSON store for non-synthesis job families.

The synthesis path keys lattices by NPN-canonical form
(:mod:`repro.engine.cache`); other batched workloads — first among them the
Monte-Carlo fault-tolerance campaigns of :mod:`repro.faultlab` — need the
same durability with free-form keys and JSON payloads.  :class:`JsonStore`
gives them one table with the cache layer's conventions:

* SQLite-backed, ``":memory:"`` for an ephemeral per-process store;
* writes batched into single transactions (``put_many``);
* unparseable rows read as misses, so corruption costs recompute time,
  never correctness.

Both stores can share one SQLite file: they own distinct tables, so a
single ``results.sqlite`` can hold the synthesis cache *and* every
campaign estimate.

Concurrency contract (the async server's handlers and pool shards persist
points against one shared store):

* every write is **atomic** — SQLite's transaction machinery stages each
  commit in a side journal and publishes it with an atomic rename-style
  page swap (the database-level equivalent of write-temp + ``os.replace``),
  so readers never observe a half-written payload and a crash mid-write
  leaves the previous committed state intact;
* the store is **thread-safe**: one connection guarded by an RLock
  (``check_same_thread=False``), so asyncio executor threads can share it;
* it is **tolerant of concurrent writers** across processes: file-backed
  stores run in WAL journal mode (readers never block writers), a busy
  timeout waits out lock contention, and transiently locked commits are
  retried with backoff instead of surfacing to the campaign runner.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
import time
from typing import Any

from ..obs import get_logger, log_event, metrics

_LOG = get_logger("store")

#: How long one connection waits on a cross-process lock before raising.
_BUSY_TIMEOUT = 10.0

#: Bounded retry schedule (seconds) for transiently locked commits.
_RETRY_DELAYS = (0.05, 0.1, 0.2, 0.4)

_WRITES = metrics.registry().counter(
    "store_writes_total", "committed JsonStore write transactions")
_ROWS = metrics.registry().counter(
    "store_rows_written_total", "rows persisted through JsonStore writes")
_BUSY = metrics.registry().counter(
    "store_busy_errors_total", "transient locked/busy errors hit by writes")
_RETRIES = metrics.registry().counter(
    "store_retries_total", "write attempts re-run after transient errors")


def _is_transient(error: sqlite3.OperationalError) -> bool:
    text = str(error).lower()
    return "locked" in text or "busy" in text


class JsonStore:
    """SQLite-backed ``key -> JSON payload`` map with batched writes."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS json_store (
        key     TEXT NOT NULL PRIMARY KEY,
        payload TEXT NOT NULL,
        created REAL NOT NULL
    )
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, timeout=_BUSY_TIMEOUT,
                                     check_same_thread=False)
        if path != ":memory:":
            # WAL lets concurrent readers proceed while a writer commits;
            # memory stores reject it (and have no concurrent processes).
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._execute_with_retry(self._SCHEMA, commit=True)

    def _execute_with_retry(self, sql: str, rows: list[tuple] | None = None,
                            commit: bool = False) -> None:
        """Run one write, retrying bounded times on cross-writer lock noise."""
        with self._lock:
            for attempt, delay in enumerate((*_RETRY_DELAYS, None)):
                try:
                    if rows is None:
                        self._conn.execute(sql)
                    else:
                        self._conn.executemany(sql, rows)
                    if commit:
                        self._conn.commit()
                        _WRITES.inc()
                        if rows is not None:
                            _ROWS.inc(len(rows))
                    return
                except sqlite3.OperationalError as error:
                    self._conn.rollback()
                    if not _is_transient(error):
                        raise
                    _BUSY.inc()
                    if delay is None:
                        raise
                    _RETRIES.inc()
                    log_event(_LOG, "transient lock, retrying write",
                              level=logging.WARNING, attempt=attempt + 1,
                              delay=delay, error=str(error))
                    time.sleep(delay)

    # -- mapping interface ------------------------------------------------
    def get(self, key: str) -> Any | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM json_store WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except (TypeError, json.JSONDecodeError):
            # An unparseable row reads as a miss; the caller recomputes and
            # overwrites it.
            return None

    def put(self, key: str, payload: Any) -> None:
        self.put_many([(key, payload)])

    def put_many(self, entries: list[tuple[str, Any]]) -> None:
        """Persist a batch of entries in a single atomic transaction."""
        now = time.time()
        self._execute_with_retry(
            "INSERT OR REPLACE INTO json_store (key, payload, created)"
            " VALUES (?, ?, ?)",
            rows=[(key, json.dumps(payload, sort_keys=True), now)
                  for key, payload in entries],
            commit=True,
        )

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM json_store").fetchone()
        return int(count)

    def clear(self) -> None:
        self._execute_with_retry("DELETE FROM json_store", commit=True)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JsonStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
