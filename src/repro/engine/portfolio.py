"""Strategy portfolio: race the paper's lattice flows, keep the best area.

Four strategies compete per function:

* ``dual`` — the Altun-Riedel dual-based construction, folded;
* ``dreducible`` — the Section III-B.2 decomposition (when applicable);
* ``pcircuit`` — the best Section III-B.1 split over all (var, polarity);
* ``optimal`` — SAT-based exact synthesis, upper-bounded by the best
  heuristic result found so far.

Budgets are **deterministic effort budgets** — SAT conflict caps and size
gates — rather than wall-clock timeouts, so a portfolio run produces
bit-identical results in serial and pooled execution (the acceptance
contract of :class:`repro.engine.engine.BatchEngine`).  Elapsed times are
recorded per strategy for reporting only; they never influence the outcome.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice
from ..synthesis.compose import constant_lattice
from ..synthesis.dreducible import synthesize_dreducible
from ..synthesis.lattice_dual import synthesize_lattice_dual
from ..synthesis.lattice_optimal import synthesize_lattice_optimal
from ..synthesis.optimize import fold_lattice
from ..synthesis.pcircuit import best_pcircuit
from ..xbareval import implements_table
from .jobs import DEFAULT_STRATEGIES, StrategyOutcome


@dataclass(frozen=True)
class PortfolioConfig:
    """Deterministic knobs for the strategy race.

    The gates keep the expensive flows inside the regime the underlying
    papers report results in: exact SAT synthesis explodes past a handful
    of variables or once the heuristic upper bound is already large, and
    the P-circuit sweep costs ``2n`` block synthesis rounds.
    """

    optimal_conflict_budget: int = 20_000
    optimal_max_vars: int = 4
    optimal_max_upper_area: int = 16
    pcircuit_max_vars: int = 6
    dreducible_max_vars: int = 8

    def fingerprint(self, strategies: tuple[str, ...] = DEFAULT_STRATEGIES
                    ) -> str:
        """Stable text identifying (config, strategy set) for cache keys."""
        payload = asdict(self)
        payload["strategies"] = list(strategies)
        return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class PortfolioResult:
    """The race's verdict for one function."""

    lattice: Lattice
    strategy: str
    outcomes: tuple[StrategyOutcome, ...]

    @property
    def area(self) -> int:
        return self.lattice.area


def _run_dual(table: TruthTable, config: PortfolioConfig,
              best: Lattice | None) -> Lattice | None:
    return fold_lattice(synthesize_lattice_dual(table), table)


def _run_dreducible(table: TruthTable, config: PortfolioConfig,
                    best: Lattice | None) -> Lattice | None:
    if table.n > config.dreducible_max_vars:
        raise _Skip(f"n={table.n} > dreducible_max_vars")
    result = synthesize_dreducible(table)
    if result is None:
        return None
    return result.lattice


def _run_pcircuit(table: TruthTable, config: PortfolioConfig,
                  best: Lattice | None) -> Lattice | None:
    if table.n < 2:
        raise _Skip("needs a variable to split on and one to keep")
    if table.n > config.pcircuit_max_vars:
        raise _Skip(f"n={table.n} > pcircuit_max_vars")
    lattice = best_pcircuit(table).lattice
    return fold_lattice(lattice, table)


def _run_optimal(table: TruthTable, config: PortfolioConfig,
                 best: Lattice | None) -> Lattice | None:
    if table.n > config.optimal_max_vars:
        raise _Skip(f"n={table.n} > optimal_max_vars")
    if best is not None and best.area > config.optimal_max_upper_area:
        raise _Skip(f"upper bound {best.area} > optimal_max_upper_area")
    result = synthesize_lattice_optimal(
        table,
        conflict_budget=config.optimal_conflict_budget,
        upper_bound=best,
    )
    return result.lattice


class _Skip(Exception):
    """Raised by a strategy to record a deterministic effort-gate skip."""


_STRATEGY_RUNNERS = {
    "dual": _run_dual,
    "dreducible": _run_dreducible,
    "pcircuit": _run_pcircuit,
    "optimal": _run_optimal,
}


def known_strategies() -> tuple[str, ...]:
    return tuple(_STRATEGY_RUNNERS)


def run_portfolio(table: TruthTable,
                  strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
                  config: PortfolioConfig | None = None) -> PortfolioResult:
    """Race the named strategies on ``table`` and keep the smallest lattice.

    Strategies run in the given order; a strictly smaller area displaces
    the incumbent, so ties go to the earlier strategy.  Every winning
    candidate is verified against ``table`` before it can win.  At least
    one strategy must succeed (``dual`` is total, so any portfolio
    containing it cannot come up empty).
    """
    config = config or PortfolioConfig()
    unknown = [s for s in strategies if s not in _STRATEGY_RUNNERS]
    if unknown:
        raise ValueError(f"unknown strategies {unknown}; "
                         f"known: {sorted(_STRATEGY_RUNNERS)}")

    if table.is_constant():
        lattice = constant_lattice(table.n, bool(table.evaluate(0)))
        outcome = StrategyOutcome("constant", "ok", lattice.area,
                                  lattice.shape)
        return PortfolioResult(lattice, "constant", (outcome,))

    best: Lattice | None = None
    winner = ""
    outcomes: list[StrategyOutcome] = []
    for name in strategies:
        runner = _STRATEGY_RUNNERS[name]
        start = time.perf_counter()
        try:
            lattice = runner(table, config, best)
        except _Skip as gate:
            outcomes.append(StrategyOutcome(
                name, "skipped", elapsed=time.perf_counter() - start,
                detail=str(gate)))
            continue
        except Exception as error:  # noqa: BLE001 - a failed flow loses the race
            outcomes.append(StrategyOutcome(
                name, "failed", elapsed=time.perf_counter() - start,
                detail=f"{type(error).__name__}: {error}"))
            continue
        elapsed = time.perf_counter() - start
        if lattice is None:
            outcomes.append(StrategyOutcome(
                name, "not-applicable", elapsed=elapsed))
            continue
        # Batched whole-table verification (repro.xbareval): one flood
        # call per candidate instead of 2^n scalar percolation checks.
        if not implements_table(lattice, table):
            outcomes.append(StrategyOutcome(
                name, "failed", elapsed=elapsed,
                detail="candidate failed verification"))
            continue
        outcomes.append(StrategyOutcome(
            name, "ok", lattice.area, lattice.shape, elapsed))
        if best is None or lattice.area < best.area:
            best, winner = lattice, name
    if best is None:
        raise RuntimeError(
            f"no strategy produced a lattice (tried {list(strategies)})")
    return PortfolioResult(best, winner, tuple(outcomes))
