"""Strategy portfolio: race the paper's lattice flows, keep the best area.

Four strategies compete per function:

* ``dual`` — the Altun-Riedel dual-based construction, folded;
* ``dreducible`` — the Section III-B.2 decomposition (when applicable);
* ``pcircuit`` — the best Section III-B.1 split over all (var, polarity);
* ``optimal`` — SAT-based exact synthesis, upper-bounded by the best
  heuristic result found so far.

Budgets are **deterministic effort budgets** — SAT conflict caps and size
gates — rather than wall-clock timeouts, so a portfolio run produces
bit-identical results in serial and pooled execution (the acceptance
contract of :class:`repro.engine.engine.BatchEngine`).  Elapsed times are
recorded per strategy for reporting only; they never influence the outcome.

:func:`run_portfolio_raced` (``PortfolioConfig.preempt``) races the
incumbent-independent strategies as concurrent processes and *preempts*
the rest once a verified winner has provably sealed the race — the first
result matching the sound area lower bound of
:func:`area_lower_bound`, when every still-pending strategy sits later in
the priority order.  The preemption rule is chosen so the raced verdict
(winner strategy and lattice) is **identical** to the serial one on every
input; only loser statuses (``"preempted"``) and wall-clock differ.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import asdict, dataclass

from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice
from ..synthesis.compose import constant_lattice
from ..synthesis.dreducible import synthesize_dreducible
from ..synthesis.lattice_dual import synthesize_lattice_dual
from ..synthesis.lattice_optimal import synthesize_lattice_optimal
from ..synthesis.optimize import fold_lattice
from ..synthesis.pcircuit import best_pcircuit
from ..xbareval import implements_table
from .jobs import DEFAULT_STRATEGIES, StrategyOutcome
from .pool import _pool_context


@dataclass(frozen=True)
class PortfolioConfig:
    """Deterministic knobs for the strategy race.

    The gates keep the expensive flows inside the regime the underlying
    papers report results in: exact SAT synthesis explodes past a handful
    of variables or once the heuristic upper bound is already large, and
    the P-circuit sweep costs ``2n`` block synthesis rounds.
    """

    optimal_conflict_budget: int = 20_000
    optimal_max_vars: int = 4
    optimal_max_upper_area: int = 16
    pcircuit_max_vars: int = 6
    dreducible_max_vars: int = 8
    #: Race strategies as concurrent processes and kill provable losers
    #: (:func:`run_portfolio_raced`).  Changes wall-clock only, never the
    #: verdict, so it is *excluded* from the cache fingerprint.
    preempt: bool = False

    def fingerprint(self, strategies: tuple[str, ...] = DEFAULT_STRATEGIES
                    ) -> str:
        """Stable text identifying (config, strategy set) for cache keys.

        ``preempt`` is deliberately not part of the fingerprint: raced
        and serial runs return the same winner and lattice by contract,
        so their cache entries are interchangeable.
        """
        payload = asdict(self)
        payload.pop("preempt")
        payload["strategies"] = list(strategies)
        return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class PortfolioResult:
    """The race's verdict for one function."""

    lattice: Lattice
    strategy: str
    outcomes: tuple[StrategyOutcome, ...]

    @property
    def area(self) -> int:
        return self.lattice.area


def _run_dual(table: TruthTable, config: PortfolioConfig,
              best: Lattice | None) -> Lattice | None:
    return fold_lattice(synthesize_lattice_dual(table), table)


def _run_dreducible(table: TruthTable, config: PortfolioConfig,
                    best: Lattice | None) -> Lattice | None:
    if table.n > config.dreducible_max_vars:
        raise _Skip(f"n={table.n} > dreducible_max_vars")
    result = synthesize_dreducible(table)
    if result is None:
        return None
    return result.lattice


def _run_pcircuit(table: TruthTable, config: PortfolioConfig,
                  best: Lattice | None) -> Lattice | None:
    if table.n < 2:
        raise _Skip("needs a variable to split on and one to keep")
    if table.n > config.pcircuit_max_vars:
        raise _Skip(f"n={table.n} > pcircuit_max_vars")
    lattice = best_pcircuit(table).lattice
    return fold_lattice(lattice, table)


def _run_optimal(table: TruthTable, config: PortfolioConfig,
                 best: Lattice | None) -> Lattice | None:
    if table.n > config.optimal_max_vars:
        raise _Skip(f"n={table.n} > optimal_max_vars")
    if best is not None and best.area > config.optimal_max_upper_area:
        raise _Skip(f"upper bound {best.area} > optimal_max_upper_area")
    result = synthesize_lattice_optimal(
        table,
        conflict_budget=config.optimal_conflict_budget,
        upper_bound=best,
    )
    return result.lattice


class _Skip(Exception):
    """Raised by a strategy to record a deterministic effort-gate skip."""


_STRATEGY_RUNNERS = {
    "dual": _run_dual,
    "dreducible": _run_dreducible,
    "pcircuit": _run_pcircuit,
    "optimal": _run_optimal,
}


def known_strategies() -> tuple[str, ...]:
    return tuple(_STRATEGY_RUNNERS)


def run_portfolio(table: TruthTable,
                  strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
                  config: PortfolioConfig | None = None) -> PortfolioResult:
    """Race the named strategies on ``table`` and keep the smallest lattice.

    Strategies run in the given order; a strictly smaller area displaces
    the incumbent, so ties go to the earlier strategy.  Every winning
    candidate is verified against ``table`` before it can win.  At least
    one strategy must succeed (``dual`` is total, so any portfolio
    containing it cannot come up empty).
    """
    config = config or PortfolioConfig()
    unknown = [s for s in strategies if s not in _STRATEGY_RUNNERS]
    if unknown:
        raise ValueError(f"unknown strategies {unknown}; "
                         f"known: {sorted(_STRATEGY_RUNNERS)}")

    if table.is_constant():
        lattice = constant_lattice(table.n, bool(table.evaluate(0)))
        outcome = StrategyOutcome("constant", "ok", lattice.area,
                                  lattice.shape)
        return PortfolioResult(lattice, "constant", (outcome,))

    best: Lattice | None = None
    winner = ""
    outcomes: list[StrategyOutcome] = []
    for name in strategies:
        runner = _STRATEGY_RUNNERS[name]
        start = time.perf_counter()
        try:
            lattice = runner(table, config, best)
        except _Skip as gate:
            outcomes.append(StrategyOutcome(
                name, "skipped", elapsed=time.perf_counter() - start,
                detail=str(gate)))
            continue
        except Exception as error:  # a failed flow loses the race
            outcomes.append(StrategyOutcome(
                name, "failed", elapsed=time.perf_counter() - start,
                detail=f"{type(error).__name__}: {error}"))
            continue
        elapsed = time.perf_counter() - start
        if lattice is None:
            outcomes.append(StrategyOutcome(
                name, "not-applicable", elapsed=elapsed))
            continue
        # Batched whole-table verification (repro.xbareval): one flood
        # call per candidate instead of 2^n scalar percolation checks.
        if not implements_table(lattice, table):
            outcomes.append(StrategyOutcome(
                name, "failed", elapsed=elapsed,
                detail="candidate failed verification"))
            continue
        outcomes.append(StrategyOutcome(
            name, "ok", lattice.area, lattice.shape, elapsed))
        if best is None or lattice.area < best.area:
            best, winner = lattice, name
    if best is None:
        raise RuntimeError(
            f"no strategy produced a lattice (tried {list(strategies)})")
    return PortfolioResult(best, winner, tuple(outcomes))


def area_lower_bound(table: TruthTable) -> int:
    """A sound lower bound on any implementing lattice's area.

    Every variable in the function's support must label at least one
    site (a lattice with no ``v``-literal site cannot depend on ``v``),
    and no lattice has fewer than one site — so ``max(1, |support|)``.
    This is the bound that lets preemption keep the serial verdict: once
    a verified incumbent reaches it, no pending strategy can *strictly*
    beat it, and strictly-smaller is the only way to displace.
    """
    return max(1, len(table.support()))


def _raced_worker(name: str, n: int, bits: int, config: PortfolioConfig,
                  cancel, queue) -> None:
    """Child-process body: run one strategy, report through the queue."""
    if cancel.is_set():
        queue.put((name, "preempted", None, 0.0,
                   "preempted before starting"))
        return
    table = TruthTable.from_bits(n, bits)
    start = time.perf_counter()
    try:
        lattice = _STRATEGY_RUNNERS[name](table, config, None)
    except _Skip as gate:
        queue.put((name, "skipped", None, time.perf_counter() - start,
                   str(gate)))
        return
    except Exception as error:  # a failed flow loses the race
        queue.put((name, "failed", None, time.perf_counter() - start,
                   f"{type(error).__name__}: {error}"))
        return
    elapsed = time.perf_counter() - start
    if lattice is None:
        queue.put((name, "not-applicable", None, elapsed, ""))
        return
    queue.put((name, "ok", lattice, elapsed, ""))


#: Strategies whose result depends on the incumbent (``best``); they must
#: run at their serial position rather than in the concurrent wave.
_INCUMBENT_DEPENDENT = frozenset({"optimal"})

_PREEMPT_DETAIL = "preempted: incumbent reached the area lower bound"


def run_portfolio_raced(table: TruthTable,
                        strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
                        config: PortfolioConfig | None = None
                        ) -> PortfolioResult:
    """:func:`run_portfolio` with real preemption — same verdict, faster.

    The incumbent-independent strategies run as concurrent child
    processes sharing a cancellation event.  When a result has been
    verified whose area equals :func:`area_lower_bound` *and* every
    still-running strategy sits later in the priority order, the pending
    children are killed: none of them could strictly beat the bound, and
    a later-priority tie never displaces, so the serial winner is already
    sealed.  Incumbent-dependent strategies (``optimal`` reads the best
    heuristic area for its effort gate and upper bound) replay at their
    exact serial position afterwards — or are preempted outright when the
    incumbent entering that position has sealed the race.

    Environments where child processes cannot be spawned (daemonic pool
    workers, sandboxes) fall back to the serial :func:`run_portfolio` —
    identical results, serial wall-clock.
    """
    config = config or PortfolioConfig()
    unknown = [s for s in strategies if s not in _STRATEGY_RUNNERS]
    if unknown:
        raise ValueError(f"unknown strategies {unknown}; "
                         f"known: {sorted(_STRATEGY_RUNNERS)}")

    if table.is_constant():
        lattice = constant_lattice(table.n, bool(table.evaluate(0)))
        outcome = StrategyOutcome("constant", "ok", lattice.area,
                                  lattice.shape)
        return PortfolioResult(lattice, "constant", (outcome,))

    racing = [name for name in strategies
              if name not in _INCUMBENT_DEPENDENT]
    if len(racing) < 2:
        return run_portfolio(table, strategies, config)

    try:
        ctx = _pool_context()  # fork when single-threaded, else forkserver
        cancel = ctx.Event()
        queue = ctx.Queue()
        procs: dict[str, multiprocessing.Process] = {}
        for name in racing:
            proc = ctx.Process(
                target=_raced_worker,
                args=(name, table.n, table.bits, config, cancel, queue),
                daemon=True)
            proc.start()
            procs[name] = proc
    except (AssertionError, OSError, PermissionError, RuntimeError,
            ImportError, ValueError):
        # Daemonic pool workers cannot have children (AssertionError on
        # 3.10/3.11, RuntimeError later); sandboxes may refuse the
        # semaphores.  Same results either way.
        for proc in locals().get("procs", {}).values():  # pragma: no cover
            proc.terminate()
        return run_portfolio(table, strategies, config)

    priority = {name: index for index, name in enumerate(strategies)}
    lower_bound = area_lower_bound(table)
    collected: dict[str, tuple[str, Lattice | None, float, str]] = {}
    preempted: set[str] = set()
    pending = set(racing)
    incumbent: tuple[int, str] | None = None  # (priority, name) of best ok
    try:
        while pending:
            name, status, lattice, elapsed, detail = queue.get()
            pending.discard(name)
            if status == "ok" and not implements_table(lattice, table):
                status, lattice, detail = ("failed", None,
                                           "candidate failed verification")
            collected[name] = (status, lattice, elapsed, detail)
            if status == "ok":
                area = lattice.area
                entry = (priority[name], name)
                if incumbent is None:
                    incumbent = entry
                else:
                    best_area = collected[incumbent[1]][1].area
                    if area < best_area or (area == best_area
                                            and entry < incumbent):
                        incumbent = entry
            if (incumbent is not None and pending
                    and collected[incumbent[1]][1].area == lower_bound
                    and all(priority[other] > incumbent[0]
                            for other in pending)):
                # Sealed: nothing pending can strictly beat the bound,
                # and none of it could win a tie. Kill the losers.
                cancel.set()
                for other in pending:
                    procs[other].terminate()
                preempted = set(pending)
                pending.clear()
    finally:
        for proc in procs.values():
            proc.join(timeout=5.0)
        queue.close()

    # Replay the serial loop order over the collected results, running
    # incumbent-dependent strategies inline at their exact position.
    best: Lattice | None = None
    winner = ""
    outcomes: list[StrategyOutcome] = []
    for name in strategies:
        if name in preempted:
            outcomes.append(StrategyOutcome(
                name, "preempted", detail=_PREEMPT_DETAIL))
            continue
        if name in collected:
            status, lattice, elapsed, detail = collected[name]
            if status != "ok":
                outcomes.append(StrategyOutcome(
                    name, status, elapsed=elapsed, detail=detail))
                continue
            outcomes.append(StrategyOutcome(
                name, "ok", lattice.area, lattice.shape, elapsed))
            if best is None or lattice.area < best.area:
                best, winner = lattice, name
            continue
        # Incumbent-dependent strategy at its serial position.
        if best is not None and best.area == lower_bound:
            # It cannot strictly beat the sealed incumbent; skip the run.
            outcomes.append(StrategyOutcome(
                name, "preempted", detail=_PREEMPT_DETAIL))
            continue
        runner = _STRATEGY_RUNNERS[name]
        start = time.perf_counter()
        try:
            lattice = runner(table, config, best)
        except _Skip as gate:
            outcomes.append(StrategyOutcome(
                name, "skipped", elapsed=time.perf_counter() - start,
                detail=str(gate)))
            continue
        except Exception as error:  # a failed strategy loses the race
            outcomes.append(StrategyOutcome(
                name, "failed", elapsed=time.perf_counter() - start,
                detail=f"{type(error).__name__}: {error}"))
            continue
        elapsed = time.perf_counter() - start
        if lattice is None:
            outcomes.append(StrategyOutcome(
                name, "not-applicable", elapsed=elapsed))
            continue
        if not implements_table(lattice, table):
            outcomes.append(StrategyOutcome(
                name, "failed", elapsed=elapsed,
                detail="candidate failed verification"))
            continue
        outcomes.append(StrategyOutcome(
            name, "ok", lattice.area, lattice.shape, elapsed))
        if best is None or lattice.area < best.area:
            best, winner = lattice, name
    if best is None:
        raise RuntimeError(
            f"no strategy produced a lattice (tried {list(strategies)})")
    return PortfolioResult(best, winner, tuple(outcomes))
