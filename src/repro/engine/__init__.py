"""Parallel batch-synthesis engine (the scaling substrate of the repo).

The paper's synthesis flows are single-function calls; this package turns
them into a batch service:

* :mod:`repro.engine.jobs`      — declarative ``SynthesisJob`` / ``JobResult``
* :mod:`repro.engine.cache`     — persistent NPN-canonical result store
* :mod:`repro.engine.portfolio` — strategy race (dual / D-reducible /
  P-circuit / SAT-optimal) under deterministic effort budgets
* :mod:`repro.engine.pool`      — sharded multiprocessing map with serial
  fallback
* :mod:`repro.engine.store`     — generic persisted JSON store for other
  job families (e.g. :mod:`repro.faultlab` campaigns) plus the claimable
  experiment-grid rows :mod:`repro.grid` orchestrates
* :mod:`repro.engine.engine`    — the ``BatchEngine`` facade

Quickstart::

    from repro.engine import BatchEngine, SynthesisJob
    from repro.eval.benchsuite import standard_suite

    jobs = [SynthesisJob.from_function(b.function, b.name)
            for b in standard_suite()]
    with BatchEngine(cache_path="results.sqlite", processes=4) as engine:
        results = engine.run(jobs)
        print(engine.report())
"""

from .cache import (
    CachedResult,
    ResultCache,
    canonical_cache_key,
    canonical_polarity_table,
    lattice_from_text,
    lattice_to_text,
    transform_lattice_from_canonical,
    transform_lattice_to_canonical,
)
from .engine import BatchEngine, EngineStats
from .jobs import (
    DEFAULT_STRATEGIES,
    FaultToleranceReport,
    FaultToleranceSpec,
    JobResult,
    StrategyOutcome,
    SynthesisJob,
)
from .pool import batch_sizes, chunk_size, default_processes, map_sharded
from .portfolio import (
    PortfolioConfig,
    PortfolioResult,
    area_lower_bound,
    known_strategies,
    run_portfolio,
    run_portfolio_raced,
)

from .store import GridRow, JsonStore

__all__ = [
    "BatchEngine",
    "CachedResult",
    "DEFAULT_STRATEGIES",
    "EngineStats",
    "FaultToleranceReport",
    "FaultToleranceSpec",
    "GridRow",
    "JobResult",
    "JsonStore",
    "PortfolioConfig",
    "PortfolioResult",
    "ResultCache",
    "StrategyOutcome",
    "SynthesisJob",
    "area_lower_bound",
    "canonical_cache_key",
    "canonical_polarity_table",
    "batch_sizes",
    "chunk_size",
    "default_processes",
    "known_strategies",
    "lattice_from_text",
    "lattice_to_text",
    "map_sharded",
    "run_portfolio",
    "run_portfolio_raced",
    "transform_lattice_from_canonical",
    "transform_lattice_to_canonical",
]
