"""Sharded multiprocessing map with deterministic chunking.

The engine's unit of parallel work is one *unique* canonical function (the
cache layer dedupes before the pool sees anything), so tasks are few and
coarse.  :func:`map_sharded` preserves input order, computes its chunk size
deterministically from the task count, and degrades to serial execution
whenever a pool cannot be created (restricted sandboxes, missing semaphore
support) or ``processes <= 1`` — callers observe identical results either
way, just different wall-clock.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from functools import partial
from typing import Callable, Iterator, Sequence, TypeVar

from ..obs import metrics, tracing

T = TypeVar("T")
R = TypeVar("R")

#: Per-shard-task execution time, as measured *inside* the worker.
_SHARD_SECONDS = metrics.registry().histogram(
    "pool_shard_seconds", "per-task execution time inside pool workers")
_SHARD_TASKS = metrics.registry().counter(
    "pool_tasks_total", "tasks executed through the sharded pool")


def default_processes() -> int:
    """A sensible worker count: the CPU count, capped to keep forks cheap."""
    return max(1, min(os.cpu_count() or 1, 8))


def chunk_size(num_tasks: int, processes: int) -> int:
    """Deterministic chunking: about two chunks per worker, at least 1."""
    if num_tasks <= 0 or processes <= 1:
        return 1
    return max(1, -(-num_tasks // (2 * processes)))


def batch_sizes(total: int, batch_size: int) -> list[int]:
    """Deterministic batch layout: full batches, then the remainder.

    The Monte-Carlo campaign runners (:mod:`repro.faultlab`,
    :mod:`repro.varsim`) spawn one ``SeedSequence`` child per entry, so
    this layout is part of each campaign's sampling identity.
    """
    if total < 0 or batch_size < 1:
        raise ValueError("need total >= 0 and batch_size >= 1")
    sizes = [batch_size] * (total // batch_size)
    if total % batch_size:
        sizes.append(total % batch_size)
    return sizes


#: Modules the forkserver warms up once, so every later worker fork starts
#: with numpy and the campaign kernels already imported.
_FORKSERVER_PRELOAD = [
    "repro.engine.engine",
    "repro.faultlab.campaign",
    "repro.varsim.campaign",
]


def _pool_context():
    """Pick a start method that is safe for the calling process.

    ``fork`` is the fast default for single-threaded callers (the CLI
    runners).  Forking a *multi-threaded* process — the asyncio batch
    server's worker threads, first of all — is a deadlock lottery: the
    child inherits whatever mutexes other threads held at fork time.
    Those callers get ``forkserver`` (workers fork from a clean,
    single-threaded helper that was itself started via fork+exec), or
    ``spawn`` where no forkserver exists.  Results are bit-identical
    under every method: workers are pure functions of their pickled
    task tuples.
    """
    methods = multiprocessing.get_all_start_methods()
    if threading.active_count() > 1:
        if "forkserver" in methods:
            ctx = multiprocessing.get_context("forkserver")
            # No-op once the forkserver is running; cheap before that.
            ctx.set_forkserver_preload(_FORKSERVER_PRELOAD)
            return ctx
        return multiprocessing.get_context("spawn")
    if "fork" in methods:
        # Under NANOXBAR_LOCKCHECK the sanitizer audits this boundary:
        # a watched lock held by any *other* thread right now would be
        # copied locked into every forked worker.  (active_count() said
        # we are single-threaded, but non-threading threads and races
        # are exactly what the sanitizer exists to catch.)
        from ..analysis import lockwatch
        lockwatch.check_fork_safety("engine.pool fork start method")
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _timed_task(fn: Callable[[T], R], trace_id: str | None,
                item: T) -> tuple[str | None, float, R]:
    """Worker body wrapper: measure one task where it actually runs.

    The trace ID crosses the process boundary as a plain field on the
    payload and comes back with the worker-measured duration, so the
    parent can record a pool-shard span inside the right trace without
    any shared telemetry state between processes.
    """
    start = time.perf_counter()
    result = fn(item)
    return trace_id, time.perf_counter() - start, result


def _collect(entry: tuple[str | None, float, R]) -> R:
    """Unwrap one timed task result, recording its shard span/metrics."""
    trace_id, elapsed, result = entry
    tracing.record_span("pool.shard", elapsed, trace_id=trace_id)
    _SHARD_SECONDS.observe(elapsed)
    _SHARD_TASKS.inc()
    return result


def map_sharded(fn: Callable[[T], R], items: Sequence[T],
                processes: int = 1) -> list[R]:
    """Order-preserving parallel map with graceful serial fallback."""
    items = list(items)
    call = partial(_timed_task, fn, tracing.current_trace_id())
    with tracing.span("pool.map", tasks=len(items)) as handle:
        if processes <= 1 or len(items) <= 1:
            handle.set("mode", "serial")
            return [_collect(call(item)) for item in items]
        workers = min(processes, len(items))
        ctx = _pool_context()
        try:
            pool = ctx.Pool(workers)
        except (OSError, PermissionError, RuntimeError, ImportError):
            # Pool creation (or the semaphores behind it) can be forbidden
            # in sandboxed environments; the contract is identical results,
            # so fall back to the serial path rather than failing the
            # batch.  Exceptions raised *inside* workers are not caught
            # here — they propagate out of pool.map exactly as they would
            # serially.
            handle.set("mode", "serial-fallback")
            return [_collect(call(item)) for item in items]
        handle.set("mode", f"pooled-{workers}")
        with pool:
            return [_collect(entry) for entry in pool.map(
                call, items, chunksize=chunk_size(len(items), workers))]


def iter_sharded(fn: Callable[[T], R], items: Sequence[T],
                 processes: int = 1) -> Iterator[R]:
    """Order-preserving parallel map, yielded lazily as results land.

    The streaming sibling of :func:`map_sharded` for the campaign
    iterators: one pool serves the whole task list, workers pull tasks
    ahead of the consumer (``imap``), and results come back in input
    order — so the consumer can aggregate and yield grid point ``i``
    while the pool is already sampling point ``i+1``.  Serial execution
    (``processes <= 1`` or an unavailable pool) degrades to a plain lazy
    generator with identical results.
    """
    items = list(items)
    call = partial(_timed_task, fn, tracing.current_trace_id())
    if processes <= 1 or len(items) <= 1:
        for item in items:
            yield _collect(call(item))
        return
    workers = min(processes, len(items))
    ctx = _pool_context()
    try:
        pool = ctx.Pool(workers)
    except (OSError, PermissionError, RuntimeError, ImportError):
        for item in items:
            yield _collect(call(item))
        return
    # ``with pool`` terminates workers even when the consumer abandons
    # the generator mid-campaign (generator .close() runs the finally).
    with pool:
        for entry in pool.imap(call, items, chunksize=1):
            yield _collect(entry)
