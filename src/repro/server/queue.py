"""Async job queue with content-addressed request coalescing.

Every submission is normalised to a coalesce key by
:func:`repro.server.protocol.parse_submission` (truth-table content
hashes for synthesis, campaign point keys for the Monte-Carlo families).
The queue keeps one :class:`ServedJob` per key: concurrent identical
submissions — the classic thundering-herd shape of a synthesis service,
many clients asking for the same mapping against the same defect grid —
attach to the computation already in flight instead of launching their
own, and late duplicates reuse the finished record outright.

Per-point progress flows from the worker thread onto the event loop via
``asyncio.run_coroutine_threadsafe`` (one short coroutine per record), so
streaming readers (:meth:`ServedJob.stream`) wake in arrival order
without polling.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from ..obs import get_logger, log_event, metrics, tracing

_LOG = get_logger("server")
from .protocol import Submission
from .worker import WorkerBridge

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Completed jobs retained for late status/result/coalesce queries; the
#: oldest beyond this are evicted so a long-lived server stays bounded.
MAX_RETAINED_JOBS = 1024

_REG = metrics.registry()
_DEPTH = _REG.gauge(
    "server_queue_depth", "jobs currently queued or running")
_STREAM_READERS = _REG.gauge(
    "server_stream_readers", "chunked-stream readers currently attached")


def _queue_wait(kind: str) -> metrics.Histogram:
    return _REG.histogram(
        "server_queue_wait_seconds",
        "submit-to-running latency per job family", labels={"kind": kind})


def _job_seconds(kind: str) -> metrics.Histogram:
    return _REG.histogram(
        "server_job_seconds",
        "submit-to-terminal latency per job family", labels={"kind": kind})


def _jobs_total(kind: str, state: str) -> metrics.Counter:
    return _REG.counter(
        "server_jobs_total", "jobs finished, by family and terminal state",
        labels={"kind": kind, "state": state})


def _submissions_total(kind: str) -> metrics.Counter:
    return _REG.counter(
        "server_submissions_total", "submissions accepted per job family",
        labels={"kind": kind})


def _coalesced_total(kind: str) -> metrics.Counter:
    return _REG.counter(
        "server_coalesced_total",
        "submissions folded onto an existing job", labels={"kind": kind})


class ServedJob:
    """One computation and everything observed about it so far."""

    def __init__(self, job_id: str, submission: Submission,
                 on_failed=None, trace_id: str | None = None):
        self.job_id = job_id
        self.submission = submission
        self.state = QUEUED
        self.points: list[dict] = []
        self.error: str | None = None
        self.created = time.time()
        self.finished: float | None = None
        self.subscribers = 1
        #: One trace per computation; coalesced submissions share it.
        self.trace_id = trace_id or tracing.new_trace_id()
        self._created_mono = time.perf_counter()
        self._cond = asyncio.Condition()
        self._on_failed = on_failed

    @property
    def complete(self) -> bool:
        return self.state in (DONE, FAILED)

    def status(self) -> dict:
        """The ``/api/status`` snapshot."""
        return {
            "job_id": self.job_id,
            "kind": self.submission.kind,
            "state": self.state,
            "points_done": len(self.points),
            "points_total": self.submission.points_total,
            "subscribers": self.subscribers,
            "trace_id": self.trace_id,
            "error": self.error,
        }

    def result(self) -> dict:
        """The ``/api/result`` payload (call when ``complete``)."""
        return {
            "job_id": self.job_id,
            "kind": self.submission.kind,
            "state": self.state,
            "request": self.submission.echo,
            "points": list(self.points),
            "error": self.error,
        }

    # -- loop-side mutation (scheduled from the worker thread) -----------
    async def publish(self, event: str, data) -> None:
        kind = self.submission.kind
        async with self._cond:
            if event == "running":
                self.state = RUNNING
                wait = time.perf_counter() - self._created_mono
                _queue_wait(kind).observe(wait)
                tracing.record_span("server.queue_wait", wait,
                                    trace_id=self.trace_id,
                                    job_id=self.job_id, kind=kind)
            elif event == "point":
                self.points.append(data)
            elif event == "done":
                self.state = DONE
                self.finished = time.time()
                self._observe_terminal(kind)
            elif event == "failed":
                self.state = FAILED
                self.error = str(data)
                self.finished = time.time()
                self._observe_terminal(kind)
                if self._on_failed is not None:
                    # Same loop step as the state flip — no submit can
                    # coalesce onto a failed-but-not-yet-evicted key.
                    self._on_failed(self)
            self._cond.notify_all()

    def _observe_terminal(self, kind: str) -> None:
        seconds = time.perf_counter() - self._created_mono
        _job_seconds(kind).observe(seconds)
        _jobs_total(kind, self.state).inc()
        _DEPTH.dec()
        log_event(_LOG, "job finished", job_id=self.job_id, kind=kind,
                  state=self.state, trace_id=self.trace_id,
                  points=len(self.points), seconds=round(seconds, 6),
                  **({"error": self.error} if self.error else {}))

    async def wait(self) -> None:
        """Block until the job completes."""
        async with self._cond:
            await self._cond.wait_for(lambda: self.complete)

    async def stream(self):
        """Yield per-point records in order, then return on completion.

        Multiple readers may stream one job concurrently (each keeps its
        own cursor); records published before the reader attached are
        replayed first, so coalesced late-joiners see the full sequence.
        """
        cursor = 0
        _STREAM_READERS.inc()
        try:
            while True:
                async with self._cond:
                    await self._cond.wait_for(
                        lambda: len(self.points) > cursor or self.complete)
                    fresh = self.points[cursor:]
                    cursor = len(self.points)
                    # Events publish in emission order, so once the job is
                    # complete the points list is final — nothing trails in.
                    ended = self.complete
                for record in fresh:
                    yield record
                if ended:
                    return
        finally:
            _STREAM_READERS.dec()


class JobQueue:
    """Submission intake, coalescing, and worker dispatch."""

    def __init__(self, bridge: WorkerBridge,
                 loop: asyncio.AbstractEventLoop):
        self._bridge = bridge
        self._loop = loop
        self._ids = itertools.count(1)
        self._jobs: dict[str, ServedJob] = {}
        self._by_key: dict[str, ServedJob] = {}
        self._tasks: set[asyncio.Task] = set()
        self.stats = {
            "submitted": 0,
            "coalesced": 0,
            "computations": 0,
            "completed": 0,
            "failed": 0,
        }

    def submit(self, submission: Submission) -> tuple[ServedJob, bool]:
        """Register one submission; returns ``(job, coalesced)``.

        Identical submissions (same coalesce key) share one
        :class:`ServedJob` — and therefore one computation — whether the
        original is still queued, mid-flight, or already finished.
        """
        self.stats["submitted"] += 1
        _submissions_total(submission.kind).inc()
        existing = self._by_key.get(submission.coalesce_key)
        if existing is not None:
            self.stats["coalesced"] += 1
            _coalesced_total(submission.kind).inc()
            existing.subscribers += 1
            return existing, True
        job = ServedJob(f"job-{next(self._ids):06d}", submission,
                        on_failed=self._evict_failed)
        self._jobs[job.job_id] = job
        self._by_key[submission.coalesce_key] = job
        self.stats["computations"] += 1
        _DEPTH.inc()
        task = self._loop.create_task(self._dispatch(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job, False

    def get(self, job_id: str) -> ServedJob | None:
        return self._jobs.get(job_id)

    async def _dispatch(self, job: ServedJob) -> None:
        """Hand the job to a bridge thread and wait it out."""

        def emit(event: str, data) -> None:
            # Worker-thread side: hop every record onto the event loop.
            asyncio.run_coroutine_threadsafe(
                job.publish(event, data), self._loop)

        await self._loop.run_in_executor(
            self._bridge.executor, self._bridge.run_submission,
            job.submission, emit, job.trace_id)
        await job.wait()
        self.stats["completed" if job.state == DONE else "failed"] += 1
        self._evict_old_jobs()

    def _evict_failed(self, job: ServedJob) -> None:
        """A failure must not poison its coalesce key: evict it so the
        next identical submission recomputes (the failed record stays
        queryable by id until evicted by age)."""
        key = job.submission.coalesce_key
        if self._by_key.get(key) is job:
            del self._by_key[key]

    def tasks(self) -> list[asyncio.Task]:
        """In-flight dispatch tasks (the shutdown drain's worklist)."""
        return list(self._tasks)

    def _evict_old_jobs(self) -> None:
        """Drop the oldest finished jobs beyond the retention bound."""
        excess = len(self._jobs) - MAX_RETAINED_JOBS
        if excess <= 0:
            return
        for job_id, job in list(self._jobs.items()):
            if excess <= 0:
                break
            if not job.complete:
                continue
            del self._jobs[job_id]
            key = job.submission.coalesce_key
            if self._by_key.get(key) is job:
                del self._by_key[key]
            excess -= 1

    async def drain(self) -> None:
        """Wait for every dispatched computation (shutdown path).

        Loops until quiescent: a handler that was mid-submit when the
        drain started may add tasks behind the first snapshot.
        """
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

    def snapshot(self) -> dict:
        """The queue half of the ``/api/stats`` payload."""
        active = sum(1 for job in self._jobs.values()
                     if not job.complete)
        return {**self.stats, "active": active, "known_jobs": len(self._jobs)}
