"""The worker bridge: pool-sharded jobs running off the event loop.

The asyncio front-end must never block on a synthesis race or a
Monte-Carlo campaign, and the compute substrates are synchronous by
design (``BatchEngine`` batches, the campaign iterators).  The bridge
owns a small :class:`~concurrent.futures.ThreadPoolExecutor`; each served
job runs in one of its threads, shards its real work over
:mod:`repro.engine.pool` processes as usual, and reports per-point
progress through a thread-safe ``emit`` callback the job queue provides
(:mod:`repro.server.queue` forwards the records onto the event loop).

Shared state is safe by construction: synthesis batches are serialised
through :meth:`repro.engine.engine.BatchEngine.submit` (one dedicated
engine thread), and campaign points persist through the thread-safe
:class:`~repro.engine.store.JsonStore`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from ..engine import BatchEngine, JsonStore
from ..faultlab import iter_campaign
from ..grid import iter_grid_points
from ..obs import tracing
from ..obs.health import HealthMonitor, default_server_rules
from ..obs.timeline import MetricsRecorder
from ..varsim import iter_variation_campaign
from .protocol import (
    Submission,
    fault_estimate_record,
    grid_row_record,
    job_result_record,
    variation_estimate_record,
)

#: ``emit`` events: ("running", None), ("point", record),
#: ("done", None), ("failed", message).
EmitFn = Callable[[str, object], None]


class WorkerBridge:
    """Runs submissions on worker threads, streaming per-point records.

    Args:
        cache_path: one SQLite file backing *both* the engine's
            NPN-canonical cache and the campaign ``JsonStore`` (they own
            distinct tables); ``":memory:"`` keeps each ephemeral.
        processes: pool width each job shards over
            (:func:`repro.engine.pool.map_sharded`).
        job_workers: how many served jobs may compute concurrently.
        obs_tick: metrics-recorder tick interval in seconds (``None``
            defers to ``NANOXBAR_OBS_TICK`` / the 1s default).
        health_rules: watchdog rules for the recorder's
            :class:`~repro.obs.health.HealthMonitor`; defaults to
            :func:`~repro.obs.health.default_server_rules`.

    The bridge also owns the process's
    :class:`~repro.obs.timeline.MetricsRecorder` — the compute side is
    where the interesting series originate, and tying the recorder's
    lifetime to the bridge means every front-end (server, tests,
    benches) gets history/SSE/watchdogs without extra wiring.
    """

    def __init__(self, cache_path: str = ":memory:", processes: int = 1,
                 job_workers: int = 2, obs_tick: float | None = None,
                 health_rules=None):
        self.engine = BatchEngine(cache_path=cache_path,
                                  processes=processes)
        self.store = JsonStore(cache_path)
        self.processes = processes
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, job_workers),
            thread_name_prefix="nanoxbar-job")
        if health_rules is None:
            health_rules = default_server_rules()
        self.health = HealthMonitor(health_rules)
        self.recorder = MetricsRecorder(interval=obs_tick,
                                        health=self.health)
        self.recorder.start()

    @property
    def executor(self) -> ThreadPoolExecutor:
        return self._executor

    def run_submission(self, submission: Submission, emit: EmitFn,
                       trace_id: str | None = None) -> None:
        """Worker-thread body: compute one submission, emitting progress.

        ``trace_id`` (assigned by the job queue at the server boundary)
        is installed as this thread's ambient trace before any compute
        starts, so every span below — worker, engine batch, campaign
        point, pool shard — lands in the submitting job's trace.
        """
        token = tracing.set_current_trace(trace_id) \
            if trace_id is not None else None
        try:
            emit("running", None)
            with tracing.span("worker.submission", kind=submission.kind,
                              points=submission.points_total):
                try:
                    if submission.kind == "synthesis":
                        # Non-blocking handoff to the engine's dedicated
                        # batch thread; this worker thread just waits for
                        # the wave.
                        for result in self.engine.submit(
                                submission.jobs).result():
                            emit("point", job_result_record(result))
                    elif submission.kind == "faultsim":
                        for estimate in iter_campaign(
                                submission.spec, store=self.store,
                                processes=self.processes):
                            emit("point", fault_estimate_record(estimate))
                    elif submission.kind == "varsweep":
                        for estimate in iter_variation_campaign(
                                submission.spec, store=self.store,
                                processes=self.processes):
                            emit("point",
                                 variation_estimate_record(estimate))
                    elif submission.kind == "grid":
                        # The served grid drains in-process against the
                        # bridge's store; external `nanoxbar grid`
                        # workers on the same file join transparently
                        # through the claim protocol.
                        for row, verdict in iter_grid_points(
                                submission.grid, self.store,
                                worker="server"):
                            emit("point", grid_row_record(row, verdict))
                    else:  # pragma: no cover - parse_submission gates kinds
                        raise ValueError(
                            f"unknown kind {submission.kind!r}")
                except Exception as error:  # anything the job raised is sent to the client
                    emit("failed", f"{type(error).__name__}: {error}")
                else:
                    emit("done", None)
        finally:
            if token is not None:
                tracing.reset_current_trace(token)

    def stats(self) -> dict:
        """Engine hit/dedup statistics plus store occupancy."""
        latest = self.recorder.latest()
        return {
            "engine": self.engine.stats.as_dict(),
            "synthesis_cache_entries": len(self.engine.cache),
            "campaign_store_entries": len(self.store),
            "health": self.health.status(),
            "resources": latest["resources"] if latest else None,
        }

    def close(self) -> None:
        self.recorder.stop()
        self._executor.shutdown(wait=True)
        self.engine.close()
        self.store.close()
