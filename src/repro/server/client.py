"""Small stdlib HTTP client for the batch server.

Used by ``nanoxbar submit``, the server tests and ``bench_server.py`` —
one :class:`ServerClient` per server, one ``http.client`` connection per
request (the server closes connections after each exchange), chunked
decoding handled by the stdlib so :meth:`ServerClient.stream` yields
per-point records as the server computes them.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Any, Iterator


class ServerError(RuntimeError):
    """A non-2xx answer from the server (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServerClient:
    """Talks the :mod:`repro.server.protocol` vocabulary over HTTP.

    The submission/stream calls accept and return plain dicts in the
    protocol's JSON shapes — a submission is ``{"kind": "synthesis" |
    "faultsim" | "varsweep" | "grid", ...}`` and per-point records come
    back exactly as the server's record builders produce them.  Errors
    surface as :class:`ServerError` (carrying the HTTP status); network
    failures as the underlying ``OSError``/``HTTPException``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8351,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            parsed = json.loads(data.decode("utf-8")) if data else None
            if response.status >= 400:
                message = (parsed or {}).get("error", data.decode("utf-8"))
                raise ServerError(response.status, message)
            return parsed
        finally:
            conn.close()

    # -- endpoints --------------------------------------------------------
    def health(self) -> dict:
        """``/healthz``: liveness plus watchdog status (ok/degraded)."""
        return self._request("GET", "/healthz")

    def wait_healthy(self, deadline: float = 30.0,
                     interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until the server answers (startup races)."""
        limit = time.monotonic() + deadline
        while True:
            try:
                return self.health()
            except (OSError, HTTPException, ServerError):
                if time.monotonic() >= limit:
                    raise
                time.sleep(interval)

    def stats(self) -> dict:
        """``/api/stats``: engine/cache/store/health snapshot off-loop."""
        return self._request("GET", "/api/stats")

    def metrics(self) -> str:
        """Fetch ``/api/metrics`` — raw Prometheus text exposition."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", "/api/metrics")
            response = conn.getresponse()
            data = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServerError(response.status, data)
            return data
        finally:
            conn.close()

    def history(self, since: int = 0, limit: int | None = None,
                resolution: str | None = None) -> dict:
        """``/api/metrics/history``: recorder frames past a cursor.

        Returns ``{"frames": [...], "cursor": int, "interval": float}``;
        resume paging by passing the returned ``cursor`` back as
        ``since``.
        """
        path = f"/api/metrics/history?since={int(since)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        if resolution is not None:
            path += f"&resolution={resolution}"
        return self._request("GET", path)

    def stream_metrics(self, since: int = 0) -> Iterator[dict]:
        """Yield recorder frames live from the SSE endpoint.

        A minimal Server-Sent-Events parser: ``data:`` lines accumulate
        until a blank line terminates the event; ``id:``/``retry:`` and
        comment lines are bookkeeping, not payload.  Runs until the
        server shuts down or the caller stops iterating.
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/api/metrics/stream?since={int(since)}")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServerError(response.status,
                                  response.read().decode("utf-8"))
            data_lines: list[str] = []
            while True:
                raw = response.readline()
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:
                    if data_lines:
                        yield json.loads("\n".join(data_lines))
                        data_lines = []
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[5:].lstrip(" "))
                # id:/retry:/": comment" lines need no action here —
                # resumption state is the frame's own cursor field.
        finally:
            conn.close()

    def profile(self, seconds: float = 5.0,
                interval_ms: float = 5.0) -> str:
        """``/api/profile``: collapsed-stack text for a sampling window."""
        conn = HTTPConnection(self.host, self.port,
                              timeout=max(self.timeout, seconds + 30.0))
        try:
            conn.request("GET", f"/api/profile?seconds={seconds}"
                                f"&interval_ms={interval_ms}")
            response = conn.getresponse()
            data = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServerError(response.status, data)
            return data
        finally:
            conn.close()

    def dashboard(self) -> str:
        """Fetch the ``/dashboard`` HTML (smoke tests, curl parity)."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", "/dashboard")
            response = conn.getresponse()
            data = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServerError(response.status, data)
            return data
        finally:
            conn.close()

    def submit(self, payload: dict) -> dict:
        """Submit one job; returns ``{job_id, coalesced, state, ...}``."""
        return self._request("POST", "/api/submit", payload)

    def status(self, job_id: str) -> dict:
        """``/api/status/<id>``: queue state and progress for one job."""
        return self._request("GET", f"/api/status/{job_id}")

    def result(self, job_id: str, wait: bool = True) -> dict:
        """Fetch the full result (blocks server-side until completion)."""
        suffix = "" if wait else "?wait=0"
        return self._request("GET", f"/api/result/{job_id}{suffix}")

    def run(self, payload: dict) -> dict:
        """Submit and wait: the one-call convenience wrapper."""
        submitted = self.submit(payload)
        result = self.result(submitted["job_id"])
        result["coalesced"] = submitted["coalesced"]
        if result["state"] != "done":
            raise ServerError(500, result.get("error")
                              or f"job ended {result['state']}")
        return result

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield ``{"point": ...}`` records live, then the terminal line."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/api/stream/{job_id}")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read().decode("utf-8")
                try:
                    message = json.loads(data).get("error", data)
                except json.JSONDecodeError:
                    message = data
                raise ServerError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def shutdown(self) -> dict:
        """Ask the server to drain and stop."""
        return self._request("POST", "/api/shutdown")

    def wait_stopped(self, deadline: float = 30.0,
                     interval: float = 0.1) -> None:
        """Poll until the listener is gone (clean-shutdown checks)."""
        limit = time.monotonic() + deadline
        while time.monotonic() < limit:
            try:
                self.health()
            except (OSError, HTTPException):
                return
            time.sleep(interval)
        raise TimeoutError("server still answering after shutdown")
