"""The ``GET /dashboard`` page: one self-contained HTML string.

No external stylesheets, scripts, fonts or images — the CI smoke greps
the served page for ``http(s)://`` and fails on any hit, so everything
(styles, the SSE/polling client, canvas sparkline rendering) is inline.
SVG is avoided entirely because even its namespace declaration is a URL.

The page subscribes to ``GET /api/metrics/stream`` (SSE) and falls back
to polling ``GET /api/metrics/history?since=<cursor>`` if the stream
drops; frames are the JSON shape produced by
:class:`repro.obs.timeline.MetricsRecorder`.  Four live panels:
throughput (jobs/s), queue depth, synthesis cache hit-rate, and HTTP
p50/p99 — plus process CPU/RSS and the watchdog alert strip.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>nanoxbar live</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; background: #111418; color: #d7dce2;
         font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas,
               monospace; }
  header { display: flex; align-items: baseline; gap: 1em;
           padding: 10px 16px; border-bottom: 1px solid #262c33; }
  header h1 { font-size: 15px; margin: 0; color: #e8edf2;
              font-weight: 600; }
  #state { font-size: 12px; }
  #state.ok { color: #5fb870; }
  #state.degraded { color: #e0a53e; }
  #state.stale { color: #e06c5f; }
  #alerts { padding: 0 16px; color: #e0a53e; white-space: pre-wrap; }
  main { display: grid; gap: 12px; padding: 14px 16px;
         grid-template-columns: repeat(auto-fit, minmax(330px, 1fr)); }
  .panel { background: #171b20; border: 1px solid #262c33;
           border-radius: 6px; padding: 10px 12px; }
  .panel h2 { margin: 0 0 2px; font-size: 12px; font-weight: 600;
              color: #9aa4af; text-transform: uppercase;
              letter-spacing: .06em; }
  .value { font-size: 22px; color: #e8edf2; margin: 2px 0 6px; }
  .value small { font-size: 12px; color: #9aa4af; }
  canvas { width: 100%; height: 46px; display: block; }
  footer { padding: 8px 16px 14px; color: #6d7680; font-size: 12px; }
</style>
</head>
<body>
<header>
  <h1>nanoxbar live</h1>
  <span id="state" class="stale">connecting&hellip;</span>
  <span id="meta"></span>
</header>
<div id="alerts"></div>
<main>
  <div class="panel"><h2>throughput</h2>
    <div class="value"><span id="v-jobs">&ndash;</span>
      <small>jobs/s</small></div>
    <canvas id="c-jobs" height="46"></canvas></div>
  <div class="panel"><h2>queue depth</h2>
    <div class="value"><span id="v-depth">&ndash;</span>
      <small>jobs</small></div>
    <canvas id="c-depth" height="46"></canvas></div>
  <div class="panel"><h2>cache hit rate</h2>
    <div class="value"><span id="v-hit">&ndash;</span>
      <small>% of engine jobs</small></div>
    <canvas id="c-hit" height="46"></canvas></div>
  <div class="panel"><h2>http latency</h2>
    <div class="value"><span id="v-lat">&ndash;</span>
      <small>p50 / p99</small></div>
    <canvas id="c-lat" height="46"></canvas></div>
  <div class="panel"><h2>campaign points</h2>
    <div class="value"><span id="v-points">&ndash;</span>
      <small>points/s</small></div>
    <canvas id="c-points" height="46"></canvas></div>
  <div class="panel"><h2>process</h2>
    <div class="value"><span id="v-proc">&ndash;</span></div>
    <canvas id="c-proc" height="46"></canvas></div>
</main>
<footer>frames from /api/metrics/stream (SSE), fallback
/api/metrics/history &middot; cursor <span id="cursor">0</span></footer>
<script>
"use strict";
var MAX = 120;                      // frames kept client-side
var frames = [];
var cursor = 0;
var lastFrameAt = 0;

function sumSection(section, name, filter) {
  var total = 0, found = false;
  for (var key in section) {
    if (key !== name && key.indexOf(name + "{") !== 0) continue;
    if (filter && key.indexOf(filter) === -1) continue;
    var entry = section[key];
    total += (typeof entry === "number") ? entry
           : (entry.rate !== undefined ? entry.rate : entry.value);
    found = true;
  }
  return found ? total : null;
}
function sumDelta(section, name, filter) {
  var total = 0;
  for (var key in section) {
    if (key !== name && key.indexOf(name + "{") !== 0) continue;
    if (filter && key.indexOf(filter) === -1) continue;
    total += section[key].delta;
  }
  return total;
}
function histQ(section, name, q) {
  var worst = 0;
  for (var key in section) {
    if (key !== name && key.indexOf(name + "{") !== 0) continue;
    worst = Math.max(worst, section[key][q] || 0);
  }
  return worst;
}

function spark(id, series, color) {
  var canvas = document.getElementById(id);
  var width = canvas.clientWidth || 300;
  if (canvas.width !== width) canvas.width = width;
  var ctx = canvas.getContext("2d");
  var h = canvas.height;
  ctx.clearRect(0, 0, width, h);
  if (series.length < 2) return;
  var max = Math.max.apply(null, series), min = Math.min(0,
      Math.min.apply(null, series));
  var span = (max - min) || 1;
  ctx.beginPath();
  for (var i = 0; i < series.length; i++) {
    var x = i * (width - 2) / (MAX - 1) + 1;
    var y = h - 3 - (series[i] - min) / span * (h - 8);
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  }
  ctx.strokeStyle = color;
  ctx.lineWidth = 1.5;
  ctx.stroke();
}

function fmt(value, digits) {
  return value === null || value === undefined || isNaN(value)
    ? "\\u2013" : Number(value).toFixed(digits === undefined ? 1 : digits);
}

function seriesOf(fn) { return frames.map(fn); }

function redraw() {
  if (!frames.length) return;
  var last = frames[frames.length - 1];
  document.getElementById("cursor").textContent = last.cursor;

  var jobs = seriesOf(function (f) {
    return sumSection(f.counters, "server_jobs_total") || 0; });
  document.getElementById("v-jobs").textContent =
    fmt(jobs[jobs.length - 1], 2);
  spark("c-jobs", jobs, "#5fa8e0");

  var depth = seriesOf(function (f) {
    return sumSection(f.gauges, "server_queue_depth") || 0; });
  document.getElementById("v-depth").textContent =
    fmt(depth[depth.length - 1], 0);
  spark("c-depth", depth, "#e0a53e");

  var hit = seriesOf(function (f) {
    var hits = sumDelta(f.counters, "engine_cache_hits_total");
    var misses = sumDelta(f.counters, "engine_cache_misses_total");
    return (hits + misses) ? 100 * hits / (hits + misses) : null;
  });
  var lastHit = null;
  for (var i = hit.length - 1; i >= 0; i--)
    if (hit[i] !== null) { lastHit = hit[i]; break; }
  document.getElementById("v-hit").textContent = fmt(lastHit, 1);
  spark("c-hit", hit.map(function (v) { return v === null ? 0 : v; }),
        "#5fb870");

  var p99 = seriesOf(function (f) {
    return 1000 * histQ(f.histograms, "server_http_request_seconds",
                        "p99"); });
  var p50 = 1000 * histQ(last.histograms, "server_http_request_seconds",
                         "p50");
  document.getElementById("v-lat").textContent =
    fmt(p50, 1) + " / " + fmt(p99[p99.length - 1], 1) + " ms";
  spark("c-lat", p99, "#c77fd6");

  var points = seriesOf(function (f) {
    return sumSection(f.counters, "campaign_points_total") || 0; });
  document.getElementById("v-points").textContent =
    fmt(points[points.length - 1], 1);
  spark("c-points", points, "#5fd6c7");

  var rss = last.resources.rss_bytes / (1024 * 1024);
  var cpu = seriesOf(function (f) {
    return f.elapsed > 0 ? 100 *
      (sumSection(f.counters, "process_cpu_seconds_total") || 0) : 0; });
  document.getElementById("v-proc").textContent =
    fmt(cpu[cpu.length - 1], 0) + "% cpu, " + fmt(rss, 0) + " MiB rss";
  spark("c-proc", cpu, "#9aa4af");
}

function accept(frame) {
  if (frame.cursor <= cursor) return;
  cursor = frame.cursor;
  frames.push(frame);
  if (frames.length > MAX) frames.shift();
  lastFrameAt = Date.now();
  redraw();
  refreshHealth();
}

var healthPending = false;
function refreshHealth() {
  if (healthPending) return;
  healthPending = true;
  fetch("/healthz").then(function (r) { return r.json(); })
    .then(function (body) {
      healthPending = false;
      var state = document.getElementById("state");
      state.textContent = body.status;
      state.className = body.status === "ok" ? "ok" : "degraded";
      var alerts = body.alerts || [];
      document.getElementById("alerts").textContent = alerts.map(
        function (a) { return "\\u26a0 " + a.rule + ": " + a.message; }
      ).join("\\n");
    }).catch(function () { healthPending = false; });
}

function connect() {
  var source = new EventSource("/api/metrics/stream?since=" + cursor);
  source.onmessage = function (event) {
    accept(JSON.parse(event.data));
  };
  source.onerror = function () {
    source.close();
    setTimeout(poll, 1000);
  };
}
function poll() {
  fetch("/api/metrics/history?since=" + cursor)
    .then(function (r) { return r.json(); })
    .then(function (body) {
      (body.frames || []).forEach(accept);
      setTimeout(poll, 1000 * (body.interval || 1));
    })
    .catch(function () { setTimeout(poll, 2000); });
}
setInterval(function () {
  if (lastFrameAt && Date.now() - lastFrameAt > 10000) {
    var state = document.getElementById("state");
    state.textContent = "stale";
    state.className = "stale";
  }
}, 2000);
if (window.EventSource) connect(); else poll();
refreshHealth();
</script>
</body>
</html>
"""
