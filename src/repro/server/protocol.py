"""Wire format of the batch server: submissions in, per-point results out.

One JSON vocabulary shared by the asyncio app (:mod:`repro.server.app`),
the stdlib client (:mod:`repro.server.client`) and the CLI.  A client
submits one of the workload families::

    {"kind": "synthesis", "jobs": [{"bench": "xnor2"},
                                   {"label": "f", "n": 2, "bits": 6}],
     "strategies": ["dual", "pcircuit"]}

    {"kind": "faultsim", "n_values": [8], "k_values": [4, 8],
     "densities": [0.05], "trials": 200}

    {"kind": "varsweep", "bench": "xnor2", "sigmas": [0.2, 0.5],
     "crossbar_rows": 8, "crossbar_cols": 8, "trials": 100}

    {"kind": "grid", "config": {"name": "sweep", "family": "faultsim",
                                "grid": {"n": [8], "density": [0.05]},
                                "fixed": {"trials": 200}}}

and gets per-point JSON records back (one per synthesis job / campaign
grid point), streamed incrementally over the chunked endpoint.

Every submission normalises to a :class:`Submission` carrying a
**coalesce key**: a content address over what the computation depends on —
:meth:`repro.boolean.truthtable.TruthTable.content_hash` per synthesis
function (the same address the engine's NPN cache keys derive from) and
:meth:`~repro.faultlab.campaign.CampaignPoint.key` /
:meth:`~repro.varsim.campaign.VariationCampaignPoint.key` per campaign
point.  Concurrent identical submissions hash to the same key and share
one computation in the server's job queue.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..engine import (
    DEFAULT_STRATEGIES,
    FaultToleranceSpec,
    JobResult,
    SynthesisJob,
    known_strategies,
    lattice_to_text,
)
from ..engine.store import GridRow
from ..faultlab import CampaignSpec, PointEstimate
from ..grid import GridConfig, GridConfigError, GridPointError
from ..grid import config_from_dict as grid_config_from_dict
from ..grid import point_key as grid_point_key
from ..varsim import VariationCampaignSpec, VariationPointEstimate

#: The workload families the server fronts.
KINDS = ("synthesis", "faultsim", "varsweep", "grid")


class ProtocolError(ValueError):
    """A malformed submission (maps to HTTP 400)."""


@dataclass(frozen=True)
class Submission:
    """One normalised, runnable request.

    ``jobs`` is set for synthesis submissions, ``spec`` for the two
    campaign families and ``grid`` for declarative grid configs;
    ``echo`` is the normalised request as the result payload repeats it
    back.
    """

    kind: str
    coalesce_key: str
    points_total: int
    jobs: tuple[SynthesisJob, ...] | None = None
    spec: CampaignSpec | VariationCampaignSpec | None = None
    grid: GridConfig | None = None
    echo: dict | None = None


def _require(payload: dict, field: str) -> Any:
    if field not in payload:
        raise ProtocolError(f"submission misses required field {field!r}")
    return payload[field]


def _digest(kind: str, parts: list[str]) -> str:
    return f"{kind}:{hashlib.sha256('|'.join(parts).encode()).hexdigest()}"


# ----------------------------------------------------------------------
# Submissions
# ----------------------------------------------------------------------
def _synthesis_job_from_json(entry: Any) -> SynthesisJob:
    if not isinstance(entry, dict):
        raise ProtocolError("synthesis jobs must be JSON objects")
    strategies = tuple(entry.get("strategies", DEFAULT_STRATEGIES))
    unknown = set(strategies) - set(known_strategies())
    if unknown:
        raise ProtocolError(f"unknown strategies {sorted(unknown)}")
    fault_tolerance = None
    if "fault_tolerance" in entry:
        ft = entry["fault_tolerance"]
        if not isinstance(ft, dict):
            raise ProtocolError("fault_tolerance must be a JSON object")
        try:
            fault_tolerance = FaultToleranceSpec(**ft)
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"bad fault_tolerance spec: {error}") from error
    if "bench" in entry:
        from ..eval.benchsuite import by_name

        try:
            benchmark = by_name(str(entry["bench"]))
        except KeyError as error:
            raise ProtocolError(str(error.args[0])) from error
        return SynthesisJob.from_function(
            benchmark.function, benchmark.name, strategies, fault_tolerance)
    try:
        return SynthesisJob(
            label=str(_require(entry, "label")),
            n=int(_require(entry, "n")),
            bits=int(_require(entry, "bits")),
            strategies=strategies,
            fault_tolerance=fault_tolerance,
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad synthesis job: {error}") from error


def _parse_synthesis(payload: dict) -> Submission:
    entries = _require(payload, "jobs")
    if not isinstance(entries, list) or not entries:
        raise ProtocolError("synthesis submissions need a non-empty "
                            "'jobs' list")
    shared = {}
    for field in ("strategies", "fault_tolerance"):
        if field in payload:
            shared[field] = payload[field]
    jobs = tuple(_synthesis_job_from_json({**shared, **entry})
                 for entry in entries)
    # The coalesce key addresses the computation: the function *content*
    # (not how the client spelled it), the strategy portfolio and any
    # fault-tolerance post-processing, in submission order.
    parts = [
        f"{job.label}/{job.n}/{job.table.content_hash()}"
        f"/{','.join(job.strategies)}/{job.fault_tolerance!r}"
        for job in jobs
    ]
    echo = {"kind": "synthesis",
            "jobs": [{"label": job.label, "n": job.n} for job in jobs]}
    return Submission(kind="synthesis",
                      coalesce_key=_digest("synthesis", parts),
                      points_total=len(jobs), jobs=jobs, echo=echo)


_FAULTSIM_FIELDS = {
    "n_values", "k_values", "densities", "models", "strategies", "trials",
    "seed", "stuck_open_fraction", "batch_size",
}


def _parse_faultsim(payload: dict) -> Submission:
    kwargs = {key: value for key, value in payload.items()
              if key in _FAULTSIM_FIELDS}
    kwargs["n_values"] = tuple(_require(payload, "n_values"))
    kwargs["k_values"] = tuple(_require(payload, "k_values"))
    kwargs["densities"] = tuple(_require(payload, "densities"))
    for field in ("models", "strategies"):
        if field in kwargs:
            kwargs[field] = tuple(kwargs[field])
    try:
        spec = CampaignSpec(**kwargs)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad faultsim spec: {error}") from error
    points = spec.points()
    parts = [point.key() for point in points]
    parts.append(f"k={','.join(str(k) for k in spec.k_values)}")
    echo = {"kind": "faultsim", "n_values": list(spec.n_values),
            "k_values": list(spec.k_values),
            "densities": list(spec.densities),
            "models": list(spec.models),
            "strategies": list(spec.strategies), "trials": spec.trials,
            "seed": spec.seed}
    return Submission(kind="faultsim",
                      coalesce_key=_digest("faultsim", parts),
                      points_total=len(points), spec=spec, echo=echo)


_VARSWEEP_FIELDS = {
    "sigmas", "crossbar_rows", "crossbar_cols", "trials", "seed",
    "nominal", "batch_size",
}


def _parse_varsweep(payload: dict) -> Submission:
    kwargs = {key: value for key, value in payload.items()
              if key in _VARSWEEP_FIELDS}
    kwargs["sigmas"] = tuple(_require(payload, "sigmas"))
    if "bench" in payload:
        from ..eval.benchsuite import by_name
        from ..synthesis import synthesize_lattice_dual

        try:
            benchmark = by_name(str(payload["bench"]))
        except KeyError as error:
            raise ProtocolError(str(error.args[0])) from error
        lattice = synthesize_lattice_dual(benchmark.function.on)
        bench_name = benchmark.name
    else:
        raise ProtocolError("varsweep submissions need a 'bench' name")
    kwargs.setdefault("crossbar_rows", max(16, lattice.rows))
    kwargs.setdefault("crossbar_cols", max(16, lattice.cols))
    try:
        spec = VariationCampaignSpec(lattice=lattice, **kwargs)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad varsweep spec: {error}") from error
    points = spec.points()
    echo = {"kind": "varsweep", "bench": bench_name,
            "sigmas": list(spec.sigmas),
            "crossbar_rows": spec.crossbar_rows,
            "crossbar_cols": spec.crossbar_cols, "trials": spec.trials,
            "seed": spec.seed}
    return Submission(kind="varsweep",
                      coalesce_key=_digest(
                          "varsweep", [point.key() for point in points]),
                      points_total=len(points), spec=spec, echo=echo)


def _parse_grid(payload: dict) -> Submission:
    raw = _require(payload, "config")
    if not isinstance(raw, dict):
        raise ProtocolError("grid submissions need a 'config' object")
    try:
        config = grid_config_from_dict(raw)
        keys = [grid_point_key(config.family, params)
                for params in config.expand()]
    except (GridConfigError, GridPointError) as error:
        raise ProtocolError(f"bad grid config: {error}") from error
    echo = {"kind": "grid", "name": config.name, "family": config.family,
            "points": len(keys)}
    # Content over position: two configs sweeping the same points coalesce
    # regardless of axis order (the same sort grid_id_for applies).
    return Submission(kind="grid",
                      coalesce_key=_digest(
                          "grid", [config.family, *sorted(keys)]),
                      points_total=len(keys), grid=config, echo=echo)


def parse_submission(payload: Any) -> Submission:
    """Normalise one submitted JSON object (raises :class:`ProtocolError`)."""
    if not isinstance(payload, dict):
        raise ProtocolError("a submission must be a JSON object")
    kind = _require(payload, "kind")
    if kind == "synthesis":
        return _parse_synthesis(payload)
    if kind == "faultsim":
        return _parse_faultsim(payload)
    if kind == "varsweep":
        return _parse_varsweep(payload)
    if kind == "grid":
        return _parse_grid(payload)
    raise ProtocolError(f"unknown submission kind {kind!r} "
                        f"(expected one of {', '.join(KINDS)})")


# ----------------------------------------------------------------------
# Per-point result records
# ----------------------------------------------------------------------
def job_result_record(result: JobResult) -> dict:
    """One synthesis answer as a JSON record (lattice in text form)."""
    return {
        "label": result.label,
        "n": result.n,
        "strategy": result.strategy,
        "rows": result.shape[0],
        "cols": result.shape[1],
        "area": result.area,
        "cache_hit": result.cache_hit,
        "lattice": lattice_to_text(result.lattice),
    }


def fault_estimate_record(estimate: PointEstimate) -> dict:
    """One faultsim grid-point answer as a JSON record."""
    point = estimate.point
    return {
        "model": point.model,
        "n": point.n,
        "density": point.density,
        "strategy": point.strategy,
        "trials": estimate.trials,
        "k_histogram": list(estimate.k_histogram),
        "mean_k": estimate.mean_k,
        "cache_hit": estimate.cache_hit,
    }


def variation_estimate_record(estimate: VariationPointEstimate) -> dict:
    """One varsweep sigma-point answer as a JSON record."""
    return {
        "sigma": estimate.point.sigma,
        "trials": estimate.trials,
        "aware_delays": list(estimate.aware_delays),
        "oblivious_delays": list(estimate.oblivious_delays),
        "aware_mean": estimate.aware_mean,
        "oblivious_mean": estimate.oblivious_mean,
        "cache_hit": estimate.cache_hit,
    }


def grid_row_record(row: GridRow, verdict: str) -> dict:
    """One terminal grid row as a JSON record."""
    return {
        "point_key": row.point_key,
        "params": row.params,
        "status": row.status,
        "attempts": row.attempts,
        "result": row.result,
        "error": row.error,
        "cache_hit": verdict == "cached",
    }


def dumps(obj: Any) -> bytes:
    """Canonical compact JSON bytes (the one encoder both sides use)."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
