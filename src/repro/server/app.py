"""The asyncio HTTP/JSON front-end: ``nanoxbar serve``.

A stdlib-only batch server over ``asyncio.start_server`` — one
connection per request, JSON bodies, chunked transfer encoding for the
incremental per-point stream.  Endpoints:

==========================  ==========================================
``GET  /healthz``           liveness probe (also reports queue depth)
``GET  /api/stats``         queue + engine statistics, metrics snapshot
                            and recent trace spans
``GET  /api/metrics``       Prometheus text exposition of every counter,
                            gauge and latency histogram
``GET  /api/metrics/history``  recorder frames since a cursor
                            (``?since=&limit=&resolution=fine|coarse``)
``GET  /api/metrics/stream``   Server-Sent Events: one event per
                            recorder frame (``?since=`` resumes)
``GET  /dashboard``         self-contained live HTML dashboard
``GET  /api/profile``       sampling profiler over a window
                            (``?seconds=&interval_ms=&format=json``)
``POST /api/submit``        submit a job; returns ``job_id`` (+ whether
                            it coalesced onto an in-flight twin)
``GET  /api/status/<id>``   lifecycle snapshot, points done/total
``GET  /api/result/<id>``   full result; blocks until the job completes
                            (``?wait=0`` returns 409 while running)
``GET  /api/stream/<id>``   chunked stream: one JSON line per point as
                            each completes, then a terminal status line
``POST /api/shutdown``      graceful stop (drain jobs, close stores)
==========================  ==========================================

The server is deliberately minimal — request coalescing, the worker
bridge and the wire format live in their own modules — but it is a real
HTTP/1.1 peer: ``curl`` works against every endpoint above.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from urllib.parse import parse_qs, urlsplit

from ..obs import metrics, tracing
from ..obs.sampler import sample_for
from .dashboard import DASHBOARD_HTML
from .protocol import ProtocolError, dumps, parse_submission
from .queue import JobQueue, ServedJob
from .worker import WorkerBridge

#: Largest accepted request body (a synthesis batch is a few KB).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: How long one request's head+body may take to arrive.  Responses are
#: unbounded (a result wait can be long); this only stops an idle or
#: trickling connection from pinning a handler — and the shutdown drain —
#: forever.
REQUEST_READ_TIMEOUT = 60.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Prometheus text exposition format version served on ``/api/metrics``.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Per-handler request info for the HTTP latency histogram.  A
#: contextvar because handlers are concurrent asyncio tasks: each task
#: sees only its own request.
_REQUEST: contextvars.ContextVar[dict | None] = contextvars.ContextVar(
    "nanoxbar_http_request", default=None)

#: Endpoints kept as-is in the ``endpoint`` label; job-scoped paths are
#: collapsed to their prefix so the label set stays bounded.
_KNOWN_ENDPOINTS = frozenset({
    "/healthz", "/api/stats", "/api/metrics", "/api/metrics/history",
    "/api/metrics/stream", "/dashboard", "/api/profile", "/api/submit",
    "/api/shutdown",
})
_PREFIX_ENDPOINTS = ("/api/status/", "/api/result/", "/api/stream/")


def _endpoint_label(path: str) -> str:
    for prefix in _PREFIX_ENDPOINTS:
        if path.startswith(prefix):
            return prefix.rstrip("/")
    return path if path in _KNOWN_ENDPOINTS else "other"


def _observe_http(status: int) -> None:
    """Record one request's latency; first terminal response wins."""
    info = _REQUEST.get()
    if info is None:
        return
    _REQUEST.set(None)
    metrics.registry().histogram(
        "server_http_request_seconds",
        "HTTP request latency by endpoint and status",
        labels={"endpoint": info["endpoint"], "status": str(status)},
    ).observe(time.perf_counter() - info["start"])


def _head(status: int, extra: str = "",
          content_type: str = "application/json") -> bytes:
    return (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Connection: close\r\n{extra}\r\n").encode()


class _BodyTooLarge(Exception):
    """Request declared a body beyond ``MAX_BODY_BYTES`` (HTTP 413)."""


class _BadRequest(Exception):
    """A malformed request head (HTTP 400)."""


class BatchServer:
    """One serving process: listener + queue + worker bridge.

    Args:
        host/port: bind address (``port=0`` picks an ephemeral port,
            published on ``self.port`` once started).
        cache_path: SQLite file shared by the synthesis cache and the
            campaign store (``":memory:"`` for ephemeral).
        processes: pool width each job shards over.
        job_workers: how many jobs may compute concurrently.
        obs_tick: metrics-recorder tick interval in seconds (``None``
            defers to ``NANOXBAR_OBS_TICK`` / the 1s default).
        health_rules: watchdog rules for the bridge's health monitor
            (defaults to :func:`~repro.obs.health.default_server_rules`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8351,
                 cache_path: str = ":memory:", processes: int = 1,
                 job_workers: int = 2, obs_tick: float | None = None,
                 health_rules=None):
        self.host = host
        self.port = port
        self.cache_path = cache_path
        self.processes = processes
        self.job_workers = job_workers
        self.obs_tick = obs_tick
        self.health_rules = health_rules
        self.bridge: WorkerBridge | None = None
        self.queue: JobQueue | None = None
        self.ready = threading.Event()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.bridge = WorkerBridge(cache_path=self.cache_path,
                                   processes=self.processes,
                                   job_workers=self.job_workers,
                                   obs_tick=self.obs_tick,
                                   health_rules=self.health_rules)
        self.queue = JobQueue(self.bridge, self._loop)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_BODY_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        self.ready.set()

    async def serve_forever(self) -> None:
        """Serve until a shutdown request (or :meth:`request_stop`)."""
        assert self._stop is not None
        await self._stop.wait()
        self._server.close()
        await self._server.wait_closed()
        # Before 3.12 wait_closed() does not wait for connection
        # handlers, and a handler mid-submit can add dispatch tasks
        # behind any single snapshot — so drain handlers *and* queue
        # tasks together until quiescent, then retire the compute bridge.
        current = asyncio.current_task()
        while True:
            pending = [task for task in (*self._handlers,
                                         *self.queue.tasks())
                       if task is not current]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        await self._loop.run_in_executor(None, self.bridge.close)

    async def run(self) -> None:
        await self.start()
        await self.serve_forever()

    def request_stop(self) -> None:
        """Thread-safe graceful-stop trigger."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    # -- request plumbing -------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, query, body = request
                _REQUEST.set({"endpoint": _endpoint_label(path),
                              "start": time.perf_counter()})
                await self._route(writer, method, path, query, body)
        except asyncio.TimeoutError:
            pass  # trickling body: drop the connection like a broken peer
        except _BadRequest as error:
            await self._respond(writer, 400, {"error": str(error.args[0])})
        except _BodyTooLarge as error:
            await self._respond(writer, 413, {
                "error": f"request body of {error.args[0]} bytes exceeds "
                         f"the {MAX_BODY_BYTES}-byte limit"})
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except Exception as error:  # last-resort 500
            try:
                await self._respond(writer, 500,
                                    {"error": f"internal error: {error}"})
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                          REQUEST_READ_TIMEOUT)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                asyncio.TimeoutError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        declared = headers.get("content-length", "0") or "0"
        try:
            length = int(declared)
        except ValueError:
            raise _BadRequest(
                f"unparseable Content-Length {declared!r}") from None
        if length < 0:
            raise _BadRequest(f"negative Content-Length {declared!r}")
        if length > MAX_BODY_BYTES:
            raise _BodyTooLarge(length)
        body = b""
        if length:
            body = await asyncio.wait_for(reader.readexactly(length),
                                          REQUEST_READ_TIMEOUT)
        parts = urlsplit(target)
        query = {key: values[-1]
                 for key, values in parse_qs(parts.query).items()}
        return method.upper(), parts.path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict) -> None:
        body = dumps(payload) + b"\n"
        writer.write(_head(status, f"Content-Length: {len(body)}\r\n"))
        writer.write(body)
        _observe_http(status)
        await writer.drain()

    async def _respond_text(self, writer: asyncio.StreamWriter, status: int,
                            text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        writer.write(_head(status, f"Content-Length: {len(body)}\r\n",
                           content_type=content_type))
        writer.write(body)
        _observe_http(status)
        await writer.drain()

    # -- routing ----------------------------------------------------------
    async def _route(self, writer, method: str, path: str,
                     query: dict, body: bytes) -> None:
        if path == "/healthz" and method == "GET":
            # Degraded still answers 200 — liveness and health are
            # different questions; the body carries the watchdog verdict.
            health = self.bridge.health.status()
            await self._respond(writer, 200, {
                **health,
                **self.queue.snapshot(),
            })
        elif path == "/api/stats" and method == "GET":
            # The queue snapshot is loop-side state; the bridge half
            # touches SQLite (store/cache occupancy counts), so it runs
            # in an executor instead of blocking the event loop.
            queue_snapshot = self.queue.snapshot()
            extra = await self._loop.run_in_executor(None,
                                                     self._stats_payload)
            await self._respond(writer, 200, {
                "queue": queue_snapshot,
                **extra,
            })
        elif path == "/api/metrics" and method == "GET":
            await self._respond_text(
                writer, 200, metrics.registry().render_prometheus(),
                METRICS_CONTENT_TYPE)
        elif path == "/api/metrics/history" and method == "GET":
            await self._history(writer, query)
        elif path == "/api/metrics/stream" and method == "GET":
            await self._metrics_stream(writer, query)
        elif path == "/dashboard" and method == "GET":
            await self._respond_text(writer, 200, DASHBOARD_HTML,
                                     "text/html; charset=utf-8")
        elif path == "/api/profile" and method == "GET":
            await self._profile(writer, query)
        elif path == "/api/submit":
            if method != "POST":
                await self._respond(writer, 405,
                                    {"error": "submit is POST-only"})
                return
            await self._submit(writer, body)
        elif path.startswith("/api/status/") and method == "GET":
            await self._with_job(writer, path, self._status)
        elif path.startswith("/api/result/") and method == "GET":
            wait = query.get("wait", "1") != "0"
            await self._with_job(
                writer, path,
                lambda w, job: self._result(w, job, wait))
        elif path.startswith("/api/stream/") and method == "GET":
            await self._with_job(writer, path, self._stream)
        elif path == "/api/shutdown" and method == "POST":
            await self._respond(writer, 200, {"status": "stopping"})
            self._stop.set()
        else:
            await self._respond(writer, 404,
                                {"error": f"no route for {method} {path}"})

    async def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await self._respond(writer, 400,
                                {"error": f"bad JSON body: {error}"})
            return
        try:
            submission = parse_submission(payload)
        except ProtocolError as error:
            await self._respond(writer, 400, {"error": str(error)})
            return
        job, coalesced = self.queue.submit(submission)
        await self._respond(writer, 202, {
            "job_id": job.job_id,
            "coalesced": coalesced,
            "state": job.state,
            "points_total": submission.points_total,
            "trace_id": job.trace_id,
        })

    def _stats_payload(self) -> dict:
        """The blocking half of ``/api/stats`` (runs off the loop)."""
        return {
            **self.bridge.stats(),
            "metrics": metrics.registry().snapshot(),
            "recent_spans": tracing.recent_spans(limit=50),
        }

    async def _with_job(self, writer, path: str, handler) -> None:
        job_id = path.rsplit("/", 1)[-1]
        job = self.queue.get(job_id)
        if job is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"})
            return
        await handler(writer, job)

    async def _status(self, writer, job: ServedJob) -> None:
        await self._respond(writer, 200, job.status())

    async def _result(self, writer, job: ServedJob, wait: bool) -> None:
        if wait:
            await job.wait()
        if not job.complete:
            await self._respond(writer, 409, {
                "error": f"job {job.job_id} is still {job.state}",
                **job.status(),
            })
            return
        await self._respond(writer, 200, job.result())

    async def _stream(self, writer, job: ServedJob) -> None:
        writer.write(_head(200, "Transfer-Encoding: chunked\r\n"))
        await writer.drain()

        async def chunk(record: dict) -> None:
            data = dumps(record) + b"\n"
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()

        async for record in job.stream():
            await chunk({"point": record})
        await chunk({"state": job.state, "error": job.error,
                     "points_total": job.submission.points_total})
        writer.write(b"0\r\n\r\n")
        _observe_http(200)
        await writer.drain()

    # -- live observability ------------------------------------------------
    @staticmethod
    def _query_number(query: dict, key: str, default: float,
                      lo: float, hi: float) -> float:
        try:
            value = float(query.get(key, default))
        except (TypeError, ValueError):
            raise _BadRequest(
                f"unparseable {key}={query.get(key)!r}") from None
        return min(hi, max(lo, value))

    async def _history(self, writer, query: dict) -> None:
        """``GET /api/metrics/history``: recorder frames past a cursor."""
        recorder = self.bridge.recorder
        since = int(self._query_number(query, "since", 0, 0, 1 << 62))
        limit = None
        if "limit" in query:
            limit = int(self._query_number(query, "limit", 0, 1, 100_000))
        resolution = query.get("resolution", "fine")
        if resolution not in ("fine", "coarse"):
            await self._respond(writer, 400, {
                "error": f"resolution must be fine|coarse, "
                         f"not {resolution!r}"})
            return
        frames = recorder.history(since=since, limit=limit,
                                  resolution=resolution)
        await self._respond(writer, 200, {
            "frames": frames,
            "cursor": recorder.cursor,
            "interval": recorder.interval,
            "resolution": resolution,
        })

    async def _metrics_stream(self, writer, query: dict) -> None:
        """``GET /api/metrics/stream``: frames as Server-Sent Events.

        Rides the same chunked-transfer machinery as the per-job stream;
        each recorder frame becomes one ``id:``/``data:`` event, so
        ``EventSource`` reconnects can resume losslessly from
        ``?since=<last id>``.  The poll loop watches ``self._stop`` so a
        graceful shutdown is not held open by attached dashboards.
        """
        recorder = self.bridge.recorder
        cursor = int(self._query_number(query, "since", 0, 0, 1 << 62))
        writer.write(_head(200, "Transfer-Encoding: chunked\r\n"
                                "Cache-Control: no-store\r\n",
                           content_type="text/event-stream"))
        _observe_http(200)
        await writer.drain()

        readers = metrics.registry().gauge(
            "server_sse_readers", "attached /api/metrics/stream clients")
        readers.inc()

        async def chunk(text: str) -> None:
            data = text.encode("utf-8")
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()

        poll = min(max(recorder.interval, 0.05), 0.25)
        idle = 0.0
        try:
            await chunk("retry: 2000\n\n")
            while not self._stop.is_set():
                frames = recorder.history(since=cursor)
                for frame in frames:
                    cursor = frame["cursor"]
                    await chunk(f"id: {frame['cursor']}\n"
                                f"data: {json.dumps(frame)}\n\n")
                if frames:
                    idle = 0.0
                else:
                    idle += poll
                    if idle >= 15.0:  # keep proxies from reaping us
                        idle = 0.0
                        await chunk(": keepalive\n\n")
                await asyncio.sleep(poll)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # reader went away; nothing left to stream to
        finally:
            readers.dec()

    async def _profile(self, writer, query: dict) -> None:
        """``GET /api/profile``: sample the process for a window."""
        seconds = self._query_number(query, "seconds", 5.0, 0.05, 60.0)
        interval = self._query_number(query, "interval_ms", 5.0,
                                      1.0, 1000.0) / 1000.0
        fmt = query.get("format", "collapsed")
        if fmt not in ("collapsed", "json"):
            await self._respond(writer, 400, {
                "error": f"format must be collapsed|json, not {fmt!r}"})
            return
        report = await self._loop.run_in_executor(
            None, lambda: sample_for(seconds, interval=interval))
        if fmt == "json":
            await self._respond(writer, 200, report.as_dict())
        else:
            await self._respond_text(writer, 200, report.collapsed(),
                                     "text/plain; charset=utf-8")


class ServerHandle:
    """A server running on a background daemon thread (tests, benches)."""

    def __init__(self, server: BatchServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - drain hang guard
            raise RuntimeError("server thread failed to stop in time")


def serve_in_thread(**kwargs) -> ServerHandle:
    """Start a :class:`BatchServer` on a daemon thread; wait until ready.

    The in-process twin of ``nanoxbar serve`` — tests and benchmarks get
    a real HTTP listener (ephemeral port by default) without managing a
    subprocess.
    """
    kwargs.setdefault("port", 0)
    server = BatchServer(**kwargs)
    thread = threading.Thread(target=lambda: asyncio.run(server.run()),
                              name="nanoxbar-serve", daemon=True)
    thread.start()
    if not server.ready.wait(timeout=30.0):  # pragma: no cover - startup
        raise RuntimeError("server failed to start in time")
    return ServerHandle(server, thread)
