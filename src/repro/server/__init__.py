"""Async batch-serving front-end for the three workload families.

The ROADMAP north-star is a production-scale service; this package is its
front door.  ``nanoxbar serve`` exposes the :mod:`repro.engine` synthesis
batches, :mod:`repro.faultlab` fault campaigns and :mod:`repro.varsim`
variation campaigns as one stdlib-only asyncio HTTP/JSON server:

* :mod:`repro.server.protocol` — the JSON vocabulary and the
  content-addressed coalesce keys (``TruthTable.content_hash`` /
  campaign point keys);
* :mod:`repro.server.queue`    — the async job queue; concurrent
  identical submissions share one computation;
* :mod:`repro.server.worker`   — the bridge running pool-sharded jobs
  off the event loop, streaming per-point records back;
* :mod:`repro.server.app`      — the HTTP listener
  (submit/status/result/stream/stats + health probe);
* :mod:`repro.server.client`   — the stdlib client the CLI, tests and
  benchmarks drive the server with.

Quickstart::

    from repro.server import serve_in_thread, ServerClient

    handle = serve_in_thread(processes=2)
    client = ServerClient(port=handle.port)
    result = client.run({"kind": "synthesis",
                         "jobs": [{"bench": "xnor2"}]})
    print(result["points"][0]["lattice"])
    handle.stop()

The same server runs standalone as ``nanoxbar serve`` and is driven from
the shell by ``nanoxbar submit``.
"""

from .app import BatchServer, ServerHandle, serve_in_thread
from .client import ServerClient, ServerError
from .protocol import (
    KINDS,
    ProtocolError,
    Submission,
    fault_estimate_record,
    job_result_record,
    parse_submission,
    variation_estimate_record,
)
from .queue import JobQueue, ServedJob
from .worker import WorkerBridge

__all__ = [
    "BatchServer",
    "JobQueue",
    "KINDS",
    "ProtocolError",
    "ServedJob",
    "ServerClient",
    "ServerError",
    "ServerHandle",
    "Submission",
    "WorkerBridge",
    "fault_estimate_record",
    "job_result_record",
    "parse_submission",
    "serve_in_thread",
    "variation_estimate_record",
]
