"""Diode-based (two-terminal) crossbar arrays (Section III-A, Fig. 3).

Diode-resistor logic: the array has one horizontal nanowire (row) per
product of the SOP cover and one vertical nanowire (column) per distinct
literal, plus one extra output column.  A programmed crosspoint places a
diode between a product row and a literal column; the row computes the
wired-AND of its connected literal columns, and the output column computes
the wired-OR of all product rows.

Size formula (Fig. 3): ``rows = #products(f)``,
``cols = #distinct-literals(f) + 1`` — optimal for a given SOP cover.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..boolean.cover import Cover
from ..boolean.cube import Literal
from ..boolean.truthtable import TruthTable


class DiodeCrossbar:
    """A diode crossbar programmed to implement one SOP cover."""

    def __init__(self, cover: Cover):
        if cover.num_products == 0:
            raise ValueError(
                "a diode array needs at least one product; constant-0 needs no array"
            )
        self.cover = cover
        self.n = cover.n
        self.literals: list[Literal] = cover.distinct_literals()
        self._literal_col = {lit: j for j, lit in enumerate(self.literals)}
        # connections[r][c] == True iff a diode joins product row r to
        # literal column c.
        self.connections: list[list[bool]] = []
        for cube in cover:
            row = [False] * len(self.literals)
            for lit in cube.literals():
                row[self._literal_col[lit]] = True
            self.connections.append(row)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Product rows (horizontal nanowires)."""
        return len(self.connections)

    @property
    def num_cols(self) -> int:
        """Literal columns plus the output column."""
        return len(self.literals) + 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def area(self) -> int:
        return self.num_rows * self.num_cols

    @property
    def num_crosspoints_programmed(self) -> int:
        """Programmed diodes, including the row-to-output junctions."""
        return sum(sum(row) for row in self.connections) + self.num_rows

    def __repr__(self) -> str:
        return f"DiodeCrossbar({self.num_rows}x{self.num_cols}, n={self.n})"

    # ------------------------------------------------------------------
    def row_value(self, r: int, assignment: int,
                  connection_override: Callable[[int, int, bool], bool] | None = None
                  ) -> bool:
        """Wired-AND of the literal columns connected to row ``r``."""
        for c, lit in enumerate(self.literals):
            connected = self.connections[r][c]
            if connection_override is not None:
                connected = connection_override(r, c, connected)
            if connected and not lit.evaluate(assignment):
                return False
        return True

    def evaluate(self, assignment: int,
                 connection_override: Callable[[int, int, bool], bool] | None = None
                 ) -> bool:
        """Wired-OR of the product rows."""
        return any(
            self.row_value(r, assignment, connection_override)
            for r in range(self.num_rows)
        )

    def to_truth_table(self) -> TruthTable:
        return TruthTable.from_callable(self.n, self.evaluate)

    def implements(self, table: TruthTable) -> bool:
        if table.n != self.n:
            raise ValueError("variable space mismatch")
        return self.to_truth_table() == table

    # ------------------------------------------------------------------
    def render(self, names: Sequence[str] | None = None) -> str:
        """ASCII array: one line per product row, ``X`` marks a diode."""
        headers = [lit.name(names) for lit in self.literals] + ["out"]
        width = max(len(h) for h in headers)
        lines = [" ".join(h.rjust(width) for h in headers)]
        for row in self.connections:
            marks = ["X" if cell else "." for cell in row] + ["X"]
            lines.append(" ".join(m.rjust(width) for m in marks))
        return "\n".join(lines)


def diode_size_formula(cover: Cover) -> tuple[int, int]:
    """Fig. 3 size formula for diode arrays: (products, literals + 1)."""
    return cover.num_products, cover.num_distinct_literals + 1
