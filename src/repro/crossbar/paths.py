"""Path enumeration and percolation connectivity on lattice grids.

Two views of four-terminal lattice semantics (Section III-B, Fig. 4):

* *operational*: for a concrete input, a site conducts or not, and the
  lattice output is whether the top edge is 4-connected to the bottom edge
  (:func:`top_bottom_connected`);
* *symbolic*: the implemented function is the OR over all self-avoiding
  top-to-bottom paths of the AND of the site literals along the path
  (:func:`enumerate_top_bottom_paths`).

The classical site-percolation duality links success and failure: the top
and bottom are disconnected exactly when an 8-connected path of OFF sites
joins the left and right edges (:func:`left_right_blocked_8`).  The duality
is both a test invariant and the off-set witness in the SAT encoding of
optimal lattice synthesis.

The scalar functions here are the **bit-exact references** for the batched
kernels of :mod:`repro.xbareval.connectivity`
(:func:`~repro.xbareval.top_bottom_connected_batch`,
:func:`~repro.xbareval.left_right_blocked_8_batch`), which answer the same
questions for whole ``(B, R, C)`` batches per call; hot paths should go
through those, with these retained for single-grid checks and the
property suite (``tests/test_xbareval.py``).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .geometry import DisjointSet, neighbors4, neighbors8

Grid = Sequence[Sequence[bool]]


def top_bottom_connected(grid: Grid) -> bool:
    """True iff some ON site in row 0 is 4-connected to an ON site in the
    last row through ON sites."""
    rows = len(grid)
    if rows == 0:
        return False
    cols = len(grid[0])
    if cols == 0:
        return False
    top = rows * cols
    bottom = top + 1
    ds = DisjointSet(rows * cols + 2)
    for r in range(rows):
        for c in range(cols):
            if not grid[r][c]:
                continue
            idx = r * cols + c
            if r == 0:
                ds.union(idx, top)
            if r == rows - 1:
                ds.union(idx, bottom)
            # union with left and up neighbours only (each pair once)
            if c > 0 and grid[r][c - 1]:
                ds.union(idx, idx - 1)
            if r > 0 and grid[r - 1][c]:
                ds.union(idx, idx - cols)
    return ds.connected(top, bottom)


def left_right_blocked_8(grid: Grid) -> bool:
    """True iff an 8-connected path of OFF sites joins the left and right
    edges (the percolation dual of a top-bottom ON disconnection)."""
    rows = len(grid)
    if rows == 0:
        return True
    cols = len(grid[0])
    if cols == 0:
        return True
    left = rows * cols
    right = left + 1
    ds = DisjointSet(rows * cols + 2)
    for r in range(rows):
        for c in range(cols):
            if grid[r][c]:
                continue
            idx = r * cols + c
            if c == 0:
                ds.union(idx, left)
            if c == cols - 1:
                ds.union(idx, right)
            for nr, nc in neighbors8(rows, cols, r, c):
                if (nr, nc) < (r, c) and not grid[nr][nc]:
                    ds.union(idx, nr * cols + nc)
    return ds.connected(left, right)


def enumerate_top_bottom_paths(rows: int, cols: int,
                               max_paths: int | None = None) -> Iterator[tuple[tuple[int, int], ...]]:
    """All self-avoiding 4-adjacent walks from the top row to the bottom row.

    Paths may wander upward; the count grows quickly, so callers should keep
    grids small (the exact-synthesis regime of [9]) or pass ``max_paths``.

    Yields tuples of (row, col) sites, starting in row 0, ending in the last
    row, with no repeated site.  Only *minimal* paths are yielded: a path
    stops at its first bottom-row contact and starts at its only top-row
    contact (prefixes/suffixes riding along an edge row would be redundant
    for the OR-of-ANDs semantics).
    """
    if rows <= 0 or cols <= 0:
        return
    emitted = 0
    for start_col in range(cols):
        stack: list[tuple[tuple[int, int], ...]] = [((0, start_col),)]
        while stack:
            path = stack.pop()
            r, c = path[-1]
            if r == rows - 1:
                yield path
                emitted += 1
                if max_paths is not None and emitted >= max_paths:
                    return
                continue
            visited = set(path)
            for nr, nc in neighbors4(rows, cols, r, c):
                if (nr, nc) in visited:
                    continue
                # Re-entering the top row is redundant: the suffix starting
                # at that top site is enumerated on its own and its product
                # absorbs this detour's product.
                if nr == 0:
                    continue
                stack.append(path + ((nr, nc),))


def count_top_bottom_paths(rows: int, cols: int) -> int:
    """Number of self-avoiding top-bottom paths (small grids only)."""
    return sum(1 for _ in enumerate_top_bottom_paths(rows, cols))


def enumerate_left_right_paths_8(rows: int, cols: int,
                                 max_paths: int | None = None) -> Iterator[tuple[tuple[int, int], ...]]:
    """All self-avoiding 8-adjacent walks from the left column to the right
    column (the blocking-path witnesses of the duality)."""
    if rows <= 0 or cols <= 0:
        return
    emitted = 0
    for start_row in range(rows):
        stack: list[tuple[tuple[int, int], ...]] = [((start_row, 0),)]
        while stack:
            path = stack.pop()
            r, c = path[-1]
            if c == cols - 1:
                yield path
                emitted += 1
                if max_paths is not None and emitted >= max_paths:
                    return
                continue
            visited = set(path)
            for nr, nc in neighbors8(rows, cols, r, c):
                if (nr, nc) in visited:
                    continue
                # Symmetric pruning: re-entering the left column is redundant.
                if nc == 0:
                    continue
                stack.append(path + ((nr, nc),))


def percolation_duality_holds(grid: Grid) -> bool:
    """Check the duality on one grid: blocked <=> dual 8-path exists."""
    return top_bottom_connected(grid) == (not left_right_blocked_8(grid))
