"""Four-terminal switching lattices (Section III-B, Fig. 4 / Fig. 5).

A :class:`Lattice` is an R x C grid of four-terminal switches.  Each site is
controlled by a literal (or a constant): when the literal evaluates to 1 the
site's four terminals are mutually connected, otherwise disconnected.  The
lattice computes 1 exactly when the top edge is connected to the bottom edge
through ON sites — equivalently, the OR over all top-to-bottom paths of the
AND of the literals along the path.

Sites are :class:`~repro.boolean.cube.Literal` objects or the Python
constants ``True``/``False``.  Constant sites are what the lattice algebra
of [3] uses for padding (a column of 0s for OR, a row of 1s for AND); see
:mod:`repro.synthesis.compose`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..boolean.cover import Cover
from ..boolean.cube import Cube, Literal
from ..boolean.truthtable import TruthTable
from ..xbareval.lattice_eval import evaluate_assignments, lattice_truthtable
from .paths import enumerate_top_bottom_paths, top_bottom_connected

Site = Literal | bool


def _site_value(site: Site, assignment: int) -> bool:
    if site is True or site is False:
        return site
    return site.evaluate(assignment)


def _site_str(site: Site, names: Sequence[str] | None = None) -> str:
    if site is True:
        return "1"
    if site is False:
        return "0"
    return site.name(names)


class Lattice:
    """An immutable four-terminal switching lattice."""

    def __init__(self, n: int, sites: Sequence[Sequence[Site]]):
        rows = [tuple(row) for row in sites]
        if not rows or not rows[0]:
            raise ValueError("lattice must have at least one row and column")
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise ValueError("all lattice rows must have equal length")
        for row in rows:
            for site in row:
                if isinstance(site, Literal) and site.var >= n:
                    raise ValueError(f"site literal {site} outside {n}-variable space")
                if not isinstance(site, (Literal, bool)):
                    raise TypeError(f"bad site {site!r}: expected Literal or bool")
        self.n = n
        self.sites = tuple(rows)

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return len(self.sites)

    @property
    def cols(self) -> int:
        return len(self.sites[0])

    @property
    def area(self) -> int:
        """Site count R*C — the cost metric of Fig. 5 and [2],[9]."""
        return self.rows * self.cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def site(self, r: int, c: int) -> Site:
        return self.sites[r][c]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lattice):
            return NotImplemented
        return self.n == other.n and self.sites == other.sites

    def __hash__(self) -> int:
        return hash((self.n, self.sites))

    def __repr__(self) -> str:
        return f"Lattice({self.rows}x{self.cols}, n={self.n})"

    def render(self, names: Sequence[str] | None = None) -> str:
        """ASCII drawing with TOP/BOTTOM rails, matching Fig. 4's layout."""
        cells = [[_site_str(s, names) for s in row] for row in self.sites]
        width = max(len(text) for row in cells for text in row)
        lines = ["TOP".center((width + 3) * self.cols)]
        for row in cells:
            lines.append(" | ".join(text.center(width) for text in row))
        lines.append("BOTTOM".center((width + 3) * self.cols))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def conduction_grid(self, assignment: int,
                        site_override: Callable[[int, int, bool], bool] | None = None
                        ) -> list[list[bool]]:
        """Per-site ON/OFF states for one input assignment.

        ``site_override(r, c, nominal)`` lets fault models force sites
        stuck-ON / stuck-OFF (see :mod:`repro.reliability.faults`).
        """
        grid = []
        for r, row in enumerate(self.sites):
            grid_row = []
            for c, site in enumerate(row):
                value = _site_value(site, assignment)
                if site_override is not None:
                    value = site_override(r, c, value)
                grid_row.append(value)
            grid.append(grid_row)
        return grid

    def evaluate(self, assignment: int,
                 site_override: Callable[[int, int, bool], bool] | None = None) -> bool:
        """Operational semantics: top-bottom percolation through ON sites."""
        return top_bottom_connected(self.conduction_grid(assignment, site_override))

    def evaluate_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Operational semantics for a whole batch of assignments at once.

        Vectorized through :mod:`repro.xbareval`; entry ``b`` equals
        ``evaluate(assignments[b])``.
        """
        return evaluate_assignments(self, assignments)

    def to_truth_table(self) -> TruthTable:
        """Dense semantics via the batched evaluation core.

        All ``2^n`` conduction grids are materialised in one broadcast and
        flooded together (:func:`repro.xbareval.lattice_truthtable`);
        bit-exact against :meth:`to_truth_table_scalar`.
        """
        return lattice_truthtable(self)

    def to_truth_table_scalar(self) -> TruthTable:
        """Scalar reference semantics (2^n union-find percolation checks).

        Kept as the bit-exact reference the batched
        :meth:`to_truth_table` fast path is property-tested against
        (``tests/test_xbareval.py``).
        """
        return TruthTable.from_callable(self.n, self.evaluate)

    def implements(self, table: TruthTable) -> bool:
        """True iff the lattice computes exactly ``table``."""
        if table.n != self.n:
            raise ValueError("variable space mismatch")
        return self.to_truth_table() == table

    def path_cover(self, max_paths: int | None = None) -> Cover:
        """Symbolic semantics: one cube per self-avoiding top-bottom path.

        The OR of the returned cubes equals the lattice function; cubes with
        contradictory literals (paths through x and ~x) are dropped, and the
        result is not minimized.
        """
        cubes = []
        for path in enumerate_top_bottom_paths(self.rows, self.cols, max_paths):
            literals: list[Literal] = []
            ok = True
            for r, c in path:
                site = self.sites[r][c]
                if site is True:
                    continue
                if site is False:
                    ok = False
                    break
                literals.append(site)
            if not ok:
                continue
            try:
                cubes.append(Cube.from_literals(self.n, literals))
            except ValueError:
                continue  # contradictory product conducts for no input
        return Cover(self.n, cubes).drop_contained()

    # ------------------------------------------------------------------
    # Constructors / transforms
    # ------------------------------------------------------------------
    @staticmethod
    def from_strings(n: int, rows: Sequence[str],
                     names: Sequence[str] | None = None) -> "Lattice":
        """Build from whitespace-separated tokens, e.g. ``["x1 x4", "x2 x5"]``.

        Tokens: ``0``/``1`` for constants, a variable name for a positive
        literal, a trailing ``'`` for a negative literal.
        """
        name_index = {name: i for i, name in enumerate(names)} if names else None

        def parse_site(token: str) -> Site:
            if token == "0":
                return False
            if token == "1":
                return True
            negative = token.endswith("'")
            base = token[:-1] if negative else token
            if name_index is not None:
                var = name_index[base]
            else:
                if not base.startswith("x"):
                    raise ValueError(f"bad site token {token!r}")
                var = int(base[1:]) - 1
            return Literal(var, not negative)

        return Lattice(n, [[parse_site(tok) for tok in row.split()] for row in rows])

    def transpose(self) -> "Lattice":
        """Swap rows and columns (computes the lattice of the dual wiring)."""
        return Lattice(self.n, list(zip(*self.sites)))

    def with_site(self, r: int, c: int, site: Site) -> "Lattice":
        rows = [list(row) for row in self.sites]
        rows[r][c] = site
        return Lattice(self.n, rows)

    def map_sites(self, fn: Callable[[int, int, Site], Site]) -> "Lattice":
        return Lattice(self.n, [
            [fn(r, c, site) for c, site in enumerate(row)]
            for r, row in enumerate(self.sites)
        ])

    def literals_used(self) -> set[Literal]:
        return {site for row in self.sites for site in row
                if isinstance(site, Literal)}
