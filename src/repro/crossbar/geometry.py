"""Grid geometry helpers shared by the crossbar models.

Coordinates are ``(row, col)`` with row 0 at the TOP of the array.  The
four-terminal lattice conducts through 4-adjacent ON sites; the blocking
(percolation-dual) paths use 8-adjacency.
"""

from __future__ import annotations

from typing import Iterator

#: 4-neighbourhood offsets (von Neumann).
OFFSETS_4 = ((-1, 0), (1, 0), (0, -1), (0, 1))

#: 8-neighbourhood offsets (Moore).
OFFSETS_8 = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)


def in_bounds(rows: int, cols: int, r: int, c: int) -> bool:
    """True when (r, c) lies inside an rows x cols grid."""
    return 0 <= r < rows and 0 <= c < cols


def neighbors4(rows: int, cols: int, r: int, c: int) -> Iterator[tuple[int, int]]:
    """4-adjacent in-bounds neighbours."""
    for dr, dc in OFFSETS_4:
        nr, nc = r + dr, c + dc
        if in_bounds(rows, cols, nr, nc):
            yield nr, nc


def neighbors8(rows: int, cols: int, r: int, c: int) -> Iterator[tuple[int, int]]:
    """8-adjacent in-bounds neighbours."""
    for dr, dc in OFFSETS_8:
        nr, nc = r + dr, c + dc
        if in_bounds(rows, cols, nr, nc):
            yield nr, nc


class DisjointSet:
    """Union-find with path compression (percolation checks)."""

    def __init__(self, size: int):
        self.parent = list(range(size))
        self.rank = [0] * size

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)
