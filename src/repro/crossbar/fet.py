"""FET-based (two-terminal) crossbar arrays (Section III-A, Fig. 3).

CMOS-style complementary structure on a crossbar: the output is driven by

* a *pull-up* plane with one column per product of ``f`` — the column
  conducts (connects the output to VDD) exactly when its product is 1;
* a *pull-down* plane with one column per product of the dual ``f^D`` — the
  column conducts (connects the output to GND) exactly when ``f`` is 0.

Gate rows carry input literals.  A pull-up column for product ``p`` places
a PMOS on the row of each literal's *complement* (PMOS conducts when its
gate is low); a pull-down column for dual product ``q`` places an NMOS on
the row of each literal's complement (NMOS conducts when its gate is high,
and ``f(x) = 0  <=>  q(~x) = 1`` for some dual product ``q``).

Size formula (Fig. 3): ``rows = #distinct-literals(f)``,
``cols = #products(f) + #products(f^D)``.  The row formula counts the gate
signals needed when the literal sets of ``f`` and ``f^D`` coincide (true
for every benchmark in the paper's experiments); the model computes the
actual row set, which :func:`fet_size_formula` callers can compare against.

The complementary invariant — exactly one plane conducts for every input —
is exposed as :meth:`FetCrossbar.is_complementary` and property-tested.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..boolean.cover import Cover
from ..boolean.cube import Literal
from ..boolean.truthtable import TruthTable


class FetCrossbar:
    """A complementary FET crossbar for a cover of ``f`` and one of ``f^D``."""

    def __init__(self, cover: Cover, dual_cover: Cover):
        if cover.n != dual_cover.n:
            raise ValueError("cover and dual cover live in different spaces")
        if cover.num_products == 0 or dual_cover.num_products == 0:
            raise ValueError(
                "constant functions need no FET array (no products to place)"
            )
        self.cover = cover
        self.dual_cover = dual_cover
        self.n = cover.n
        # Gate rows: the complements of every literal used by either plane.
        gate_signals: set[Literal] = set()
        for cube in cover:
            gate_signals.update(lit.negated() for lit in cube.literals())
        for cube in dual_cover:
            gate_signals.update(lit.negated() for lit in cube.literals())
        self.gate_rows: list[Literal] = sorted(gate_signals)
        self._row_of = {lit: i for i, lit in enumerate(self.gate_rows)}
        # pullup[j] = list of row indices carrying PMOS for product j of f.
        self.pullup: list[list[int]] = [
            [self._row_of[lit.negated()] for lit in cube.literals()]
            for cube in cover
        ]
        # pulldown[j] = row indices carrying NMOS for product j of f^D.
        self.pulldown: list[list[int]] = [
            [self._row_of[lit.negated()] for lit in cube.literals()]
            for cube in dual_cover
        ]

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.gate_rows)

    @property
    def num_cols(self) -> int:
        return len(self.pullup) + len(self.pulldown)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def area(self) -> int:
        return self.num_rows * self.num_cols

    def __repr__(self) -> str:
        return f"FetCrossbar({self.num_rows}x{self.num_cols}, n={self.n})"

    # ------------------------------------------------------------------
    def _gate_value(self, row: int, assignment: int) -> bool:
        return self.gate_rows[row].evaluate(assignment)

    def pullup_conducts(self, j: int, assignment: int,
                        transistor_override: Callable[[str, int, int, bool], bool] | None = None
                        ) -> bool:
        """PMOS column ``j`` conducts iff every gate on it reads low."""
        for row in self.pullup[j]:
            conducting = not self._gate_value(row, assignment)
            if transistor_override is not None:
                conducting = transistor_override("pullup", j, row, conducting)
            if not conducting:
                return False
        return True

    def pulldown_conducts(self, j: int, assignment: int,
                          transistor_override: Callable[[str, int, int, bool], bool] | None = None
                          ) -> bool:
        """NMOS column ``j`` conducts iff every gate on it reads high."""
        for row in self.pulldown[j]:
            conducting = self._gate_value(row, assignment)
            if transistor_override is not None:
                conducting = transistor_override("pulldown", j, row, conducting)
            if not conducting:
                return False
        return True

    def evaluate(self, assignment: int,
                 transistor_override: Callable[[str, int, int, bool], bool] | None = None
                 ) -> bool:
        """Output value: 1 when pulled up, 0 when pulled down.

        With a fault override both planes may conduct (a short) or neither
        (a float); those are reported by :meth:`drive_state` — plain
        evaluation resolves them pessimistically to the pull-down value.
        """
        up = any(self.pullup_conducts(j, assignment, transistor_override)
                 for j in range(len(self.pullup)))
        down = any(self.pulldown_conducts(j, assignment, transistor_override)
                   for j in range(len(self.pulldown)))
        if down:
            return False
        return up

    def drive_state(self, assignment: int,
                    transistor_override: Callable[[str, int, int, bool], bool] | None = None
                    ) -> str:
        """One of ``"1"``, ``"0"``, ``"short"`` (both) or ``"float"`` (none)."""
        up = any(self.pullup_conducts(j, assignment, transistor_override)
                 for j in range(len(self.pullup)))
        down = any(self.pulldown_conducts(j, assignment, transistor_override)
                   for j in range(len(self.pulldown)))
        if up and down:
            return "short"
        if up:
            return "1"
        if down:
            return "0"
        return "float"

    def is_complementary(self) -> bool:
        """Exactly one plane conducts for every assignment (fault-free)."""
        return all(
            self.drive_state(m) in ("0", "1") for m in range(1 << self.n)
        )

    def to_truth_table(self) -> TruthTable:
        return TruthTable.from_callable(self.n, self.evaluate)

    def implements(self, table: TruthTable) -> bool:
        if table.n != self.n:
            raise ValueError("variable space mismatch")
        return self.to_truth_table() == table

    # ------------------------------------------------------------------
    def render(self, names: Sequence[str] | None = None) -> str:
        """ASCII array: gate rows vs (pull-up | pull-down) columns."""
        headers = [f"u{j}" for j in range(len(self.pullup))] + [
            f"d{j}" for j in range(len(self.pulldown))
        ]
        label_width = max(len(lit.negated().name(names)) for lit in self.gate_rows)
        lines = [" " * label_width + "  " + " ".join(headers)]
        for i, gate in enumerate(self.gate_rows):
            marks = []
            for rows in self.pullup:
                marks.append("P" if i in rows else ".")
            for rows in self.pulldown:
                marks.append("N" if i in rows else ".")
            # Label rows by the literal whose value the gate line carries.
            label = gate.name(names)
            lines.append(label.rjust(label_width) + "  " + "  ".join(marks))
        return "\n".join(lines)


def fet_size_formula(cover: Cover, dual_cover: Cover) -> tuple[int, int]:
    """Fig. 3 size formula for FET arrays: (literals, products(f) + products(f^D))."""
    return cover.num_distinct_literals, cover.num_products + dual_cover.num_products
