"""Area / delay / power models for the three array styles.

The project overview (Section II) evaluates implementations "by considering
performance parameters such as area, delay, power dissipation, and
reliability".  This module provides first-order, technology-normalised
models — the level of abstraction the paper's work packages operate at:

* **area** — crosspoint count of the bounding array (the Fig. 3/Fig. 5
  metric);
* **delay** — dominated by the longest series switch chain the signal must
  traverse: the worst product length for two-terminal planes (plus a wire
  term growing with the array perimeter), and the worst-case-over-inputs
  best conducting path length for lattices (computed exactly by Dijkstra);
* **power** — a static term (pull resistor current per diode row; none for
  complementary FET planes) plus a dynamic term proportional to the number
  of programmed/used switches.

All quantities are in normalised technology units (R_on = C_unit = 1); the
point is *comparing styles on equal footing*, not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..boolean.truthtable import TruthTable
from .diode import DiodeCrossbar
from .fet import FetCrossbar
from .lattice import Lattice


@dataclass(frozen=True)
class TechnologyParameters:
    """Normalised first-order technology constants."""

    wire_delay_per_line: float = 0.1   # RC per crossed nanowire segment
    switch_delay: float = 1.0          # series switch traversal
    static_power_per_row: float = 1.0  # diode pull-resistor current
    dynamic_power_per_switch: float = 0.1


DEFAULT_TECH = TechnologyParameters()


@dataclass(frozen=True)
class ArrayMetrics:
    """The paper's three performance parameters for one array."""

    style: str
    area: int
    delay: float
    power: float


def diode_metrics(array: DiodeCrossbar,
                  tech: TechnologyParameters = DEFAULT_TECH) -> ArrayMetrics:
    """Diode-resistor plane: worst series product + wired-OR column."""
    worst_chain = max(
        sum(row) for row in array.connections
    )
    wire = tech.wire_delay_per_line * (array.num_rows + array.num_cols)
    delay = tech.switch_delay * (worst_chain + 1) + wire  # +1: OR junction
    power = (tech.static_power_per_row * array.num_rows
             + tech.dynamic_power_per_switch * array.num_crosspoints_programmed)
    return ArrayMetrics("diode", array.area, delay, power)


def fet_metrics(array: FetCrossbar,
                tech: TechnologyParameters = DEFAULT_TECH) -> ArrayMetrics:
    """Complementary FET plane: worst series transistor stack, no static power."""
    worst_stack = max(
        max(len(rows) for rows in array.pullup),
        max(len(rows) for rows in array.pulldown),
    )
    wire = tech.wire_delay_per_line * (array.num_rows + array.num_cols)
    delay = tech.switch_delay * worst_stack + wire
    transistor_count = sum(len(rows) for rows in array.pullup) + sum(
        len(rows) for rows in array.pulldown
    )
    power = tech.dynamic_power_per_switch * transistor_count
    return ArrayMetrics("fet", array.area, delay, power)


def lattice_metrics(lattice: Lattice,
                    table: TruthTable | None = None,
                    tech: TechnologyParameters = DEFAULT_TECH) -> ArrayMetrics:
    """Four-terminal lattice: exact worst-case best-path series length.

    For every on-set input the signal takes the shortest conducting
    top-bottom path; the delay is the worst such length over the on-set
    (the same computation the variation models refine with per-site
    resistances).
    """
    from ..reliability.variation import best_path_delay

    if table is None:
        table = lattice.to_truth_table()
    unit = np.ones((lattice.rows, lattice.cols))
    worst = 0.0
    for m in table.minterms():
        length = best_path_delay(lattice.conduction_grid(m), unit)
        if length is None:
            raise ValueError("lattice does not conduct on its own on-set")
        worst = max(worst, length)
    wire = tech.wire_delay_per_line * (lattice.rows + lattice.cols)
    delay = tech.switch_delay * worst + wire
    power = tech.dynamic_power_per_switch * lattice.area
    return ArrayMetrics("lattice", lattice.area, delay, power)


def compare_styles(table: TruthTable,
                   tech: TechnologyParameters = DEFAULT_TECH) -> list[ArrayMetrics]:
    """Area/delay/power of all three styles for one function."""
    from ..synthesis.lattice_dual import synthesize_lattice_dual
    from ..synthesis.optimize import fold_lattice
    from ..synthesis.two_terminal import synthesize_diode, synthesize_fet

    diode = synthesize_diode(table)
    fet = synthesize_fet(table)
    lattice = fold_lattice(synthesize_lattice_dual(table), table)
    return [
        diode_metrics(diode, tech),
        fet_metrics(fet, tech),
        lattice_metrics(lattice, table, tech),
    ]
