"""Behavioural models of nano-crossbar arrays (Fig. 1 switch semantics).

* :class:`~repro.crossbar.diode.DiodeCrossbar` — two-terminal, diode-resistor
  wired-AND/OR planes.
* :class:`~repro.crossbar.fet.FetCrossbar` — two-terminal, complementary
  CMOS-style pull-up/pull-down planes.
* :class:`~repro.crossbar.lattice.Lattice` — four-terminal switching lattice
  with percolation semantics.
"""

from .diode import DiodeCrossbar, diode_size_formula
from .fet import FetCrossbar, fet_size_formula
from .geometry import DisjointSet, in_bounds, neighbors4, neighbors8
from .lattice import Lattice, Site
from .metrics import (
    ArrayMetrics,
    DEFAULT_TECH,
    TechnologyParameters,
    compare_styles,
    diode_metrics,
    fet_metrics,
    lattice_metrics,
)
from .paths import (
    count_top_bottom_paths,
    enumerate_left_right_paths_8,
    enumerate_top_bottom_paths,
    left_right_blocked_8,
    percolation_duality_holds,
    top_bottom_connected,
)

__all__ = [
    "ArrayMetrics",
    "DEFAULT_TECH",
    "DiodeCrossbar",
    "DisjointSet",
    "FetCrossbar",
    "Lattice",
    "Site",
    "TechnologyParameters",
    "compare_styles",
    "count_top_bottom_paths",
    "diode_metrics",
    "diode_size_formula",
    "fet_metrics",
    "lattice_metrics",
    "enumerate_left_right_paths_8",
    "enumerate_top_bottom_paths",
    "fet_size_formula",
    "in_bounds",
    "left_right_blocked_8",
    "neighbors4",
    "neighbors8",
    "percolation_duality_holds",
    "top_bottom_connected",
]
