"""NPN classification (input Negation / input Permutation / output Negation).

Two functions are NPN-equivalent when one maps to the other by permuting
inputs, complementing some inputs, and possibly complementing the output.
Array synthesis cost is invariant under input transforms (literals are
free in both polarities on a crossbar), so NPN classes are the right
granularity for expressiveness studies — e.g. "which functions fit a 2x2
lattice" (see :mod:`repro.synthesis.enumerate_lattices`).

Exhaustive canonicalisation; practical for n <= 5 (the classic class
counts: 4 classes for n=2, 14 for n=3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from .truthtable import TruthTable


@dataclass(frozen=True)
class NpnTransform:
    """A witness transform: ``g(x) = f(perm/neg(x)) ^ output_negate``."""

    permutation: tuple[int, ...]
    input_negation_mask: int
    output_negate: bool


def apply_transform(table: TruthTable, transform: NpnTransform) -> TruthTable:
    """Apply an NPN transform to a truth table.

    The result ``g`` satisfies ``g(x) = f(sigma(x)) ^ out`` where bit ``i``
    of ``sigma(x)`` is ``x[perm[i]] ^ neg[perm[i]]``... concretely: new
    variable ``i`` takes the role of old variable ``perm[i]``, with
    negation applied per the mask (over old variable indices).
    """
    n = table.n
    idx = np.arange(1 << n)
    old = np.zeros(1 << n, dtype=np.int64)
    for new_var, old_var in enumerate(transform.permutation):
        bit = (idx >> new_var) & 1
        if (transform.input_negation_mask >> old_var) & 1:
            bit ^= 1
        old |= bit << old_var
    values = table.values[old]
    if transform.output_negate:
        values = ~values
    return TruthTable(n, values)


def npn_canonical(table: TruthTable) -> tuple[TruthTable, NpnTransform]:
    """The lexicographically-minimal NPN representative and its witness."""
    n = table.n
    if n > 5:
        raise ValueError("exhaustive NPN canonicalisation supports n <= 5")
    best: TruthTable | None = None
    best_key: bytes | None = None
    best_transform: NpnTransform | None = None
    for perm in permutations(range(n)):
        for neg_mask in range(1 << n):
            for out_neg in (False, True):
                transform = NpnTransform(perm, neg_mask, out_neg)
                candidate = apply_transform(table, transform)
                key = candidate.values.tobytes()
                if best_key is None or key < best_key:
                    best, best_key, best_transform = candidate, key, transform
    assert best is not None and best_transform is not None
    return best, best_transform


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when the two functions are in the same NPN class."""
    if a.n != b.n:
        return False
    return npn_canonical(a)[0] == npn_canonical(b)[0]


def npn_classes(tables: list[TruthTable]) -> dict[TruthTable, list[TruthTable]]:
    """Group functions by NPN class (keyed by the canonical form)."""
    classes: dict[TruthTable, list[TruthTable]] = {}
    for table in tables:
        canonical, _ = npn_canonical(table)
        classes.setdefault(canonical, []).append(table)
    return classes


def count_npn_classes(n: int) -> int:
    """Number of NPN classes of all n-variable functions (n <= 3 feasible)."""
    if n > 3:
        raise ValueError("full-space class counting is exponential; use n <= 3")
    seen: set[bytes] = set()
    for bits in range(1 << (1 << n)):
        canonical, _ = npn_canonical(TruthTable.from_bits(n, bits))
        seen.add(canonical.values.tobytes())
    return len(seen)
