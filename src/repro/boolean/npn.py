"""NPN classification (input Negation / input Permutation / output Negation).

Two functions are NPN-equivalent when one maps to the other by permuting
inputs, complementing some inputs, and possibly complementing the output.
Array synthesis cost is invariant under input transforms (literals are
free in both polarities on a crossbar), so NPN classes are the right
granularity for expressiveness studies — e.g. "which functions fit a 2x2
lattice" (see :mod:`repro.synthesis.enumerate_lattices`) — and the right
key granularity for the :mod:`repro.engine` result cache.

The canonical representative is the table whose value array is
lexicographically minimal (entry 0 first) over all transforms — equal to
what blind enumeration of all ``n! * 2^(n+1)`` transforms finds, but
computed by a pruned packed-uint64 search (:func:`npn_canonical`):

* each candidate table is packed into a single ``uint64`` key (entry 0 as
  the most significant bit), so a whole permutation sweep is one
  vectorised gather + reduction instead of ``n!`` Python loops;
* the ``2^(n+1)`` *(output polarity, input negation)* branches are pruned
  by a sound cofactor-signature lower bound — the key's entry 0 is
  ``f(nu) ^ o`` and its entries at the power-of-two positions are exactly
  the 1-Hamming cofactor values around ``nu``, so a branch whose best
  possible key already exceeds the incumbent is skipped without touching
  any permutation.

Exact for ``n <= MAX_EXACT_NPN_VARS`` (= 6); the blind reference
implementation is kept as :func:`npn_canonical_exhaustive` for the
property suite (classic class counts: 4 for n=2, 14 for n=3).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations

import numpy as np

from .truthtable import TruthTable

#: Largest variable count the pruned exact canonical search accepts
#: (2^n must fit one packed uint64 key).
MAX_EXACT_NPN_VARS = 6


@dataclass(frozen=True)
class NpnTransform:
    """A witness transform: ``g(x) = f(perm/neg(x)) ^ output_negate``."""

    permutation: tuple[int, ...]
    input_negation_mask: int
    output_negate: bool


def apply_transform(table: TruthTable, transform: NpnTransform) -> TruthTable:
    """Apply an NPN transform to a truth table.

    The result ``g`` satisfies ``g(x) = f(sigma(x)) ^ out`` where bit ``i``
    of ``sigma(x)`` is ``x[perm[i]] ^ neg[perm[i]]``... concretely: new
    variable ``i`` takes the role of old variable ``perm[i]``, with
    negation applied per the mask (over old variable indices).
    """
    n = table.n
    idx = np.arange(1 << n)
    old = np.zeros(1 << n, dtype=np.int64)
    for new_var, old_var in enumerate(transform.permutation):
        bit = (idx >> new_var) & 1
        if (transform.input_negation_mask >> old_var) & 1:
            bit ^= 1
        old |= bit << old_var
    values = table.values[old]
    if transform.output_negate:
        values = ~values
    return TruthTable(n, values)


def npn_canonical_exhaustive(table: TruthTable) -> tuple[TruthTable, NpnTransform]:
    """Blind-enumeration reference canonicalisation (n <= 5).

    Tries every ``n! * 2^(n+1)`` transform; kept as the bit-exact
    reference :func:`npn_canonical`'s pruned search is property-tested
    against.
    """
    n = table.n
    if n > 5:
        raise ValueError("exhaustive NPN canonicalisation supports n <= 5")
    best: TruthTable | None = None
    best_key: bytes | None = None
    best_transform: NpnTransform | None = None
    for perm in permutations(range(n)):
        for neg_mask in range(1 << n):
            for out_neg in (False, True):
                transform = NpnTransform(perm, neg_mask, out_neg)
                candidate = apply_transform(table, transform)
                key = candidate.values.tobytes()
                if best_key is None or key < best_key:
                    best, best_key, best_transform = candidate, key, transform
    assert best is not None and best_transform is not None
    return best, best_transform


@lru_cache(maxsize=8)
def _perm_tables(n: int) -> tuple[tuple[tuple[int, ...], ...], np.ndarray]:
    """All permutations of ``range(n)`` plus their index-scatter table.

    ``scatter[p, m]`` is the input index reached from assignment ``m`` by
    routing new-variable bit ``i`` to old variable ``perms[p][i]`` — the
    permutation part of the transform, ready to be XORed with a negation
    mask and used as one gather into the packed table.
    """
    perms = tuple(permutations(range(n)))
    m = np.arange(1 << n, dtype=np.int64)
    scatter = np.zeros((len(perms), 1 << n), dtype=np.int64)
    for p, perm in enumerate(perms):
        for new_var, old_var in enumerate(perm):
            scatter[p] |= ((m >> new_var) & 1) << old_var
    return perms, scatter


def npn_canonical(table: TruthTable) -> tuple[TruthTable, NpnTransform]:
    """The lexicographically-minimal NPN representative and its witness.

    Pruned packed-uint64 branch-and-bound, exact for ``n <=
    MAX_EXACT_NPN_VARS``: for every *(output polarity o, input negation
    nu)* branch the candidate key's fixed entries — entry 0 is
    ``f(nu) ^ o`` and the power-of-two entries are a permutation of the
    1-Hamming cofactor signature ``{f(nu ^ e_v) ^ o}`` — give a sound
    optimistic bound; branches that cannot beat the incumbent are skipped,
    and surviving branches evaluate all ``n!`` permutations in one
    vectorised gather instead of a Python loop per transform.
    """
    n = table.n
    if n > MAX_EXACT_NPN_VARS:
        raise ValueError(
            f"exact NPN canonicalisation supports n <= {MAX_EXACT_NPN_VARS}")
    size = 1 << n
    values = table.values
    perms, scatter = _perm_tables(n)
    weights = (np.uint64(1) << (np.uint64(63) - np.arange(size,
                                                          dtype=np.uint64)))

    # Optimistic lower bound per branch: the candidate's entry 0 and, at
    # the power-of-two positions, the sorted 1-Hamming cofactor values
    # (sorted-ascending is the best any permutation could arrange them);
    # all other positions bounded by 0.
    single_positions = [63 - (1 << i) for i in range(n)]
    branches = []
    for out_neg in (False, True):
        for neg_mask in range(size):
            first = bool(values[neg_mask]) ^ out_neg
            singles = sorted(bool(values[neg_mask ^ (1 << v)]) ^ out_neg
                             for v in range(n))
            bound = (1 << 63) if first else 0
            for bit, position in zip(singles, single_positions):
                if bit:
                    bound |= 1 << position
            branches.append((bound, out_neg, neg_mask))
    branches.sort(key=lambda branch: branch[0])

    best_key: int | None = None
    best_transform: NpnTransform | None = None
    for bound, out_neg, neg_mask in branches:
        if best_key is not None and bound > best_key:
            break  # branches are bound-sorted: nothing later can win
        candidates = values[scatter ^ neg_mask]
        if out_neg:
            candidates = ~candidates
        keys = np.where(candidates, weights, np.uint64(0)).sum(axis=1)
        winner = int(keys.argmin())
        key = int(keys[winner])
        if best_key is None or key < best_key:
            best_key = key
            best_transform = NpnTransform(perms[winner], neg_mask, out_neg)
    assert best_transform is not None
    return apply_transform(table, best_transform), best_transform


def _walsh_hadamard(signed: np.ndarray) -> np.ndarray:
    """Fast Walsh-Hadamard transform of a ``(2^n,)`` ±1 vector.

    Coefficient ``s`` correlates the function with the parity of the
    variables in ``s`` (assignment bit ``v`` aligns with coefficient bit
    ``v``), so per-variable |spectrum| multisets are NPN invariants: a
    permutation permutes coefficients within the same bit-count shells,
    input/output negations only flip signs.
    """
    w = signed.astype(np.int64)
    h = 1
    while h < w.size:
        w = w.reshape(-1, 2, h)
        w = np.stack([w[:, 0, :] + w[:, 1, :],
                      w[:, 0, :] - w[:, 1, :]], axis=1)
        h <<= 1
    return w.reshape(-1)


def npn_semicanonical(table: TruthTable) -> tuple[TruthTable, NpnTransform]:
    """A semi-canonical NPN representative with a *real* witness transform.

    The exact search (:func:`npn_canonical`) is infeasible past
    ``MAX_EXACT_NPN_VARS``; this normalization runs in ``O(n 2^n)`` at any
    ``n`` and makes every decision from NPN-invariant statistics, so two
    class members map to the *same* representative whenever those
    invariants are tie-free (the common case for random functions):

    * output polarity: complement when it shrinks the on-set; an exact
      half/half tie normalizes *both* polarities and keeps the
      lexicographically smaller representative (still invariant);
    * per-variable input negation: order each variable's cofactor on-set
      counts ``(c0, c1)`` as ``c0 <= c1``, ties refined by the sorted
      pairwise cofactor-count profile of each side (ties after that keep
      the input polarity);
    * variable permutation: sort variables by the invariant key
      ``(c0, pairwise cofactor-count profile, sorted per-variable
      |Walsh-Hadamard| spectrum)``, ties broken by original index (the
      "semi" part — a tie may split a class, never merge two).

    Unlike a bare invariant hash, the returned :class:`NpnTransform` is a
    true witness — ``apply_transform(table, t)`` *is* the representative
    — so cached lattices can be rewritten between class members exactly
    as with the exact canonical form.  Collision-safety is the caller's
    affair: key on the representative's full packed table (e.g.
    ``content_hash``), not on lossy invariants.
    """
    n = table.n
    size = 1 << n
    values = table.values.astype(bool)
    ones = int(values.sum())
    if 2 * ones != size:
        return _semicanonical_polarity(table, values, ones > size - ones)
    # Exact half/half on-set: the polarity choice has no invariant count
    # to lean on, so normalize both and keep the smaller representative
    # (classmates enumerate the same two candidates).
    candidates = [_semicanonical_polarity(table, values, out_neg)
                  for out_neg in (False, True)]
    return min(candidates, key=lambda cand: cand[0].values.tobytes())


def _semicanonical_polarity(table: TruthTable, values: np.ndarray,
                            out_neg: bool) -> tuple[TruthTable, NpnTransform]:
    """The semi-canonical normalization with the output polarity fixed."""
    n = table.n
    size = 1 << n
    f = values ^ out_neg
    onset = int(f.sum())
    # Per-assignment variable bits of the on-set: bits[v, k] is bit v of
    # the k-th on-set minterm.  All cofactor statistics read off it.
    minterms = np.flatnonzero(f)
    bits = (minterms[None, :] >> np.arange(max(n, 1))[:, None]) & 1
    # pair[v, a, u, b] = |{x in onset : x_v = a, x_u = b}|; the sorted-
    # over-b profiles below are invariant under every other variable's
    # (undecided) negation and under variable permutation.
    pair = np.zeros((n, 2, n, 2), dtype=np.int64)
    for v in range(n):
        for a in (0, 1):
            side = bits[:, bits[v] == a] if n else bits
            for u in range(n):
                b1 = int(side[u].sum()) if side.size else 0
                pair[v, a, u, 1] = b1
                pair[v, a, u, 0] = side.shape[1] - b1

    def _side_profile(v: int, a: int) -> tuple:
        return tuple(sorted(tuple(sorted(pair[v, a, u].tolist()))
                            for u in range(n) if u != v))

    neg_mask = 0
    c0s = []
    for v in range(n):
        c1 = int(pair[v, 1, v, 1])
        c0 = onset - c1
        negate = c0 > c1 or (c0 == c1
                             and _side_profile(v, 1) < _side_profile(v, 0))
        if negate:
            neg_mask |= 1 << v
            c0 = c1
        c0s.append(c0)

    def _pair_profile(v: int) -> tuple:
        lo = (neg_mask >> v) & 1            # the normalized 0-side of v
        return tuple(sorted((tuple(sorted(pair[v, lo, u].tolist())),
                             tuple(sorted(pair[v, 1 - lo, u].tolist())))
                            for u in range(n) if u != v))

    var_bit = (np.arange(size)[None, :] >> np.arange(max(n, 1))[:, None]) & 1
    spectrum = np.abs(_walsh_hadamard(1 - 2 * f.astype(np.int64)))
    keys = [(c0s[v], _pair_profile(v),
             tuple(np.sort(spectrum[var_bit[v] == 1]).tolist()))
            for v in range(n)]
    perm = tuple(sorted(range(n), key=lambda v: keys[v]))
    transform = NpnTransform(perm, neg_mask, out_neg)
    return apply_transform(table, transform), transform


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when the two functions are in the same NPN class."""
    if a.n != b.n:
        return False
    return npn_canonical(a)[0] == npn_canonical(b)[0]


def npn_classes(tables: list[TruthTable]) -> dict[TruthTable, list[TruthTable]]:
    """Group functions by NPN class (keyed by the canonical form)."""
    classes: dict[TruthTable, list[TruthTable]] = {}
    for table in tables:
        canonical, _ = npn_canonical(table)
        classes.setdefault(canonical, []).append(table)
    return classes


def count_npn_classes(n: int) -> int:
    """Number of NPN classes of all n-variable functions (n <= 3 feasible)."""
    if n > 3:
        raise ValueError("full-space class counting is exponential; use n <= 3")
    seen: set[bytes] = set()
    for bits in range(1 << (1 << n)):
        canonical, _ = npn_canonical(TruthTable.from_bits(n, bits))
        seen.add(canonical.values.tobytes())
    return len(seen)
