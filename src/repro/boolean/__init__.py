"""Boolean-function substrate for the nano-crossbar synthesis flows.

Public surface:

* :class:`~repro.boolean.cube.Literal`, :class:`~repro.boolean.cube.Cube`
* :class:`~repro.boolean.cover.Cover`
* :class:`~repro.boolean.truthtable.TruthTable`
* :class:`~repro.boolean.function.BooleanFunction`
* minimization: :func:`~repro.boolean.minimize.minimize` and friends
* duals: :func:`~repro.boolean.dual.dual_cover` etc.
* PLA I/O, ROBDDs, GF(2)/affine-space tools for D-reducible functions
"""

from .affine import (
    AffineSpace,
    affine_hull,
    d_reduction,
    embed_projection,
    gf2_kernel,
    gf2_rank,
    gf2_row_reduce,
    is_d_reducible,
    onset_affine_hull,
    parity_table,
    project_onto,
)
from .bdd import Bdd
from .cover import Cover
from .cube import Cube, Literal
from .dual import (
    check_duality_lemma,
    dual_cover,
    dual_table,
    is_self_dual,
    minimized_pair,
    shared_literal,
)
from .expr import (
    ExpressionError,
    expression_to_cover,
    expression_to_truth_table,
    expression_variables,
    parse_expression,
)
from .function import BooleanFunction
from .minimize import (
    exact_minimize,
    heuristic_minimize,
    isop,
    minimize,
    prime_implicants,
    verify_cover,
)
from .npn import (
    NpnTransform,
    apply_transform,
    count_npn_classes,
    npn_canonical,
    npn_classes,
    npn_equivalent,
    npn_semicanonical,
)
from .pla import Pla, PlaError, cover_to_pla, parse_pla, write_pla
from .truthtable import TruthTable

__all__ = [
    "AffineSpace",
    "Bdd",
    "BooleanFunction",
    "Cover",
    "Cube",
    "ExpressionError",
    "Literal",
    "NpnTransform",
    "Pla",
    "PlaError",
    "TruthTable",
    "affine_hull",
    "apply_transform",
    "check_duality_lemma",
    "count_npn_classes",
    "cover_to_pla",
    "d_reduction",
    "dual_cover",
    "dual_table",
    "embed_projection",
    "exact_minimize",
    "expression_to_cover",
    "expression_to_truth_table",
    "expression_variables",
    "gf2_kernel",
    "gf2_rank",
    "gf2_row_reduce",
    "heuristic_minimize",
    "is_d_reducible",
    "is_self_dual",
    "isop",
    "minimize",
    "minimized_pair",
    "npn_canonical",
    "npn_classes",
    "npn_equivalent",
    "npn_semicanonical",
    "onset_affine_hull",
    "parity_table",
    "parse_expression",
    "parse_pla",
    "prime_implicants",
    "project_onto",
    "shared_literal",
    "verify_cover",
    "write_pla",
]
