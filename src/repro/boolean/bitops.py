"""Portable per-element popcount for packed-uint64 kernels.

``numpy.bitwise_count`` only exists in numpy >= 2.0, but the package's
declared floor is numpy >= 1.22 (see ``setup.py``): the packed-bitset
kernels in :mod:`repro.xbareval.connectivity` and the parity tables in
:mod:`repro.boolean.affine` must not crash with ``AttributeError`` on a
1.x install.  :data:`popcount_u64` is selected once at import time:

* numpy >= 2.0 — ``np.bitwise_count`` (a single C ufunc call);
* numpy 1.x — :func:`popcount_u64_unpackbits`, which views each uint64
  word as 8 bytes and sums ``np.unpackbits`` over them (slower, but pure
  numpy and exact for the full 64-bit range).

Both paths return one count per element with the input's shape; the
regression suite (``tests/test_boolean_bitops.py``) asserts they agree on
the full-range corner cases regardless of which one is active.
"""

from __future__ import annotations

import numpy as np


def popcount_u64_unpackbits(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array via ``np.unpackbits``.

    The numpy-1.x fallback behind :data:`popcount_u64`: each word is
    viewed as its 8 constituent bytes and the unpacked bits are summed.
    Bit/byte order is irrelevant for counting, so the result matches
    ``np.bitwise_count`` exactly on every input.
    """
    arr = np.asarray(values, dtype=np.uint64)
    shape = arr.shape        # ascontiguousarray would promote 0-d to 1-d
    if arr.size == 0:
        return np.zeros(shape, dtype=np.uint8)
    as_bytes = np.ascontiguousarray(arr).reshape(-1, 1).view(np.uint8)
    counts = np.unpackbits(as_bytes, axis=1).sum(axis=1, dtype=np.uint8)
    return counts.reshape(shape)


#: The active popcount implementation (see the module docstring).
popcount_u64 = getattr(np, "bitwise_count", popcount_u64_unpackbits)

#: True when the native ``np.bitwise_count`` ufunc backs :data:`popcount_u64`.
HAVE_NATIVE_POPCOUNT = popcount_u64 is not popcount_u64_unpackbits


def popcount_u64_multiword(values: np.ndarray, word_axis: int = 1,
                           _popcount=None) -> np.ndarray:
    """Total popcount across the word axis of a multi-word bitset layout.

    The multi-word packed kernels in :mod:`repro.xbareval.connectivity`
    store grids taller than 64 rows as ``(batch, words, cols)`` uint64
    tensors; their fixpoint detector needs the *per-column* bit count,
    i.e. the per-element popcount reduced over the word axis.  Counts are
    accumulated in int64 — the per-element uint8 counts of both underlying
    implementations would overflow past 4 words.

    ``_popcount`` exists for the regression suite only: it pins the
    per-element implementation (native ufunc vs the numpy-1.x unpackbits
    fallback) so both code paths are exercised regardless of the
    installed numpy.
    """
    counts = (_popcount or popcount_u64)(np.asarray(values, dtype=np.uint64))
    return counts.sum(axis=word_axis, dtype=np.int64)
