"""Sum-of-products covers.

A :class:`Cover` is an ordered collection of :class:`~repro.boolean.cube.Cube`
objects interpreted as their disjunction.  Covers are what the nano-crossbar
synthesis flows consume: the paper's two-terminal arrays (Fig. 3) and
four-terminal lattices (Fig. 5) are sized directly by a cover's product and
literal counts, because nano-crossbar arrays cannot realise factored or BDD
forms (Section III-A).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .cube import Cube, Literal
from .truthtable import TruthTable


class Cover:
    """An immutable SOP cover over ``n`` variables."""

    __slots__ = ("n", "_cubes")

    def __init__(self, n: int, cubes: Iterable[Cube] = ()):
        cube_list = tuple(cubes)
        for cube in cube_list:
            if cube.n != n:
                raise ValueError(
                    f"cube {cube} has dimension {cube.n}, cover expects {n}"
                )
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "_cubes", cube_list)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Cover is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_strings(rows: Sequence[str]) -> "Cover":
        """Build from positional cube strings such as ``["1-0", "01-"]``."""
        if not rows:
            raise ValueError("cannot infer dimension from an empty list")
        cubes = [Cube.from_string(row) for row in rows]
        n = cubes[0].n
        return Cover(n, cubes)

    @staticmethod
    def empty(n: int) -> "Cover":
        """The empty cover (constant 0)."""
        return Cover(n, ())

    @staticmethod
    def tautology(n: int) -> "Cover":
        """The cover consisting of the universal cube (constant 1)."""
        return Cover(n, (Cube.universe(n),))

    @staticmethod
    def from_truth_table(table: TruthTable) -> "Cover":
        """The canonical minterm cover of a truth table's on-set."""
        return Cover(table.n, table.minterm_cubes())

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def cubes(self) -> tuple[Cube, ...]:
        return self._cubes

    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    def __getitem__(self, index: int) -> Cube:
        return self._cubes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return self.n == other.n and self._cubes == other._cubes

    def __hash__(self) -> int:
        return hash((self.n, self._cubes))

    def __str__(self) -> str:
        return " + ".join(str(c) for c in self._cubes) if self._cubes else "0"

    def __repr__(self) -> str:
        return f"Cover(n={self.n}, products={len(self)})"

    def to_expression(self, names: Sequence[str] | None = None) -> str:
        """Render as e.g. ``x1 & x2  |  x1' & x3``; ``0`` when empty."""
        if not self._cubes:
            return "0"
        return " | ".join(c.to_expression(names) for c in self._cubes)

    # ------------------------------------------------------------------
    # Cost metrics (the quantities in Fig. 3 / Fig. 5)
    # ------------------------------------------------------------------
    @property
    def num_products(self) -> int:
        """Number of product terms — rows of a diode plane."""
        return len(self._cubes)

    @property
    def num_literal_occurrences(self) -> int:
        """Total literal count over all products."""
        return sum(cube.num_literals for cube in self._cubes)

    def distinct_literals(self) -> list[Literal]:
        """Sorted list of the distinct literals used by the cover.

        Each distinct literal needs one input column in a diode plane and
        one input row in a FET plane (Fig. 3).
        """
        seen: set[Literal] = set()
        for cube in self._cubes:
            seen.update(cube.literals())
        return sorted(seen)

    @property
    def num_distinct_literals(self) -> int:
        return len(self.distinct_literals())

    def support(self) -> list[int]:
        """Variables appearing in at least one cube."""
        mask = 0
        for cube in self._cubes:
            mask |= cube.care_mask
        return [v for v in range(self.n) if (mask >> v) & 1]

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: int) -> bool:
        """True iff any product evaluates to 1."""
        return any(cube.evaluate(assignment) for cube in self._cubes)

    def to_truth_table(self) -> TruthTable:
        """Dense semantics of the cover."""
        return TruthTable.from_cubes(self.n, self._cubes)

    def covers_minterm(self, minterm: int) -> bool:
        return self.evaluate(minterm)

    def covers_cube(self, cube: Cube) -> bool:
        """True iff every minterm of ``cube`` is covered.

        Uses the exact recursive tautology test on the cofactored cover, so
        it works without enumerating minterms.
        """
        bound = cube.care_mask
        shrunk = []
        for c in self._cubes:
            meet = c.intersection(cube)
            if meet is None:
                continue
            # Literals on the cube's bound variables are satisfied by every
            # minterm of the cube, so they can be stripped inside its space.
            shrunk.append(Cube(self.n, meet.pos & ~bound, meet.neg & ~bound))
        free = [v for v in range(self.n) if not (bound >> v) & 1]
        return _tautology_on(shrunk, free)

    def equivalent(self, other: "Cover") -> bool:
        """Semantic equality of two covers."""
        if self.n != other.n:
            return False
        return self.to_truth_table() == other.to_truth_table()

    # ------------------------------------------------------------------
    # Algebraic operations
    # ------------------------------------------------------------------
    def disjunction(self, other: "Cover") -> "Cover":
        """OR of two covers: concatenation."""
        if self.n != other.n:
            raise ValueError("covers live in different spaces")
        return Cover(self.n, self._cubes + other._cubes)

    def conjunction(self, other: "Cover") -> "Cover":
        """AND of two covers: pairwise cube products, dropping conflicts."""
        if self.n != other.n:
            raise ValueError("covers live in different spaces")
        products = []
        for a in self._cubes:
            for b in other._cubes:
                ab = a.intersection(b)
                if ab is not None:
                    products.append(ab)
        return Cover(self.n, products).drop_contained()

    def cofactor(self, var: int, value: bool) -> "Cover":
        """Cofactor cover, re-indexed into the (n-1)-variable space."""
        cubes = []
        for cube in self._cubes:
            cof = cube.cofactor(var, value)
            if cof is not None:
                cubes.append(cof.project_out(var))
        return Cover(self.n - 1, cubes)

    def restrict(self, var: int, value: bool) -> "Cover":
        """Cofactor that stays in the n-variable space."""
        cubes = []
        for cube in self._cubes:
            cof = cube.cofactor(var, value)
            if cof is not None:
                cubes.append(cof)
        return Cover(self.n, cubes)

    def lift(self, var: int) -> "Cover":
        """Inverse of :meth:`cofactor` re-indexing (insert fresh variable)."""
        return Cover(self.n + 1, (cube.lift(var) for cube in self._cubes))

    def drop_contained(self) -> "Cover":
        """Remove cubes single-cube-contained in another cube (absorption)."""
        kept: list[Cube] = []
        # Sort large-to-small so a containing cube is kept before its victims.
        order = sorted(self._cubes, key=lambda c: c.num_literals)
        for cube in order:
            if not any(other.contains(cube) for other in kept):
                kept.append(cube)
        return Cover(self.n, kept)

    def deduplicate(self) -> "Cover":
        """Remove exact duplicate cubes, preserving first-seen order."""
        seen: set[Cube] = set()
        kept = []
        for cube in self._cubes:
            if cube not in seen:
                seen.add(cube)
                kept.append(cube)
        return Cover(self.n, kept)

    def with_cube(self, cube: Cube) -> "Cover":
        return Cover(self.n, self._cubes + (cube,))

    def without_index(self, index: int) -> "Cover":
        return Cover(self.n, self._cubes[:index] + self._cubes[index + 1:])

    def complement_inputs(self) -> "Cover":
        """The cover of ``f(~x)`` (every literal's polarity flipped)."""
        return Cover(self.n, (cube.complement_literals() for cube in self._cubes))

    def is_tautology(self) -> bool:
        """Exact recursive tautology check (no truth-table materialisation)."""
        return _tautology_on(list(self._cubes), list(range(self.n)))

    def irredundant(self) -> "Cover":
        """Remove cubes whose minterms are covered by the remaining cubes."""
        cubes = list(self.deduplicate().drop_contained())
        changed = True
        while changed:
            changed = False
            for i, cube in enumerate(cubes):
                rest = Cover(self.n, cubes[:i] + cubes[i + 1:])
                if rest.covers_cube(cube):
                    cubes.pop(i)
                    changed = True
                    break
        return Cover(self.n, cubes)


def _tautology_on(cubes: list[Cube], free_vars: list[int]) -> bool:
    """Recursive tautology check of a cube list over the given variables.

    Standard unate-style recursion: succeed on a universal-over-free cube,
    fail on an empty list, otherwise split on the most constrained variable.
    """
    if not cubes:
        return False
    free_mask = 0
    for v in free_vars:
        free_mask |= 1 << v
    for cube in cubes:
        if cube.care_mask & free_mask == 0:
            # A cube with no constraint on the free space covers all of it.
            return True
    if not free_vars:
        return False
    # Pick the free variable appearing in the most cubes (fastest shrink).
    counts = {v: 0 for v in free_vars}
    for cube in cubes:
        for v in free_vars:
            if (cube.care_mask >> v) & 1:
                counts[v] += 1
    var = max(free_vars, key=lambda v: counts[v])
    remaining = [v for v in free_vars if v != var]
    for value in (False, True):
        branch = []
        for cube in cubes:
            cof = cube.cofactor(var, value)
            if cof is not None:
                branch.append(cof)
        if not _tautology_on(branch, remaining):
            return False
    return True
