"""Boolean expression AST and parser.

The parser accepts the notation used throughout the DATE'17 paper and its
references, e.g. ``x1 x2 x3 + x4 x5 x6`` (juxtaposition/space = AND,
``+`` = OR, postfix ``'`` = NOT) as well as programming-style operators
(``&``, ``|``, ``^``, ``~``, ``!``).  Parsed expressions evaluate against
integer assignments and convert to truth tables and covers.

Grammar (precedence low to high)::

    expr     := orexpr
    orexpr   := xorexpr ( ('|' | '+') xorexpr )*
    xorexpr  := andexpr ( '^' andexpr )*
    andexpr  := unary ( ('&' | '*')? unary )*        # adjacency is AND
    unary    := ('~' | '!') unary | primary ("'")*
    primary  := NAME | '0' | '1' | '(' expr ')'
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from .cover import Cover
from .cube import Cube, Literal
from .truthtable import TruthTable


class ExpressionError(ValueError):
    """Raised for syntax errors and unknown variables."""


# ----------------------------------------------------------------------
# AST nodes
# ----------------------------------------------------------------------
class Node:
    """Base class for expression nodes."""

    def evaluate(self, env: dict[str, bool]) -> bool:
        raise NotImplementedError

    def variables(self) -> set[str]:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Node):
    value: bool

    def evaluate(self, env: dict[str, bool]) -> bool:
        return self.value

    def variables(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Var(Node):
    name: str

    def evaluate(self, env: dict[str, bool]) -> bool:
        try:
            return env[self.name]
        except KeyError:
            raise ExpressionError(f"unbound variable {self.name!r}") from None

    def variables(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Node):
    child: Node

    def evaluate(self, env: dict[str, bool]) -> bool:
        return not self.child.evaluate(env)

    def variables(self) -> set[str]:
        return self.child.variables()

    def __str__(self) -> str:
        return f"~{self.child}" if isinstance(self.child, (Var, Const)) else f"~({self.child})"


@dataclass(frozen=True)
class NaryOp(Node):
    children: tuple[Node, ...]

    _symbol = "?"

    def variables(self) -> set[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.variables()
        return out

    def __str__(self) -> str:
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, NaryOp):
                text = f"({text})"
            parts.append(text)
        return f" {self._symbol} ".join(parts)


class And(NaryOp):
    _symbol = "&"

    def evaluate(self, env: dict[str, bool]) -> bool:
        return all(child.evaluate(env) for child in self.children)


class Or(NaryOp):
    _symbol = "|"

    def evaluate(self, env: dict[str, bool]) -> bool:
        return any(child.evaluate(env) for child in self.children)


class Xor(NaryOp):
    _symbol = "^"

    def evaluate(self, env: dict[str, bool]) -> bool:
        result = False
        for child in self.children:
            result ^= child.evaluate(env)
        return result


# ----------------------------------------------------------------------
# Tokeniser / parser
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<op>[()&|^+*~!'])|(?P<const>[01]))"
)


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ExpressionError(f"unexpected character {remainder[0]!r} at offset {pos}")
        pos = match.end()
        if match.group("name"):
            yield "name", match.group("name")
        elif match.group("const"):
            yield "const", match.group("const")
        else:
            yield "op", match.group("op")


class _Parser:
    def __init__(self, text: str):
        self.tokens = list(_tokenize(text))
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        token = self.take()
        if token != ("op", value):
            raise ExpressionError(f"expected {value!r}, got {token[1]!r}")

    def parse(self) -> Node:
        node = self.orexpr()
        if self.peek() is not None:
            raise ExpressionError(f"trailing input near {self.peek()[1]!r}")
        return node

    def orexpr(self) -> Node:
        parts = [self.xorexpr()]
        while self.peek() in (("op", "|"), ("op", "+")):
            self.take()
            parts.append(self.xorexpr())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def xorexpr(self) -> Node:
        parts = [self.andexpr()]
        while self.peek() == ("op", "^"):
            self.take()
            parts.append(self.andexpr())
        return parts[0] if len(parts) == 1 else Xor(tuple(parts))

    def andexpr(self) -> Node:
        parts = [self.unary()]
        while True:
            token = self.peek()
            if token in (("op", "&"), ("op", "*")):
                self.take()
                parts.append(self.unary())
            elif token is not None and (token[0] in ("name", "const") or token == ("op", "(")
                                        or token[0] == "op" and token[1] in "~!"):
                # Adjacency (e.g. "x1 x2" or "x1(x2+x3)") means AND.
                parts.append(self.unary())
            else:
                break
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def unary(self) -> Node:
        token = self.peek()
        if token is not None and token[0] == "op" and token[1] in "~!":
            self.take()
            return Not(self.unary())
        node = self.primary()
        while self.peek() == ("op", "'"):
            self.take()
            node = Not(node)
        return node

    def primary(self) -> Node:
        kind, value = self.take()
        if kind == "name":
            return Var(value)
        if kind == "const":
            return Const(value == "1")
        if (kind, value) == ("op", "("):
            node = self.orexpr()
            self.expect(")")
            return node
        raise ExpressionError(f"unexpected token {value!r}")


def parse_expression(text: str) -> Node:
    """Parse a Boolean expression string into an AST."""
    if not text or not text.strip():
        raise ExpressionError("empty expression")
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------
def _natural_key(name: str) -> tuple:
    """Sort x2 before x10 by splitting digit runs."""
    return tuple(int(part) if part.isdigit() else part
                 for part in re.split(r"(\d+)", name))


def expression_variables(node: Node) -> list[str]:
    """Variables of an expression in natural sorted order (x1, x2, ..., x10)."""
    return sorted(node.variables(), key=_natural_key)


def expression_to_truth_table(
    node: Node, names: Sequence[str] | None = None
) -> tuple[TruthTable, list[str]]:
    """Evaluate an AST into a truth table.

    Args:
        node: parsed expression.
        names: optional explicit variable order; must include every variable
            of the expression.  Defaults to natural sorted order.

    Returns:
        ``(table, names)`` where bit ``i`` of a table index is the value of
        ``names[i]``.
    """
    if names is None:
        names = expression_variables(node)
    else:
        names = list(names)
        missing = node.variables() - set(names)
        if missing:
            raise ExpressionError(f"names missing variables: {sorted(missing)}")
    n = len(names)
    if n > 20:
        raise ExpressionError(f"expression has too many variables ({n}) for a dense table")
    values = []
    for assignment in range(1 << n):
        env = {name: bool((assignment >> i) & 1) for i, name in enumerate(names)}
        values.append(node.evaluate(env))
    return TruthTable(n, values), list(names)


def expression_to_cover(
    node: Node, names: Sequence[str] | None = None
) -> tuple[Cover, list[str]]:
    """Convert an AST directly to a cover when it is already in SOP shape.

    Works for OR-of-AND-of-literal trees (the form used in the paper); falls
    back to the canonical minterm cover otherwise.
    """
    if names is None:
        names = expression_variables(node)
    index = {name: i for i, name in enumerate(names)}

    def as_literal(child: Node) -> Literal | None:
        if isinstance(child, Var):
            return Literal(index[child.name], True)
        if isinstance(child, Not) and isinstance(child.child, Var):
            return Literal(index[child.child.name], False)
        return None

    _SKIP = object()  # contradictory product: legal SOP, covers nothing

    def as_cube(child: Node) -> Cube | None | object:
        lit = as_literal(child)
        if lit is not None:
            return Cube.from_literals(len(names), [lit])
        if isinstance(child, Const):
            return Cube.universe(len(names)) if child.value else _SKIP
        if isinstance(child, And):
            literals = []
            for grand in child.children:
                lit = as_literal(grand)
                if lit is None:
                    return None
                literals.append(lit)
            try:
                return Cube.from_literals(len(names), literals)
            except ValueError:
                return _SKIP
        return None

    terms = node.children if isinstance(node, Or) else (node,)
    cubes = []
    for term in terms:
        cube = as_cube(term)
        if cube is None:
            table, _ = expression_to_truth_table(node, names)
            return Cover.from_truth_table(table), list(names)
        if cube is _SKIP:
            continue
        cubes.append(cube)
    return Cover(len(names), cubes), list(names)
