"""Berkeley/espresso PLA format reader and writer.

The benchmark tables in the lattice-synthesis literature ([2], [5], [6],
[9]) are espresso ``.pla`` files.  This module parses and emits the common
subset of the format: ``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type``
(``f``, ``fd``, ``fr``), cube lines and ``.e``.

Multi-output PLAs are represented as a list of single-output
(on-set, dc-set) pairs, which is what the synthesis flows consume (each
crossbar output plane is synthesised independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .cover import Cover
from .cube import Cube
from .truthtable import TruthTable


class PlaError(ValueError):
    """Raised on malformed PLA input."""


@dataclass
class Pla:
    """A parsed PLA: input/output counts, names and raw cube rows."""

    num_inputs: int
    num_outputs: int
    input_names: list[str] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)
    #: rows of (input cube, output pattern) strings, e.g. ("1-0", "1")
    rows: list[tuple[str, str]] = field(default_factory=list)
    #: espresso .type: "f" (on-set only), "fd" (on + dc), "fr" (on + off)
    logic_type: str = "fd"

    def __post_init__(self) -> None:
        if not self.input_names:
            self.input_names = [f"x{i + 1}" for i in range(self.num_inputs)]
        if not self.output_names:
            self.output_names = [f"f{i}" for i in range(self.num_outputs)]

    # ------------------------------------------------------------------
    def output_cover(self, output: int = 0) -> tuple[Cover, Cover]:
        """Return ``(on_cover, dc_cover)`` for one output column.

        Output symbols: ``1`` adds the row's input cube to the on-set,
        ``-``/``2`` to the dc-set (type fd), ``0`` is off (type fr) or
        "not part of this output" (type f/fd), ``~`` is ignored.
        """
        if not 0 <= output < self.num_outputs:
            raise PlaError(f"output {output} out of range")
        on: list[Cube] = []
        dc: list[Cube] = []
        for in_part, out_part in self.rows:
            symbol = out_part[output]
            if symbol == "1" or symbol == "4":
                on.append(Cube.from_string(in_part))
            elif symbol in "-2" and self.logic_type in ("fd", "fdr"):
                dc.append(Cube.from_string(in_part))
        return Cover(self.num_inputs, on), Cover(self.num_inputs, dc)

    def output_tables(self, output: int = 0) -> tuple[TruthTable, TruthTable]:
        """Dense ``(on, dc)`` truth tables for one output column."""
        on, dc = self.output_cover(output)
        return on.to_truth_table(), dc.to_truth_table()

    def single_output(self) -> tuple[TruthTable, TruthTable]:
        """Convenience accessor for 1-output PLAs."""
        if self.num_outputs != 1:
            raise PlaError(f"expected a single-output PLA, got {self.num_outputs}")
        return self.output_tables(0)


def parse_pla(text: str) -> Pla:
    """Parse PLA text into a :class:`Pla` structure."""
    num_inputs: int | None = None
    num_outputs: int | None = None
    input_names: list[str] = []
    output_names: list[str] = []
    logic_type = "fd"
    rows: list[tuple[str, str]] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword == ".i":
                num_inputs = int(parts[1])
            elif keyword == ".o":
                num_outputs = int(parts[1])
            elif keyword == ".ilb":
                input_names = parts[1:]
            elif keyword == ".ob":
                output_names = parts[1:]
            elif keyword == ".type":
                logic_type = parts[1]
            elif keyword in (".p", ".e", ".end"):
                continue
            else:
                # Unknown directives (.phase, .pair, ...) are skipped.
                continue
        else:
            parts = line.split()
            if len(parts) == 1:
                if num_inputs is None:
                    raise PlaError("cube line before .i declaration")
                in_part = parts[0][:num_inputs]
                out_part = parts[0][num_inputs:]
            else:
                in_part = parts[0]
                out_part = "".join(parts[1:])
            rows.append((in_part, out_part))
    if num_inputs is None or num_outputs is None:
        raise PlaError("PLA must declare .i and .o")
    for in_part, out_part in rows:
        if len(in_part) != num_inputs:
            raise PlaError(f"input cube {in_part!r} length != .i {num_inputs}")
        if len(out_part) != num_outputs:
            raise PlaError(f"output part {out_part!r} length != .o {num_outputs}")
    return Pla(
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        input_names=input_names,
        output_names=output_names,
        rows=rows,
        logic_type=logic_type,
    )


def write_pla(pla: Pla) -> str:
    """Serialise a :class:`Pla` back to espresso text."""
    lines = [f".i {pla.num_inputs}", f".o {pla.num_outputs}"]
    if pla.input_names:
        lines.append(".ilb " + " ".join(pla.input_names))
    if pla.output_names:
        lines.append(".ob " + " ".join(pla.output_names))
    if pla.logic_type != "fd":
        lines.append(f".type {pla.logic_type}")
    lines.append(f".p {len(pla.rows)}")
    lines.extend(f"{a} {b}" for a, b in pla.rows)
    lines.append(".e")
    return "\n".join(lines) + "\n"


def cover_to_pla(cover: Cover, dc: Cover | None = None,
                 input_names: Iterable[str] | None = None) -> Pla:
    """Wrap a single-output cover (plus optional dc cover) as a PLA."""
    rows = [(str(cube), "1") for cube in cover]
    if dc is not None:
        rows.extend((str(cube), "-") for cube in dc)
    return Pla(
        num_inputs=cover.n,
        num_outputs=1,
        input_names=list(input_names) if input_names is not None else [],
        rows=rows,
    )
