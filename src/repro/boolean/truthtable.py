"""Dense truth tables backed by numpy boolean arrays.

A :class:`TruthTable` stores the value of a Boolean function for all ``2^n``
assignments; index ``m`` holds ``f(m)`` where bit ``i`` of ``m`` is the value
of variable ``x_i``.  Truth tables are the semantic ground truth of the
package: synthesis results (two-terminal arrays, lattices, decompositions)
are all validated by comparing their evaluated truth tables.

Tables are practical for ``n`` up to about 20; all functions in the DATE'17
experiments have far fewer inputs.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from .cube import Cube

#: Largest variable count for which dense tables are allowed.
MAX_DENSE_VARS = 24

#: Wire-format magic/version for :meth:`TruthTable.to_bytes` (mirrors
#: ``repro.reliability.defects.DefectMap``'s ``b"DM1\0"``).
_WIRE_MAGIC = b"TT1\x00"


def _check_n(n: int) -> None:
    if n < 0:
        raise ValueError("variable count must be non-negative")
    if n > MAX_DENSE_VARS:
        raise ValueError(
            f"dense truth tables support at most {MAX_DENSE_VARS} variables, got {n}"
        )


class TruthTable:
    """An immutable dense truth table over ``n`` variables."""

    __slots__ = ("n", "_values")

    def __init__(self, n: int,
                 values: np.ndarray | Sequence[bool] | Sequence[int]) -> None:
        _check_n(n)
        arr = np.asarray(values, dtype=bool)
        if arr.shape != (1 << n,):
            raise ValueError(
                f"expected {1 << n} entries for {n} variables, got shape {arr.shape}"
            )
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "_values", arr)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TruthTable is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def constant(n: int, value: bool) -> "TruthTable":
        """The constant-0 or constant-1 function."""
        _check_n(n)
        return TruthTable(n, np.full(1 << n, bool(value)))

    @staticmethod
    def variable(n: int, var: int) -> "TruthTable":
        """The projection function ``f(x) = x_var``."""
        _check_n(n)
        if not 0 <= var < n:
            raise ValueError(f"variable {var} out of range for n={n}")
        idx = np.arange(1 << n)
        return TruthTable(n, ((idx >> var) & 1).astype(bool))

    @staticmethod
    def from_minterms(n: int, minterms: Iterable[int]) -> "TruthTable":
        """Build from an iterable of on-set minterms."""
        _check_n(n)
        arr = np.zeros(1 << n, dtype=bool)
        for m in minterms:
            if not 0 <= m < (1 << n):
                raise ValueError(f"minterm {m} out of range for n={n}")
            arr[m] = True
        return TruthTable(n, arr)

    @staticmethod
    def from_callable(n: int, fn: Callable[[int], bool]) -> "TruthTable":
        """Build by evaluating ``fn`` on every assignment (slow but general)."""
        _check_n(n)
        return TruthTable(n, np.fromiter((bool(fn(m)) for m in range(1 << n)),
                                         dtype=bool, count=1 << n))

    @staticmethod
    def from_cubes(n: int, cubes: Iterable[Cube]) -> "TruthTable":
        """OR of a set of cubes, evaluated with vectorised mask tests."""
        _check_n(n)
        idx = np.arange(1 << n)
        arr = np.zeros(1 << n, dtype=bool)
        for cube in cubes:
            if cube.n != n:
                raise ValueError("cube dimension mismatch")
            hit = np.ones(1 << n, dtype=bool)
            if cube.pos:
                hit &= (idx & cube.pos) == cube.pos
            if cube.neg:
                hit &= (idx & cube.neg) == 0
            arr |= hit
        return TruthTable(n, arr)

    @staticmethod
    def from_bits(n: int, bits: int) -> "TruthTable":
        """Build from an integer whose bit ``m`` is ``f(m)``."""
        _check_n(n)
        idx = np.arange(1 << n)
        if n <= 6 and bits < (1 << 63):  # keep numpy's shift inside int64
            arr = ((bits >> idx) & 1).astype(bool)
        else:
            arr = np.fromiter((((bits >> int(m)) & 1) for m in idx),
                              dtype=bool, count=1 << n)
        return TruthTable(n, arr)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only numpy view of the 2^n values."""
        return self._values

    @property
    def bits(self) -> int:
        """The table packed into a Python int (bit ``m`` = ``f(m)``)."""
        result = 0
        for m in np.flatnonzero(self._values):
            result |= 1 << int(m)
        return result

    # ------------------------------------------------------------------
    # Compact serialization (process boundaries, content-hash caching)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact, deterministic wire format (packed-bit payload).

        Layout: ``b"TT1\\0"`` magic, ``<B`` variable count, then the
        ``2^n`` values packed eight to a byte little-endian (bit ``k`` of
        byte ``j`` is ``f(8j + k)``).  Equal tables always serialise to
        equal bytes, so the output is content-hashable; the engine cache
        keys NPN-canonical representatives by :meth:`content_hash`.
        """
        payload = np.packbits(self._values, bitorder="little").tobytes()
        return struct.pack("<4sB", _WIRE_MAGIC, self.n) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "TruthTable":
        """Inverse of :meth:`to_bytes` (validates magic, size, padding)."""
        head_size = struct.calcsize("<4sB")
        if len(data) < head_size:
            raise ValueError("truth-table payload shorter than its header")
        magic, n = struct.unpack_from("<4sB", data)
        if magic != _WIRE_MAGIC:
            raise ValueError(f"bad truth-table magic {magic!r}")
        _check_n(n)
        payload = data[head_size:]
        expected = ((1 << n) + 7) // 8
        if len(payload) != expected:
            raise ValueError(
                f"expected {expected} payload bytes for n={n}, got {len(payload)}"
            )
        packed = np.frombuffer(payload, dtype=np.uint8)
        bits = np.unpackbits(packed, bitorder="little")
        if bits[1 << n:].any():
            raise ValueError("nonzero padding bits in truth-table payload")
        return cls(n, bits[:1 << n].astype(bool))

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`to_bytes` (stable cache key)."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def __call__(self, assignment: int) -> bool:
        return bool(self._values[assignment])

    def evaluate(self, assignment: int) -> bool:
        """Value of the function at one assignment."""
        return bool(self._values[assignment])

    def minterms(self) -> Iterator[int]:
        """Iterate the on-set minterms in increasing order."""
        for m in np.flatnonzero(self._values):
            yield int(m)

    def count_ones(self) -> int:
        """Size of the on-set."""
        return int(self._values.sum())

    def is_constant(self) -> bool:
        """True for the two constant functions."""
        ones = self.count_ones()
        return ones == 0 or ones == (1 << self.n)

    def is_tautology(self) -> bool:
        return bool(self._values.all())

    def is_contradiction(self) -> bool:
        return not self._values.any()

    def depends_on(self, var: int) -> bool:
        """True when the function actually depends on ``x_var``."""
        return self.cofactor(var, False) != self.cofactor(var, True)

    def support(self) -> list[int]:
        """Indices of the variables the function depends on."""
        return [v for v in range(self.n) if self.depends_on(v)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self._values, other._values))

    def __hash__(self) -> int:
        return hash((self.n, self._values.tobytes()))

    def __repr__(self) -> str:
        if self.n <= 6:
            body = "".join("1" if v else "0" for v in self._values)
            return f"TruthTable(n={self.n}, {body})"
        return f"TruthTable(n={self.n}, |on|={self.count_ones()})"

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def _coerce(self, other: "TruthTable") -> None:
        if not isinstance(other, TruthTable):
            raise TypeError(f"expected TruthTable, got {type(other).__name__}")
        if other.n != self.n:
            raise ValueError("operands live in different variable spaces")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._coerce(other)
        return TruthTable(self.n, self._values & other._values)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._coerce(other)
        return TruthTable(self.n, self._values | other._values)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._coerce(other)
        return TruthTable(self.n, self._values ^ other._values)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n, ~self._values)

    def implies(self, other: "TruthTable") -> bool:
        """True iff the on-set of ``self`` is contained in ``other``'s."""
        self._coerce(other)
        return bool((~self._values | other._values).all())

    def difference(self, other: "TruthTable") -> "TruthTable":
        """On-set difference ``self & ~other``."""
        self._coerce(other)
        return TruthTable(self.n, self._values & ~other._values)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def dual(self) -> "TruthTable":
        """The dual function ``f^D(x) = ~f(~x)``.

        Duality is the engine of both the FET plane sizes (Fig. 3) and the
        lattice row count (Fig. 5).
        """
        idx = np.arange(1 << self.n) ^ ((1 << self.n) - 1)
        return TruthTable(self.n, ~self._values[idx])

    def is_self_dual(self) -> bool:
        """True when ``f = f^D``."""
        return self == self.dual()

    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Shannon cofactor as a function of the remaining n-1 variables."""
        if not 0 <= var < self.n:
            raise ValueError(f"variable {var} out of range for n={self.n}")
        idx = np.arange(1 << (self.n - 1))
        low = idx & ((1 << var) - 1)
        high = (idx >> var) << (var + 1)
        full = high | low | ((1 << var) if value else 0)
        return TruthTable(self.n - 1, self._values[full])

    def restrict(self, var: int, value: bool) -> "TruthTable":
        """Cofactor that stays in the n-variable space (x_var ignored)."""
        idx = np.arange(1 << self.n)
        forced = (idx & ~(1 << var)) | ((1 << var) if value else 0)
        return TruthTable(self.n, self._values[forced])

    def compose_variable(self, var: int, table: "TruthTable") -> "TruthTable":
        """Substitute ``x_var := g(x)`` where ``g`` is over the same space."""
        self._coerce(table)
        idx = np.arange(1 << self.n)
        forced = (idx & ~(1 << var)) | (table._values.astype(np.int64) << var)
        return TruthTable(self.n, self._values[forced])

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Reorder variables: new variable ``i`` is old variable ``perm[i]``."""
        if sorted(perm) != list(range(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        idx = np.arange(1 << self.n)
        old = np.zeros(1 << self.n, dtype=np.int64)
        for new_var, old_var in enumerate(perm):
            old |= ((idx >> new_var) & 1) << old_var
        return TruthTable(self.n, self._values[old])

    def extend(self, extra: int) -> "TruthTable":
        """Add ``extra`` fresh (ignored) variables above the current ones."""
        if extra < 0:
            raise ValueError("extra must be >= 0")
        _check_n(self.n + extra)
        return TruthTable(self.n + extra, np.tile(self._values, 1 << extra))

    def shannon(self, var: int) -> tuple["TruthTable", "TruthTable"]:
        """Return (negative cofactor, positive cofactor) for ``x_var``."""
        return self.cofactor(var, False), self.cofactor(var, True)

    def minterm_cubes(self) -> list[Cube]:
        """The canonical (minterm) cover of the on-set."""
        return [Cube.from_minterm(self.n, m) for m in self.minterms()]
