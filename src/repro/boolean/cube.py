"""Ternary cubes (product terms) and literals.

A *cube* over ``n`` Boolean variables is a product of literals, represented
positionally: each variable is either required positive (``1``), required
negative (``0``) or absent / don't-care (``-``).  Cubes are the basic unit of
two-level (SOP) logic in this package: covers (:mod:`repro.boolean.cover`)
are lists of cubes, and both the diode/FET array synthesis of Fig. 3 and the
lattice synthesis of Fig. 5 of the DATE'17 paper consume cubes directly.

Internally a cube stores two bit masks, ``pos`` and ``neg``: bit ``i`` of
``pos`` is set when literal ``x_i`` appears, bit ``i`` of ``neg`` when
``~x_i`` appears.  The masks are always disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, order=True)
class Literal:
    """A single literal: variable index plus polarity.

    ``Literal(2, True)`` is ``x2`` and ``Literal(2, False)`` is ``~x2``.
    Lattice sites, array columns and cube iterators all traffic in
    ``Literal`` objects.
    """

    var: int
    positive: bool = True

    def __post_init__(self) -> None:
        if self.var < 0:
            raise ValueError(f"variable index must be >= 0, got {self.var}")

    def negated(self) -> "Literal":
        """Return the literal with opposite polarity on the same variable."""
        return Literal(self.var, not self.positive)

    def evaluate(self, assignment: int) -> bool:
        """Evaluate under an integer assignment (bit ``i`` = value of x_i)."""
        bit = (assignment >> self.var) & 1
        return bool(bit) == self.positive

    def name(self, names: Sequence[str] | None = None) -> str:
        """Render the literal, optionally with symbolic variable names."""
        base = names[self.var] if names is not None else f"x{self.var + 1}"
        return base if self.positive else base + "'"

    def __str__(self) -> str:
        return self.name()


@dataclass(frozen=True)
class Cube:
    """An immutable product term over ``n`` variables.

    Attributes:
        n: number of variables in the space the cube lives in.
        pos: bitmask of variables appearing as positive literals.
        neg: bitmask of variables appearing as negative literals.
    """

    n: int
    pos: int = 0
    neg: int = 0

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("cube dimension must be non-negative")
        full = (1 << self.n) - 1
        if self.pos & ~full or self.neg & ~full:
            raise ValueError("literal mask references a variable outside the cube space")
        if self.pos & self.neg:
            raise ValueError("a variable cannot appear in both polarities within one cube")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_string(text: str) -> "Cube":
        """Parse positional notation, e.g. ``"1-0"`` = x1 & ~x3 (n=3)."""
        pos = neg = 0
        for i, ch in enumerate(text):
            if ch == "1":
                pos |= 1 << i
            elif ch == "0":
                neg |= 1 << i
            elif ch not in "-2~":
                raise ValueError(f"bad cube character {ch!r} in {text!r}")
        return Cube(len(text), pos, neg)

    @staticmethod
    def from_literals(n: int, literals: Iterable[Literal]) -> "Cube":
        """Build a cube from an iterable of :class:`Literal`."""
        pos = neg = 0
        for lit in literals:
            if lit.var >= n:
                raise ValueError(f"literal {lit} outside space of {n} variables")
            if lit.positive:
                pos |= 1 << lit.var
            else:
                neg |= 1 << lit.var
        if pos & neg:
            raise ValueError("contradictory literals produce an empty product")
        return Cube(n, pos, neg)

    @staticmethod
    def from_minterm(n: int, minterm: int) -> "Cube":
        """The full cube (all ``n`` literals) matching exactly one minterm."""
        full = (1 << n) - 1
        if minterm & ~full:
            raise ValueError(f"minterm {minterm} outside space of {n} variables")
        return Cube(n, minterm, full & ~minterm)

    @staticmethod
    def universe(n: int) -> "Cube":
        """The empty product (tautology cube) covering the whole space."""
        return Cube(n, 0, 0)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def care_mask(self) -> int:
        """Bitmask of variables the cube constrains."""
        return self.pos | self.neg

    @property
    def num_literals(self) -> int:
        """Number of literals in the product."""
        return bin(self.care_mask).count("1")

    def literals(self) -> Iterator[Literal]:
        """Iterate the literals of the cube in variable order."""
        mask = self.care_mask
        var = 0
        while mask:
            if mask & 1:
                yield Literal(var, bool((self.pos >> var) & 1))
            mask >>= 1
            var += 1

    def literal_set(self) -> frozenset[Literal]:
        """The literals as a frozen set (used by the duality lemma check)."""
        return frozenset(self.literals())

    def polarity(self, var: int) -> str:
        """Return ``"1"``, ``"0"`` or ``"-"`` for a variable position."""
        if (self.pos >> var) & 1:
            return "1"
        if (self.neg >> var) & 1:
            return "0"
        return "-"

    def __str__(self) -> str:
        return "".join(self.polarity(i) for i in range(self.n))

    def to_expression(self, names: Sequence[str] | None = None) -> str:
        """Render as a conjunction such as ``x1 & x3'`` (``1`` if empty)."""
        lits = [lit.name(names) for lit in self.literals()]
        return " & ".join(lits) if lits else "1"

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: int) -> bool:
        """True iff the product evaluates to 1 under the integer assignment."""
        if self.pos & ~assignment:
            return False
        if self.neg & assignment:
            return False
        return True

    def minterms(self) -> Iterator[int]:
        """Enumerate all minterms covered by the cube (2^free of them)."""
        free = [i for i in range(self.n) if not (self.care_mask >> i) & 1]
        base = self.pos
        for combo in range(1 << len(free)):
            m = base
            for j, var in enumerate(free):
                if (combo >> j) & 1:
                    m |= 1 << var
            yield m

    def size(self) -> int:
        """Number of minterms covered: 2^(n - num_literals)."""
        return 1 << (self.n - self.num_literals)

    # ------------------------------------------------------------------
    # Relations and operations
    # ------------------------------------------------------------------
    def contains(self, other: "Cube") -> bool:
        """True iff ``other``'s minterms are a subset of this cube's.

        Containment holds when every literal of ``self`` also appears in
        ``other`` (fewer constraints cover more space).
        """
        if self.n != other.n:
            raise ValueError("cubes live in different spaces")
        return (self.pos & ~other.pos) == 0 and (self.neg & ~other.neg) == 0

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one minterm."""
        if self.n != other.n:
            raise ValueError("cubes live in different spaces")
        return (self.pos & other.neg) == 0 and (self.neg & other.pos) == 0

    def intersection(self, other: "Cube") -> "Cube | None":
        """The product of the two cubes, or ``None`` when they conflict."""
        if not self.intersects(other):
            return None
        return Cube(self.n, self.pos | other.pos, self.neg | other.neg)

    def shared_literals(self, other: "Cube") -> list[Literal]:
        """Literals appearing (same polarity) in both cubes.

        The Altun-Riedel lattice construction relies on the duality lemma:
        any product of ``f`` shares at least one literal with any product of
        ``f^D``; the shared literal becomes the lattice site assignment.
        """
        if self.n != other.n:
            raise ValueError("cubes live in different spaces")
        shared_pos = self.pos & other.pos
        shared_neg = self.neg & other.neg
        result = []
        for var in range(self.n):
            if (shared_pos >> var) & 1:
                result.append(Literal(var, True))
            elif (shared_neg >> var) & 1:
                result.append(Literal(var, False))
        return result

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes have opposite polarities."""
        if self.n != other.n:
            raise ValueError("cubes live in different spaces")
        conflict = (self.pos & other.neg) | (self.neg & other.pos)
        return bin(conflict).count("1")

    def merge(self, other: "Cube") -> "Cube | None":
        """Quine-McCluskey adjacency merge.

        Two cubes with identical care masks differing in exactly one
        variable's polarity combine into one cube with that variable freed.
        Returns ``None`` when the cubes are not adjacent.
        """
        if self.n != other.n:
            raise ValueError("cubes live in different spaces")
        if self.care_mask != other.care_mask:
            return None
        conflict = (self.pos & other.neg) | (self.neg & other.pos)
        if bin(conflict).count("1") != 1:
            return None
        return Cube(self.n, self.pos & ~conflict, self.neg & ~conflict)

    def consensus(self, other: "Cube") -> "Cube | None":
        """Consensus term on the unique conflicting variable, if any."""
        if self.n != other.n:
            raise ValueError("cubes live in different spaces")
        conflict = (self.pos & other.neg) | (self.neg & other.pos)
        if bin(conflict).count("1") != 1:
            return None
        pos = (self.pos | other.pos) & ~conflict
        neg = (self.neg | other.neg) & ~conflict
        if pos & neg:
            return None
        return Cube(self.n, pos, neg)

    def cofactor(self, var: int, value: bool) -> "Cube | None":
        """Restrict ``x_var = value``; ``None`` when the cube vanishes."""
        bit = 1 << var
        if value and (self.neg & bit):
            return None
        if not value and (self.pos & bit):
            return None
        return Cube(self.n, self.pos & ~bit, self.neg & ~bit)

    def remove_variable(self, var: int) -> "Cube":
        """Drop any literal on ``var`` (existential quantification)."""
        bit = 1 << var
        return Cube(self.n, self.pos & ~bit, self.neg & ~bit)

    def with_literal(self, lit: Literal) -> "Cube | None":
        """Add one literal; ``None`` when it contradicts the cube."""
        bit = 1 << lit.var
        if lit.positive:
            if self.neg & bit:
                return None
            return Cube(self.n, self.pos | bit, self.neg)
        if self.pos & bit:
            return None
        return Cube(self.n, self.pos, self.neg | bit)

    def without_variable(self, var: int) -> "Cube":
        """Alias of :meth:`remove_variable` (espresso EXPAND step)."""
        return self.remove_variable(var)

    def complement_literals(self) -> "Cube":
        """Swap the polarity of every literal (used to build f(~x))."""
        return Cube(self.n, self.neg, self.pos)

    def project_out(self, var: int) -> "Cube":
        """Re-index the cube into an (n-1)-variable space, dropping ``var``.

        The cube must not constrain ``var``; higher variable indices shift
        down by one.  Used by P-circuit cofactor blocks, which live in the
        (n-1)-dimensional sub-space.
        """
        bit = 1 << var
        if self.care_mask & bit:
            raise ValueError(f"cube still constrains variable {var}")
        low = bit - 1
        pos = (self.pos & low) | ((self.pos >> 1) & ~low)
        neg = (self.neg & low) | ((self.neg >> 1) & ~low)
        return Cube(self.n - 1, pos, neg)

    def lift(self, var: int) -> "Cube":
        """Inverse of :meth:`project_out`: insert an unconstrained variable."""
        low = (1 << var) - 1
        pos = (self.pos & low) | ((self.pos & ~low) << 1)
        neg = (self.neg & low) | ((self.neg & ~low) << 1)
        return Cube(self.n + 1, pos, neg)
