"""Reduced Ordered Binary Decision Diagrams.

The paper notes (Section III-A) that nano-crossbar arrays cannot realise
BDD forms directly — functions must be flattened to SOP.  BDDs are still
the right internal representation for *verifying* synthesis results on
functions too large for dense truth tables, and for counting satisfying
assignments in the yield models, so the package carries a small, fully
tested ROBDD engine.

Nodes are interned integers; the manager owns the unique table and the
apply cache.  Variable order is fixed to the natural index order.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .cover import Cover
from .cube import Cube
from .truthtable import TruthTable


class Bdd:
    """A ROBDD manager for functions over ``n`` variables.

    Node ids: ``0`` is constant FALSE, ``1`` is constant TRUE; internal
    nodes are ids >= 2 with attributes ``(var, low, high)``.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("variable count must be non-negative")
        self.n = n
        self._var: list[int] = [n, n]      # terminals sort after all vars
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def node(self, var: int, low: int, high: int) -> int:
        """Intern a node, applying the ROBDD reduction rules."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node_id = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node_id
        return node_id

    def var_node(self, var: int, positive: bool = True) -> int:
        """The BDD of a single literal."""
        if not 0 <= var < self.n:
            raise ValueError(f"variable {var} out of range for n={self.n}")
        if positive:
            return self.node(var, self.FALSE, self.TRUE)
        return self.node(var, self.TRUE, self.FALSE)

    def constant(self, value: bool) -> int:
        return self.TRUE if value else self.FALSE

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------
    def variable_of(self, node: int) -> int:
        return self._var[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        return node < 2

    def size(self, node: int) -> int:
        """Number of internal nodes reachable from ``node``."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur < 2 or cur in seen:
                continue
            seen.add(cur)
            stack.append(self._low[cur])
            stack.append(self._high[cur])
        return len(seen)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def apply(self, op: str, a: int, b: int) -> int:
        """Binary operation: ``and``, ``or``, ``xor``."""
        table: dict[str, Callable[[bool, bool], bool]] = {
            "and": lambda x, y: x and y,
            "or": lambda x, y: x or y,
            "xor": lambda x, y: x != y,
        }
        if op not in table:
            raise ValueError(f"unknown op {op!r}")
        fn = table[op]

        def rec(u: int, v: int) -> int:
            if u < 2 and v < 2:
                return self.constant(fn(bool(u), bool(v)))
            # Short circuits
            if op == "and":
                if u == self.FALSE or v == self.FALSE:
                    return self.FALSE
                if u == self.TRUE:
                    return v
                if v == self.TRUE:
                    return u
                if u == v:
                    return u
            elif op == "or":
                if u == self.TRUE or v == self.TRUE:
                    return self.TRUE
                if u == self.FALSE:
                    return v
                if v == self.FALSE:
                    return u
                if u == v:
                    return u
            elif op == "xor":
                if u == self.FALSE:
                    return v
                if v == self.FALSE:
                    return u
                if u == v:
                    return self.FALSE
            key = (op, u, v) if op != "xor" or u <= v else (op, v, u)
            hit = self._apply_cache.get(key)
            if hit is not None:
                return hit
            var = min(self._var[u], self._var[v])
            u0, u1 = (self._low[u], self._high[u]) if self._var[u] == var else (u, u)
            v0, v1 = (self._low[v], self._high[v]) if self._var[v] == var else (v, v)
            result = self.node(var, rec(u0, v0), rec(u1, v1))
            self._apply_cache[key] = result
            return result

        return rec(a, b)

    def conj(self, a: int, b: int) -> int:
        return self.apply("and", a, b)

    def disj(self, a: int, b: int) -> int:
        return self.apply("or", a, b)

    def xor(self, a: int, b: int) -> int:
        return self.apply("xor", a, b)

    def negate(self, a: int) -> int:
        return self.apply("xor", a, self.TRUE)

    def ite(self, cond: int, then_node: int, else_node: int) -> int:
        """If-then-else composition."""
        return self.disj(
            self.conj(cond, then_node),
            self.conj(self.negate(cond), else_node),
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def from_cube(self, cube: Cube) -> int:
        """Build the conjunction of a cube's literals."""
        result = self.TRUE
        for lit in sorted(cube.literals(), key=lambda literal: -literal.var):
            result = self.conj(self.var_node(lit.var, lit.positive), result)
        return result

    def from_cover(self, cover: Cover) -> int:
        """Build the disjunction of a cover's cubes."""
        result = self.FALSE
        for cube in cover:
            result = self.disj(result, self.from_cube(cube))
        return result

    def from_truth_table(self, table: TruthTable) -> int:
        """Build from a dense truth table (Shannon recursion, ascending vars).

        The manager's invariant is *ascending* variable order along every
        root-to-terminal path; ``apply`` and ``restrict`` rely on it.
        """
        if table.n != self.n:
            raise ValueError("truth table dimension mismatch")
        return self._from_values(tuple(bool(v) for v in table.values), 0)

    def _from_values(self, values: tuple[bool, ...], var: int) -> int:
        if all(values):
            return self.TRUE
        if not any(values):
            return self.FALSE
        # Bit 0 of the local index is variable `var`; halving the tuple
        # re-indexes the remaining variables onto var+1, var+2, ...
        return self.node(
            var,
            self._from_values(values[0::2], var + 1),
            self._from_values(values[1::2], var + 1),
        )

    def evaluate(self, node: int, assignment: int) -> bool:
        """Evaluate by walking the DAG."""
        cur = node
        while cur >= 2:
            if (assignment >> self._var[cur]) & 1:
                cur = self._high[cur]
            else:
                cur = self._low[cur]
        return bool(cur)

    def to_truth_table(self, node: int) -> TruthTable:
        """Materialise as a dense table (n must be small)."""
        return TruthTable.from_callable(self.n, lambda m: self.evaluate(node, m))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def restrict(self, node: int, var: int, value: bool) -> int:
        """Cofactor (stays in the same manager / variable space)."""
        cache: dict[int, int] = {}

        def rec(u: int) -> int:
            if u < 2 or self._var[u] > var:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            if self._var[u] == var:
                result = self._high[u] if value else self._low[u]
            else:
                result = self.node(self._var[u], rec(self._low[u]), rec(self._high[u]))
            cache[u] = result
            return result

        return rec(node)

    def sat_count(self, node: int) -> int:
        """Number of satisfying assignments over all n variables."""
        cache: dict[int, int] = {}

        def rec(u: int) -> int:
            if u == self.FALSE:
                return 0
            if u == self.TRUE:
                return 1 << self.n
            hit = cache.get(u)
            if hit is not None:
                return hit
            # Each child count is over the full space; halve for the split.
            result = (rec(self._low[u]) + rec(self._high[u])) // 2
            cache[u] = result
            return result

        return rec(node)

    def any_sat(self, node: int) -> int | None:
        """One satisfying assignment (as an int), or None for FALSE."""
        if node == self.FALSE:
            return None
        assignment = 0
        cur = node
        while cur >= 2:
            if self._low[cur] != self.FALSE:
                cur = self._low[cur]
            else:
                assignment |= 1 << self._var[cur]
                cur = self._high[cur]
        return assignment

    def support(self, node: int) -> list[int]:
        """Variables the function depends on."""
        seen: set[int] = set()
        vars_found: set[int] = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur < 2 or cur in seen:
                continue
            seen.add(cur)
            vars_found.add(self._var[cur])
            stack.append(self._low[cur])
            stack.append(self._high[cur])
        return sorted(vars_found)

    def iter_prime_paths(self, node: int) -> Iterator[Cube]:
        """Iterate cubes for each 1-path of the BDD (a disjoint SOP)."""

        def rec(u: int, cube: Cube) -> Iterator[Cube]:
            if u == self.FALSE:
                return
            if u == self.TRUE:
                yield cube
                return
            var = self._var[u]
            low_cube = cube.with_literal(_lit(var, False))
            if low_cube is not None:
                yield from rec(self._low[u], low_cube)
            high_cube = cube.with_literal(_lit(var, True))
            if high_cube is not None:
                yield from rec(self._high[u], high_cube)

        yield from rec(node, Cube.universe(self.n))


def _lit(var: int, positive: bool):
    from .cube import Literal

    return Literal(var, positive)
