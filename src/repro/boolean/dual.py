"""Dual functions and the duality lemma.

The dual ``f^D(x) = ~f(~x)`` drives two of the paper's size formulas:

* FET arrays (Fig. 3) need one column per product of ``f`` *and* of ``f^D``
  (pull-down and pull-up planes);
* four-terminal lattices (Fig. 5) need ``#products(f)`` columns and
  ``#products(f^D)`` rows.

The module also exposes the classical *duality lemma* — every product of a
cover of ``f`` shares at least one literal (same variable, same polarity)
with every product of a cover of ``f^D`` — which is what makes the
Altun-Riedel lattice construction well-defined.
"""

from __future__ import annotations

from .cover import Cover
from .cube import Cube, Literal
from .minimize import minimize
from .truthtable import TruthTable


def dual_table(table: TruthTable) -> TruthTable:
    """The dual truth table ``f^D(x) = ~f(~x)``."""
    return table.dual()


def dual_cover(cover: Cover, method: str = "auto") -> Cover:
    """A minimized cover of the dual of (the function of) a cover."""
    return minimize(cover.to_truth_table().dual(), method=method)


def minimized_pair(table: TruthTable, method: str = "auto") -> tuple[Cover, Cover]:
    """Minimized covers of ``f`` and ``f^D`` (the Fig. 5 inputs)."""
    return minimize(table, method=method), minimize(table.dual(), method=method)


def is_self_dual(table: TruthTable) -> bool:
    """True when ``f == f^D`` (lattice rows == columns count-wise)."""
    return table.is_self_dual()


def shared_literal(product_of_f: Cube, product_of_dual: Cube) -> Literal:
    """A literal common to a product of ``f`` and a product of ``f^D``.

    Raises:
        ValueError: if no shared literal exists — which the duality lemma
            guarantees cannot happen when the cubes really are implicants of
            a function and its dual.
    """
    shared = product_of_f.shared_literals(product_of_dual)
    if not shared:
        raise ValueError(
            f"products {product_of_f} and {product_of_dual} share no literal; "
            "they cannot be implicants of a function and its dual"
        )
    return shared[0]


def check_duality_lemma(cover_f: Cover, cover_dual: Cover) -> bool:
    """Verify the duality lemma for every product pair of the two covers."""
    return all(
        p.shared_literals(q) for p in cover_f for q in cover_dual
    ) if len(cover_f) and len(cover_dual) else True
