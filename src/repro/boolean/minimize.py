"""Two-level (SOP) minimization.

Nano-crossbar arrays can only realise two-level sum-of-products forms
(Section III-A of the paper), so every synthesis flow in this package starts
from a minimized SOP cover.  Three engines are provided:

* :func:`prime_implicants` + :func:`exact_minimize` — Quine-McCluskey prime
  generation followed by exact unate covering with branch-and-bound.  This
  matches the "optimal SOP" assumption behind the Fig. 3 size formulas.
* :func:`heuristic_minimize` — an espresso-style EXPAND / IRREDUNDANT /
  REDUCE loop, seeded by the Minato-Morreale irredundant SOP.  Used for
  functions whose exact covering problem is too large.
* :func:`isop` — the Minato-Morreale irredundant SOP generator itself.

All engines support incompletely specified functions via an optional
don't-care table, as required by the P-circuit flexibility of [7].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cover import Cover
from .cube import Cube
from .truthtable import TruthTable


# ----------------------------------------------------------------------
# Prime implicant generation (Quine-McCluskey)
# ----------------------------------------------------------------------
def prime_implicants(on: TruthTable, dc: TruthTable | None = None) -> list[Cube]:
    """All prime implicants of the (incompletely specified) function.

    Args:
        on: on-set truth table.
        dc: optional don't-care truth table (disjoint from ``on`` is not
            required; overlap is treated as don't-care).

    Returns:
        Every maximal cube contained in ``on | dc``, sorted for determinism.
    """
    n = on.n
    allowed = on if dc is None else (on | dc)
    current = {Cube.from_minterm(n, m) for m in allowed.minterms()}
    primes: set[Cube] = set()
    while current:
        merged: set[Cube] = set()
        next_level: set[Cube] = set()
        by_group: dict[tuple[int, int], list[Cube]] = {}
        for cube in current:
            key = (cube.care_mask, bin(cube.pos).count("1"))
            by_group.setdefault(key, []).append(cube)
        for (care, ones), group in by_group.items():
            partners = by_group.get((care, ones + 1), [])
            for a in group:
                for b in partners:
                    combined = a.merge(b)
                    if combined is not None:
                        merged.add(a)
                        merged.add(b)
                        next_level.add(combined)
        primes.update(cube for cube in current if cube not in merged)
        current = next_level
    return sorted(primes, key=lambda c: (c.num_literals, c.pos, c.neg))


# ----------------------------------------------------------------------
# Exact unate covering
# ----------------------------------------------------------------------
@dataclass
class _CoverProblem:
    """A unate covering instance: choose columns covering all rows."""

    rows: list[int]                       # row ids (on-set minterms)
    row_cols: dict[int, frozenset[int]]   # row -> candidate column ids
    col_rows: dict[int, set[int]]         # column id -> rows it covers
    col_cost: dict[int, int]              # column id -> cost (literal count)
    chosen: list[int] = field(default_factory=list)


def _reduce_problem(problem: _CoverProblem) -> bool:
    """Apply essential / dominance reductions in place.

    Returns False when some row has no candidate column (infeasible).
    """
    changed = True
    while changed:
        changed = False
        # Essential columns: a row with exactly one candidate.
        for row in list(problem.rows):
            cols = problem.row_cols.get(row)
            if cols is None:
                continue
            if not cols:
                return False
            if len(cols) == 1:
                (col,) = cols
                _select_column(problem, col)
                changed = True
        if changed:
            continue
        # Row dominance: drop a row whose candidate set is a superset of
        # another row's (covering the subset row covers it automatically).
        rows = list(problem.rows)
        sets = {row: problem.row_cols[row] for row in rows}
        drop: set[int] = set()
        for i, r1 in enumerate(rows):
            if r1 in drop:
                continue
            for r2 in rows[i + 1:]:
                if r2 in drop:
                    continue
                if sets[r1] <= sets[r2]:
                    drop.add(r2)
                elif sets[r2] <= sets[r1]:
                    drop.add(r1)
                    break
        if drop:
            changed = True
            for row in drop:
                _remove_row(problem, row)
        # Column dominance: drop a column covering a subset of another's
        # remaining rows at equal or higher cost.
        cols = [c for c in problem.col_rows if problem.col_rows[c]]
        for c1 in cols:
            rows1 = problem.col_rows[c1]
            if not rows1:
                continue
            for c2 in cols:
                if c1 == c2 or not problem.col_rows[c2]:
                    continue
                if rows1 < problem.col_rows[c2] or (
                    rows1 == problem.col_rows[c2]
                    and (problem.col_cost[c1], c1) > (problem.col_cost[c2], c2)
                ):
                    if problem.col_cost[c1] >= problem.col_cost[c2]:
                        _remove_column(problem, c1)
                        changed = True
                        break
    return True


def _select_column(problem: _CoverProblem, col: int) -> None:
    problem.chosen.append(col)
    for row in list(problem.col_rows[col]):
        _remove_row(problem, row)
    problem.col_rows[col] = set()


def _remove_row(problem: _CoverProblem, row: int) -> None:
    if row in problem.row_cols:
        for col in problem.row_cols.pop(row):
            problem.col_rows[col].discard(row)
        problem.rows.remove(row)


def _remove_column(problem: _CoverProblem, col: int) -> None:
    for row in list(problem.col_rows[col]):
        cols = set(problem.row_cols[row])
        cols.discard(col)
        problem.row_cols[row] = frozenset(cols)
    problem.col_rows[col] = set()


def _clone(problem: _CoverProblem) -> _CoverProblem:
    return _CoverProblem(
        rows=list(problem.rows),
        row_cols={r: problem.row_cols[r] for r in problem.rows},
        col_rows={c: set(s) for c, s in problem.col_rows.items()},
        col_cost=problem.col_cost,
        chosen=list(problem.chosen),
    )


def _independent_rows_bound(problem: _CoverProblem) -> int:
    """Greedy maximal set of pairwise column-disjoint rows (lower bound)."""
    bound = 0
    used_cols: set[int] = set()
    for row in sorted(problem.rows, key=lambda r: len(problem.row_cols[r])):
        cols = problem.row_cols[row]
        if cols.isdisjoint(used_cols):
            bound += 1
            used_cols |= cols
    return bound


def _branch_and_bound(problem: _CoverProblem, best: list[int] | None) -> list[int] | None:
    if not _reduce_problem(problem):
        return best
    if not problem.rows:
        if best is None or len(problem.chosen) < len(best):
            return list(problem.chosen)
        return best
    if best is not None and len(problem.chosen) + _independent_rows_bound(problem) >= len(best):
        return best
    # Branch on the hardest row (fewest candidates).
    row = min(problem.rows, key=lambda r: len(problem.row_cols[r]))
    candidates = sorted(
        problem.row_cols[row],
        key=lambda c: (-len(problem.col_rows[c]), problem.col_cost[c], c),
    )
    for col in candidates:
        child = _clone(problem)
        _select_column(child, col)
        best = _branch_and_bound(child, best)
    return best


def exact_minimize(on: TruthTable, dc: TruthTable | None = None) -> Cover:
    """Exact minimum-cardinality SOP cover (ties broken by literal count).

    Quine-McCluskey primes + branch-and-bound unate covering.  Guaranteed
    minimal in the number of products, which is the quantity the Fig. 3 and
    Fig. 5 size formulas consume.
    """
    n = on.n
    if on.is_contradiction():
        return Cover.empty(n)
    effective_on = on.difference(dc) if dc is not None else on
    if effective_on.is_contradiction():
        return Cover.empty(n)
    if (on if dc is None else (on | dc)).is_tautology():
        return Cover.tautology(n)
    primes = prime_implicants(on, dc)
    prime_tables = [TruthTable.from_cubes(n, [p]) for p in primes]
    rows = [int(m) for m in effective_on.minterms()]
    row_cols: dict[int, frozenset[int]] = {}
    col_rows: dict[int, set[int]] = {i: set() for i in range(len(primes))}
    for row in rows:
        cols = frozenset(
            i for i, pt in enumerate(prime_tables) if pt.evaluate(row)
        )
        row_cols[row] = cols
        for col in cols:
            col_rows[col].add(row)
    problem = _CoverProblem(
        rows=rows,
        row_cols=row_cols,
        col_rows=col_rows,
        col_cost={i: primes[i].num_literals for i in range(len(primes))},
    )
    solution = _branch_and_bound(problem, None)
    if solution is None:
        raise RuntimeError("covering problem unexpectedly infeasible")
    cover = Cover(n, [primes[i] for i in sorted(solution)])
    return cover


# ----------------------------------------------------------------------
# Minato-Morreale irredundant SOP
# ----------------------------------------------------------------------
def isop(on: TruthTable, dc: TruthTable | None = None) -> Cover:
    """Irredundant SOP between ``on`` and ``on | dc`` (Minato-Morreale)."""
    n = on.n
    upper = on if dc is None else (on | dc)
    lower = on.difference(dc) if dc is not None else on
    memo: dict[tuple[bytes, bytes], Cover] = {}

    def rec(low: TruthTable, up: TruthTable) -> Cover:
        m = low.n
        if low.is_contradiction():
            return Cover.empty(m)
        if up.is_tautology():
            return Cover.tautology(m)
        key = (low.values.tobytes(), up.values.tobytes())
        hit = memo.get(key)
        if hit is not None:
            return hit
        var = m - 1  # split on the highest variable; cofactors drop it
        low0, low1 = low.cofactor(var, False), low.cofactor(var, True)
        up0, up1 = up.cofactor(var, False), up.cofactor(var, True)
        cover0 = rec(low0.difference(up1), up0)
        cover1 = rec(low1.difference(up0), up1)
        sem0 = cover0.to_truth_table()
        sem1 = cover1.to_truth_table()
        low_star = (low0.difference(sem0)) | (low1.difference(sem1))
        cover_star = rec(low_star, up0 & up1)
        cubes: list[Cube] = []
        for cube in cover0:
            lifted = cube.lift(var).with_literal(_neg_lit(var))
            cubes.append(lifted)
        for cube in cover1:
            lifted = cube.lift(var).with_literal(_pos_lit(var))
            cubes.append(lifted)
        cubes.extend(cube.lift(var) for cube in cover_star)
        result = Cover(m, cubes)
        memo[key] = result
        return result

    result = rec(lower, upper)
    return result


def _pos_lit(var: int):
    from .cube import Literal

    return Literal(var, True)


def _neg_lit(var: int):
    from .cube import Literal

    return Literal(var, False)


# ----------------------------------------------------------------------
# Espresso-style heuristic
# ----------------------------------------------------------------------
def _cube_table(n: int, cube: Cube) -> TruthTable:
    return TruthTable.from_cubes(n, [cube])


def _expand_cube(cube: Cube, allowed: TruthTable) -> Cube:
    """Greedily drop literals while the cube stays inside ``allowed``."""
    current = cube
    improved = True
    while improved:
        improved = False
        for lit in sorted(current.literals(), key=lambda literal: literal.var):
            candidate = current.remove_variable(lit.var)
            if _cube_table(allowed.n, candidate).implies(allowed):
                current = candidate
                improved = True
                break
    return current


def _supercube(n: int, minterms: list[int]) -> Cube:
    """Smallest cube containing the given minterms."""
    pos = neg = (1 << n) - 1
    for m in minterms:
        pos &= m
        neg &= ~m
    return Cube(n, pos, neg & ((1 << n) - 1))


def _reduce_cover(cover: Cover, lower: TruthTable, dc_sem: TruthTable) -> Cover:
    """Espresso REDUCE: sequentially shrink cubes to their essential part.

    Processing cubes one at a time against the *current* state of the other
    cubes preserves the invariant that the cover still covers ``lower``.
    """
    n = cover.n
    cubes = list(cover)
    i = 0
    while i < len(cubes):
        rest = Cover(n, cubes[:i] + cubes[i + 1:])
        rest_sem = rest.to_truth_table() | dc_sem
        essential = _cube_table(n, cubes[i]) & lower.difference(rest_sem)
        points = list(essential.minterms())
        if not points:
            cubes.pop(i)  # redundant given the others
            continue
        cubes[i] = _supercube(n, points)
        i += 1
    return Cover(n, cubes)


def heuristic_minimize(on: TruthTable, dc: TruthTable | None = None,
                       max_iterations: int = 8) -> Cover:
    """Espresso-style iterative improvement seeded with the ISOP cover."""
    n = on.n
    if on.is_contradiction():
        return Cover.empty(n)
    dc_sem = dc if dc is not None else TruthTable.constant(n, False)
    allowed = on | dc_sem
    lower = on.difference(dc_sem)
    if allowed.is_tautology():
        return Cover.tautology(n)
    cover = isop(on, dc)
    best = cover
    best_cost = (cover.num_products, cover.num_literal_occurrences)
    for _ in range(max_iterations):
        # EXPAND
        expanded = [_expand_cube(cube, allowed) for cube in cover]
        cover = Cover(n, expanded).drop_contained()
        # IRREDUNDANT
        cover = _irredundant_against(cover, lower, dc_sem)
        cost = (cover.num_products, cover.num_literal_occurrences)
        if cost < best_cost:
            best, best_cost = cover, cost
        # REDUCE (perturb for the next expand round)
        new_cover = _reduce_cover(cover, lower, dc_sem).deduplicate()
        if new_cover == cover:
            break
        cover = new_cover
    if not best.to_truth_table().implies(allowed) or not lower.implies(best.to_truth_table()):
        raise RuntimeError("heuristic minimization produced an invalid cover")
    return best


def _irredundant_against(cover: Cover, lower: TruthTable, dc_sem: TruthTable) -> Cover:
    """Drop cubes not needed to cover ``lower`` (dc points never require cover)."""
    cubes = list(cover)
    i = 0
    while i < len(cubes):
        rest = Cover(cover.n, cubes[:i] + cubes[i + 1:])
        rest_sem = rest.to_truth_table() | dc_sem
        if lower.implies(rest_sem):
            cubes.pop(i)
        else:
            i += 1
    return Cover(cover.n, cubes)


# ----------------------------------------------------------------------
# Top-level entry point
# ----------------------------------------------------------------------
#: Above this many on/dc minterms (or variables) exact covering is skipped.
EXACT_MINTERM_LIMIT = 512
EXACT_VARIABLE_LIMIT = 12


def minimize(on: TruthTable, dc: TruthTable | None = None,
             method: str = "auto") -> Cover:
    """Minimize an (incompletely specified) function into an SOP cover.

    Args:
        on: on-set truth table.
        dc: optional don't-care set.
        method: ``"exact"``, ``"heuristic"``, ``"isop"`` or ``"auto"``
            (exact when the instance is small enough).

    Returns:
        A cover whose truth table lies between ``on - dc`` and ``on + dc``.
    """
    if method == "auto":
        universe = on if dc is None else (on | dc)
        small = (
            on.n <= EXACT_VARIABLE_LIMIT
            and universe.count_ones() <= EXACT_MINTERM_LIMIT
        )
        method = "exact" if small else "heuristic"
    if method == "exact":
        return exact_minimize(on, dc)
    if method == "heuristic":
        return heuristic_minimize(on, dc)
    if method == "isop":
        return isop(on, dc)
    raise ValueError(f"unknown minimization method {method!r}")


def verify_cover(cover: Cover, on: TruthTable, dc: TruthTable | None = None) -> bool:
    """Check that a cover implements ``on`` up to don't-cares."""
    sem = cover.to_truth_table()
    dc_sem = dc if dc is not None else TruthTable.constant(on.n, False)
    lower = on.difference(dc_sem)
    upper = on | dc_sem
    return lower.implies(sem) and sem.implies(upper)
