"""The :class:`BooleanFunction` facade.

This is the main user-facing entry point of the Boolean substrate: a named,
possibly incompletely specified function with conversions to/from
expressions, truth tables, covers and PLA text, plus the derived artefacts
the crossbar synthesis flows need (minimized SOP, minimized dual SOP).
"""

from __future__ import annotations

from functools import cached_property
from typing import Callable, Iterable, Sequence

from .cover import Cover
from .expr import expression_to_truth_table, parse_expression
from .minimize import minimize, verify_cover
from .pla import Pla, cover_to_pla, parse_pla, write_pla
from .truthtable import TruthTable


class BooleanFunction:
    """An (optionally incompletely specified) Boolean function with names.

    Attributes:
        on: the on-set truth table.
        dc: the don't-care truth table (constant 0 when fully specified).
        names: variable names, index-aligned with truth-table bit positions.
        label: an optional benchmark/debug label.
    """

    def __init__(
        self,
        on: TruthTable,
        dc: TruthTable | None = None,
        names: Sequence[str] | None = None,
        label: str = "",
    ):
        if dc is not None and dc.n != on.n:
            raise ValueError("on-set and dc-set dimensions differ")
        if names is not None and len(names) != on.n:
            raise ValueError(f"expected {on.n} names, got {len(names)}")
        self.on = on
        self.dc = dc if dc is not None else TruthTable.constant(on.n, False)
        self.names = list(names) if names is not None else [
            f"x{i + 1}" for i in range(on.n)
        ]
        self.label = label

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_expression(text: str, names: Sequence[str] | None = None,
                        label: str = "") -> "BooleanFunction":
        """Parse e.g. ``"x1 x2 + x3'"`` (see :mod:`repro.boolean.expr`)."""
        node = parse_expression(text)
        table, resolved = expression_to_truth_table(node, names)
        return BooleanFunction(table, names=resolved, label=label or text)

    @staticmethod
    def from_truth_table(table: TruthTable, names: Sequence[str] | None = None,
                         label: str = "") -> "BooleanFunction":
        return BooleanFunction(table, names=names, label=label)

    @staticmethod
    def from_minterms(n: int, minterms: Iterable[int],
                      dc_minterms: Iterable[int] = (),
                      label: str = "") -> "BooleanFunction":
        on = TruthTable.from_minterms(n, minterms)
        dc_list = list(dc_minterms)
        dc = TruthTable.from_minterms(n, dc_list) if dc_list else None
        return BooleanFunction(on, dc, label=label)

    @staticmethod
    def from_callable(n: int, fn: Callable[[int], bool],
                      label: str = "") -> "BooleanFunction":
        return BooleanFunction(TruthTable.from_callable(n, fn), label=label)

    @staticmethod
    def from_cover(cover: Cover, dc: Cover | None = None,
                   names: Sequence[str] | None = None,
                   label: str = "") -> "BooleanFunction":
        on_table = cover.to_truth_table()
        dc_table = dc.to_truth_table() if dc is not None else None
        return BooleanFunction(on_table, dc_table, names=names, label=label)

    @staticmethod
    def from_pla_text(text: str, output: int = 0, label: str = "") -> "BooleanFunction":
        pla = parse_pla(text)
        on, dc = pla.output_tables(output)
        return BooleanFunction(
            on, dc if dc.count_ones() else None,
            names=pla.input_names, label=label or pla.output_names[output],
        )

    # ------------------------------------------------------------------
    # Basic facts
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.on.n

    @property
    def is_completely_specified(self) -> bool:
        return self.dc.is_contradiction()

    def evaluate(self, assignment: int) -> bool:
        """On-set value (don't-cares read as 0)."""
        return self.on.evaluate(assignment)

    def __call__(self, assignment: int) -> bool:
        return self.evaluate(assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        return self.on == other.on and self.dc == other.dc

    def __hash__(self) -> int:
        return hash((self.on, self.dc))

    def __repr__(self) -> str:
        tag = self.label or "f"
        return f"BooleanFunction({tag!r}, n={self.n}, |on|={self.on.count_ones()})"

    # ------------------------------------------------------------------
    # Derived artefacts (cached: they drive all the size formulas)
    # ------------------------------------------------------------------
    @cached_property
    def minimized_cover(self) -> Cover:
        """A minimized SOP cover of the function."""
        cover = minimize(self.on, self.dc if not self.is_completely_specified else None)
        assert verify_cover(cover, self.on,
                            self.dc if not self.is_completely_specified else None)
        return cover

    @cached_property
    def dual_table(self) -> TruthTable:
        """Truth table of ``f^D`` (don't-cares are resolved to 0 first)."""
        return self.on.dual()

    @cached_property
    def minimized_dual_cover(self) -> Cover:
        """A minimized SOP cover of the dual (rows of the Fig. 5 lattice)."""
        return minimize(self.dual_table)

    def minimized(self, method: str = "auto") -> Cover:
        """Minimize with an explicit engine choice (uncached)."""
        return minimize(self.on, self.dc if not self.is_completely_specified else None,
                        method=method)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def complement(self) -> "BooleanFunction":
        return BooleanFunction(~(self.on | self.dc), self.dc, self.names,
                               label=f"~({self.label})" if self.label else "")

    def dual(self) -> "BooleanFunction":
        return BooleanFunction(self.dual_table, names=self.names,
                               label=f"dual({self.label})" if self.label else "")

    def cofactor(self, var: int, value: bool) -> "BooleanFunction":
        names = self.names[:var] + self.names[var + 1:]
        dc = self.dc.cofactor(var, value)
        return BooleanFunction(
            self.on.cofactor(var, value),
            dc if dc.count_ones() else None,
            names,
        )

    def rename(self, names: Sequence[str]) -> "BooleanFunction":
        return BooleanFunction(self.on, self.dc, names, self.label)

    def with_label(self, label: str) -> "BooleanFunction":
        return BooleanFunction(self.on, self.dc, self.names, label)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_expression(self) -> str:
        """Render the minimized cover symbolically."""
        return self.minimized_cover.to_expression(self.names)

    def to_pla(self) -> Pla:
        dc_cover = minimize(self.dc) if not self.is_completely_specified else None
        return cover_to_pla(self.minimized_cover, dc_cover, self.names)

    def to_pla_text(self) -> str:
        return write_pla(self.to_pla())

    # ------------------------------------------------------------------
    # Paper-facing metrics
    # ------------------------------------------------------------------
    def sop_metrics(self) -> dict[str, int]:
        """The quantities consumed by the Fig. 3 / Fig. 5 size formulas."""
        cover = self.minimized_cover
        dual = self.minimized_dual_cover
        return {
            "n": self.n,
            "products": cover.num_products,
            "literal_occurrences": cover.num_literal_occurrences,
            "distinct_literals": cover.num_distinct_literals,
            "dual_products": dual.num_products,
        }
