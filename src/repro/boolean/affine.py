"""GF(2) linear algebra, affine spaces and D-reducible functions.

A function ``f`` is *D-reducible* ([4] in the paper) when its on-set is
contained in an affine space ``A`` strictly smaller than the whole Boolean
space.  Then ``f = chi_A & f_A`` where ``chi_A`` is the characteristic
function of ``A`` and ``f_A`` the projection of ``f`` onto ``A``; both
factors can be synthesised as separate lattices and recomposed with the
AND rule (Section III-B.2).

Vectors over GF(2) are stored as Python ints (bit ``i`` = coordinate ``i``);
a linear constraint is a pair ``(mask, rhs)`` meaning
``XOR of x_i for i in mask == rhs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .bitops import popcount_u64
from .truthtable import TruthTable


# ----------------------------------------------------------------------
# Core GF(2) routines (int-mask rows)
# ----------------------------------------------------------------------
def gf2_row_reduce(rows: Sequence[int], n: int) -> tuple[list[int], list[int]]:
    """Reduced row echelon form over GF(2).

    Args:
        rows: row vectors as bit masks (bit i = column i).
        n: number of columns.

    Returns:
        ``(reduced_rows, pivot_columns)`` with one reduced row per pivot.
    """
    reduced: list[int] = []
    pivots: list[int] = []
    work = [r for r in rows if r]
    for col in range(n):
        bit = 1 << col
        pivot_row = None
        for row in work:
            if row & bit:
                pivot_row = row
                break
        if pivot_row is None:
            continue
        work.remove(pivot_row)
        work = [row ^ pivot_row if row & bit else row for row in work]
        work = [row for row in work if row]
        reduced = [row ^ pivot_row if row & bit else row for row in reduced]
        reduced.append(pivot_row)
        pivots.append(col)
    return reduced, pivots


def gf2_rank(rows: Sequence[int], n: int) -> int:
    """Rank of a set of GF(2) row vectors."""
    return len(gf2_row_reduce(rows, n)[0])


def gf2_kernel(rows: Sequence[int], n: int) -> list[int]:
    """Basis of the kernel ``{c : row . c = 0 for every row}``.

    The dot product is over GF(2); result vectors are bit masks.
    """
    reduced, pivots = gf2_row_reduce(rows, n)
    pivot_set = set(pivots)
    free_cols = [c for c in range(n) if c not in pivot_set]
    kernel: list[int] = []
    for free in free_cols:
        vec = 1 << free
        for row, pivot in zip(reduced, pivots):
            if (row >> free) & 1:
                vec |= 1 << pivot
        kernel.append(vec)
    return kernel


def parity_table(n: int, mask: int, rhs: bool = False) -> TruthTable:
    """Truth table of the linear constraint ``XOR(x_i : i in mask) == rhs``."""
    idx = np.arange(1 << n, dtype=np.uint64)
    par = popcount_u64(idx & np.uint64(mask)) & 1
    values = par == (1 if rhs else 0)
    return TruthTable(n, values)


# ----------------------------------------------------------------------
# Affine spaces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AffineSpace:
    """An affine subspace ``offset + span(basis)`` of GF(2)^n.

    ``constraints`` is the equivalent implicit form: the space is exactly
    the set of points satisfying every ``(mask, rhs)`` parity constraint.
    """

    n: int
    offset: int
    basis: tuple[int, ...]
    constraints: tuple[tuple[int, bool], ...]

    @property
    def dim(self) -> int:
        return len(self.basis)

    @property
    def num_points(self) -> int:
        return 1 << self.dim

    def contains(self, point: int) -> bool:
        """Membership test via the parity constraints."""
        for mask, rhs in self.constraints:
            if (bin(point & mask).count("1") & 1) != int(rhs):
                return False
        return True

    def points(self) -> list[int]:
        """Enumerate all points of the space."""
        result = []
        for combo in range(1 << self.dim):
            p = self.offset
            for j, vec in enumerate(self.basis):
                if (combo >> j) & 1:
                    p ^= vec
            result.append(p)
        return sorted(result)

    def characteristic_table(self) -> TruthTable:
        """Truth table of ``chi_A`` (vectorised parity checks)."""
        idx = np.arange(1 << self.n, dtype=np.uint64)
        values = np.ones(1 << self.n, dtype=bool)
        for mask, rhs in self.constraints:
            par = popcount_u64(idx & np.uint64(mask)) & 1
            values &= par == (1 if rhs else 0)
        return TruthTable(self.n, values)

    def free_variables(self) -> list[int]:
        """Variables that parameterise the space (non-pivot columns).

        After row-reducing the constraint matrix, each pivot variable is an
        affine function of the free ones; the free variables index the
        ``dim`` coordinates of the projected function ``f_A``.
        """
        rows = [mask for mask, _ in self.constraints]
        _, pivots = gf2_row_reduce(rows, self.n)
        pivot_set = set(pivots)
        free = [v for v in range(self.n) if v not in pivot_set]
        # The space has dim = n - #constraints(rank); free vars match dim.
        return free[: self.dim] if len(free) > self.dim else free

    def complete_point(self, free_assignment: int) -> int:
        """The unique point of A whose free variables match the assignment.

        ``free_assignment`` packs the free variables' values in the order
        returned by :meth:`free_variables` (bit j = value of j-th free var).
        """
        rows = [mask for mask, _ in self.constraints]
        rhs_map = {mask: rhs for mask, rhs in self.constraints}
        reduced, pivots = gf2_row_reduce(rows, self.n)
        # Recompute reduced right-hand sides by tracking the row operations:
        # easier to resolve each reduced row's rhs from a known member point.
        free_vars = self.free_variables()
        point = 0
        for j, var in enumerate(free_vars):
            if (free_assignment >> j) & 1:
                point |= 1 << var
        # Solve pivot variables from reduced system using offset as witness.
        for row, pivot in zip(reduced, pivots):
            rhs = bin(self.offset & row).count("1") & 1
            acc = bin(point & row & ~(1 << pivot)).count("1") & 1
            if acc != rhs:
                point |= 1 << pivot
        return point


def affine_hull(points: Iterable[int], n: int) -> AffineSpace:
    """Smallest affine space containing the given points.

    Raises:
        ValueError: when ``points`` is empty (no affine hull exists).
    """
    point_list = sorted(set(points))
    if not point_list:
        raise ValueError("affine hull of an empty set is undefined")
    offset = point_list[0]
    vectors = [p ^ offset for p in point_list[1:]]
    basis, _ = gf2_row_reduce(vectors, n)
    constraint_masks = gf2_kernel(basis, n)
    constraints = tuple(
        (mask, bool(bin(offset & mask).count("1") & 1)) for mask in constraint_masks
    )
    return AffineSpace(n=n, offset=offset, basis=tuple(basis), constraints=constraints)


# ----------------------------------------------------------------------
# D-reducibility
# ----------------------------------------------------------------------
def onset_affine_hull(table: TruthTable) -> AffineSpace | None:
    """Affine hull of the on-set, or ``None`` for the constant-0 function."""
    minterms = list(table.minterms())
    if not minterms:
        return None
    return affine_hull(minterms, table.n)


def is_d_reducible(table: TruthTable) -> bool:
    """True when the on-set spans a strict affine subspace (dim < n)."""
    hull = onset_affine_hull(table)
    if hull is None:
        return False
    return hull.dim < table.n


def project_onto(table: TruthTable, space: AffineSpace) -> TruthTable:
    """Project ``f`` onto ``A`` as a function of the free variables.

    Returns a table over ``space.dim`` variables; entry ``t`` is the value
    of ``f`` at the unique point of ``A`` whose free variables equal ``t``.
    """
    dim = space.dim
    values = []
    for t in range(1 << dim):
        point = space.complete_point(t)
        values.append(table.evaluate(point))
    return TruthTable(dim, values)


def embed_projection(projected: TruthTable, space: AffineSpace) -> TruthTable:
    """Extend ``f_A`` back to n variables by reading only the free variables.

    The embedded function ``g(x) = f_A(free(x))`` satisfies
    ``chi_A & g == f`` whenever ``projected == project_onto(f, A)`` and the
    on-set of ``f`` lies inside ``A``.
    """
    free_vars = space.free_variables()
    idx = np.arange(1 << space.n, dtype=np.int64)
    coords = np.zeros(1 << space.n, dtype=np.int64)
    for j, var in enumerate(free_vars):
        coords |= ((idx >> var) & 1) << j
    return TruthTable(space.n, projected.values[coords])


def d_reduction(table: TruthTable) -> tuple[AffineSpace, TruthTable] | None:
    """Decompose ``f = chi_A & f_A`` when ``f`` is D-reducible.

    Returns ``(A, f_A)`` or ``None`` when the function is constant-0 or its
    hull is the whole space (not reducible).
    """
    hull = onset_affine_hull(table)
    if hull is None or hull.dim >= table.n:
        return None
    return hull, project_onto(table, hull)
