"""Batched variation-aware Monte-Carlo delay campaigns (Section IV at scale).

:mod:`repro.reliability.variation` models one chip at a time — a scalar
lognormal draw and a pure-Python Dijkstra per minterm per trial; this
package turns the paper's variation-tolerance experiment into a batched
campaign on the PR 1-3 substrate:

API -> paper map:

* :mod:`repro.varsim.ensembles` — ``(trials, rows, cols)`` lognormal
  resistance ensembles in one draw, plus vectorized variation-aware /
  oblivious line selection (Section IV's "variation awareness ensures
  predictability and performance" comparison);
* :mod:`repro.xbareval.delay` — the batched node-weighted shortest-path
  delay kernel the campaigns run on (vectorized Bellman-Ford over
  conduction x resistance tensors; scalar Dijkstra kept as the bit-exact
  reference);
* :mod:`repro.varsim.campaign` — ``VariationCampaignSpec`` grids, the
  sharded runner (``repro.engine.pool``) and per-sigma delay vectors
  persisted in the engine's :class:`~repro.engine.store.JsonStore`;
* :mod:`repro.varsim.report` — delay tables and awareness cross-checks.

Quickstart::

    from repro.eval.benchsuite import by_name
    from repro.synthesis import synthesize_lattice_dual
    from repro.varsim import VariationCampaignSpec, run_variation_campaign

    lattice = synthesize_lattice_dual(by_name("xnor2").function.on)
    spec = VariationCampaignSpec(lattice, sigmas=(0.1, 0.3, 0.6),
                                 crossbar_rows=16, crossbar_cols=16,
                                 trials=500)
    result = run_variation_campaign(spec, store="campaigns.sqlite",
                                    processes=4)
    print(result.render())

The same sweep is available from the shell as ``nanoxbar varsweep``.
"""

from .campaign import (
    VariationCampaignPoint,
    VariationCampaignResult,
    VariationCampaignSpec,
    VariationPointEstimate,
    iter_variation_campaign,
    lattice_content_hash,
    run_variation_campaign,
)
from .ensembles import (
    VariationBatch,
    lognormal_variation_batch,
    oblivious_selection_batch,
    smallest_k_indices,
    variation_aware_selection_batch,
)
from .report import awareness_crosschecks, render_variation_campaign

__all__ = [
    "VariationBatch",
    "VariationCampaignPoint",
    "VariationCampaignResult",
    "VariationCampaignSpec",
    "VariationPointEstimate",
    "awareness_crosschecks",
    "iter_variation_campaign",
    "lattice_content_hash",
    "lognormal_variation_batch",
    "oblivious_selection_batch",
    "render_variation_campaign",
    "run_variation_campaign",
    "smallest_k_indices",
    "variation_aware_selection_batch",
]
