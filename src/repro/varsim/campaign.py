"""Declarative variation-aware Monte-Carlo delay campaigns (Section IV).

A *variation campaign* reproduces the paper's Section IV claim —
"variation awareness ensures predictability and performance" — at
ensemble scale: for each variation strength ``sigma`` it samples a whole
``(trials, N, M)`` lognormal resistance ensemble in one draw, selects the
application lines both variation-aware and obliviously for every trial at
once, and computes every trial's critical delay (worst best-path delay
over the on-set) through the batched Bellman-Ford kernel of
:mod:`repro.xbareval.delay`:

* :class:`VariationCampaignSpec` — the declarative grid (lattice, sigmas,
  crossbar size, trial count, seed);
* :class:`VariationCampaignPoint` — one sampled ensemble (one sigma; the
  aware and oblivious policies share the ensemble, so they are comparable
  trial-by-trial);
* :func:`iter_variation_campaign` — the streaming core: shards each
  point's trial batches through :func:`repro.engine.pool.map_sharded`,
  persists its delay vectors in the engine's
  :class:`~repro.engine.store.JsonStore` and **yields** the
  :class:`VariationPointEstimate` as soon as the sigma completes — the
  batch server streams these to clients incrementally;
* :func:`run_variation_campaign` — drains the iterator into an aggregate
  :class:`VariationCampaignResult`.

Determinism: the same contract as :mod:`repro.faultlab.campaign` — each
point's RNG root is a ``SeedSequence`` over the campaign seed plus a
*content* hash of the point (lattice sites included, grid position never),
and batch streams are spawned from that root.  A seeded campaign is
therefore bit-reproducible between serial and pooled execution, across
sigma reorderings, and across cache hits/misses.

The scalar reference loop stays in
:func:`repro.reliability.variation.variation_sweep`.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass

import numpy as np

from ..boolean.cube import Literal
from ..crossbar.lattice import Lattice
from ..engine.pool import batch_sizes, iter_sharded
from ..engine.store import JsonStore
from ..obs import get_logger, log_event, metrics, tracing

_LOG = get_logger("varsim")

_POINTS = metrics.registry()
_POINT_SECONDS = _POINTS.histogram(
    "campaign_point_seconds", "wall-clock per completed campaign grid point",
    labels={"family": "varsweep"})
_POINTS_DONE = _POINTS.counter(
    "campaign_points_total", "campaign grid points by terminal status",
    labels={"family": "varsweep", "status": "completed"})
_POINTS_CACHED = _POINTS.counter(
    "campaign_points_total", "campaign grid points by terminal status",
    labels={"family": "varsweep", "status": "cached"})
_POINTS_FAILED = _POINTS.counter(
    "campaign_points_total", "campaign grid points by terminal status",
    labels={"family": "varsweep", "status": "failed"})
from ..xbareval.delay import onset_critical_delay_batch
from .ensembles import (
    lognormal_variation_batch,
    oblivious_selection_batch,
    variation_aware_selection_batch,
)

#: Bump when the sampling semantics change (invalidates persisted points).
_STORE_VERSION = "v1"


def lattice_content_hash(lattice: Lattice) -> str:
    """Position-free content address of a lattice's sites and arity.

    Two equal lattices hash equally regardless of how they were built;
    the campaign store keys and ``SeedSequence`` entropies derive from
    this, never from object identity.
    """
    tokens = []
    for row in lattice.sites:
        for site in row:
            if isinstance(site, Literal):
                tokens.append(f"{site.var}{'+' if site.positive else '-'}")
            else:
                tokens.append("1" if site else "0")
    text = f"{lattice.n};{lattice.rows}x{lattice.cols};{','.join(tokens)}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class VariationCampaignPoint:
    """One sampled ensemble: a single sigma of the campaign grid."""

    lattice_hash: str
    app_rows: int
    app_cols: int
    sigma: float
    crossbar_rows: int
    crossbar_cols: int
    trials: int
    seed: int
    nominal: float
    batch_size: int

    def key(self) -> str:
        """Persistent-store key (content-addressed, position-free).

        ``batch_size`` is part of the key because the spawned batch
        streams — and therefore the sampled ensemble — depend on the
        batch layout; two layouts are two (equally valid) estimates.
        """
        return (f"varsim/{_STORE_VERSION}/l{self.lattice_hash}"
                f"/a{self.app_rows}x{self.app_cols}"
                f"/x{self.crossbar_rows}x{self.crossbar_cols}"
                f"/sig{self.sigma!r}/t{self.trials}/s{self.seed}"
                f"/nom{self.nominal!r}/b{self.batch_size}")

    def entropy(self) -> tuple[int, int]:
        """``SeedSequence`` entropy derived from content, not position."""
        digest = hashlib.sha256(self.key().encode()).digest()
        return (self.seed, int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class VariationCampaignSpec:
    """Declarative sweep grid for one variation campaign run."""

    lattice: Lattice
    sigmas: tuple[float, ...]
    crossbar_rows: int
    crossbar_cols: int
    trials: int = 500
    seed: int = 0
    nominal: float = 1.0
    batch_size: int = 128

    def __post_init__(self) -> None:
        object.__setattr__(self, "sigmas", tuple(self.sigmas))
        if not self.sigmas:
            raise ValueError("campaign grid needs at least one sigma")
        if any(s < 0 for s in self.sigmas):
            raise ValueError("sigmas must be non-negative")
        if (self.crossbar_rows < self.lattice.rows
                or self.crossbar_cols < self.lattice.cols):
            raise ValueError("crossbar smaller than the lattice")
        if self.trials < 1:
            raise ValueError("trials must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.nominal <= 0:
            raise ValueError("nominal resistance must be positive")

    def points(self) -> list[VariationCampaignPoint]:
        """Grid expansion: one point per sigma."""
        content = lattice_content_hash(self.lattice)
        return [
            VariationCampaignPoint(
                content, self.lattice.rows, self.lattice.cols, sigma,
                self.crossbar_rows, self.crossbar_cols, self.trials,
                self.seed, self.nominal, self.batch_size)
            for sigma in self.sigmas
        ]


@dataclass(frozen=True)
class VariationPointEstimate:
    """Aggregated Monte-Carlo answer for one campaign point.

    The full per-trial delay vectors are kept (and persisted): summary
    statistics are derived views, so cached and fresh estimates are
    indistinguishable and new quantiles never invalidate the store.
    """

    point: VariationCampaignPoint
    aware_delays: tuple[float, ...]
    oblivious_delays: tuple[float, ...]
    cache_hit: bool

    @property
    def trials(self) -> int:
        return len(self.aware_delays)

    @property
    def aware_mean(self) -> float:
        return float(np.mean(self.aware_delays))

    @property
    def aware_p95(self) -> float:
        return float(np.percentile(self.aware_delays, 95))

    @property
    def oblivious_mean(self) -> float:
        return float(np.mean(self.oblivious_delays))

    @property
    def oblivious_p95(self) -> float:
        return float(np.percentile(self.oblivious_delays, 95))

    @property
    def mean_improvement(self) -> float:
        """Relative mean-delay gain of awareness over oblivious placement."""
        if self.oblivious_mean == 0:
            return 0.0
        return 1.0 - self.aware_mean / self.oblivious_mean

    @property
    def p95_improvement(self) -> float:
        """Relative tail-delay gain (the "predictability" claim)."""
        if self.oblivious_p95 == 0:
            return 0.0
        return 1.0 - self.aware_p95 / self.oblivious_p95


@dataclass
class VariationCampaignResult:
    """Everything one ``run_variation_campaign`` call produced."""

    spec: VariationCampaignSpec
    estimates: list[VariationPointEstimate]
    elapsed: float = 0.0
    cache_hits: int = 0
    trials_sampled: int = 0

    def estimate(self, sigma: float) -> VariationPointEstimate:
        for est in self.estimates:
            if est.point.sigma == sigma:
                return est
        raise KeyError(f"no estimate for sigma {sigma}")

    def rows(self) -> list[dict]:
        """Delay-distribution rows, one per sigma (the E-VAR table shape)."""
        return [{
            "sigma": est.point.sigma,
            "trials": est.trials,
            "aware_mean": est.aware_mean,
            "aware_p95": est.aware_p95,
            "oblivious_mean": est.oblivious_mean,
            "oblivious_p95": est.oblivious_p95,
            "mean_gain": est.mean_improvement,
            "p95_gain": est.p95_improvement,
        } for est in self.estimates]

    @property
    def throughput(self) -> float:
        """Freshly sampled trials per second (cache hits excluded)."""
        return self.trials_sampled / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        from .report import render_variation_campaign

        return render_variation_campaign(self)


# ----------------------------------------------------------------------
# The sharded runner
# ----------------------------------------------------------------------
def _point_batch_task(task: tuple) -> tuple[tuple[float, ...],
                                            tuple[float, ...]]:
    """Worker body: sample one trial batch, return its delay vectors.

    Module-level and pure (a function of the task tuple alone) so it
    pickles across the process pool and keeps serial == pooled bit-exact.
    RNG consumption order is fixed: one lognormal ensemble draw, then the
    oblivious row and column subset draws.
    """
    (lattice, minterms, sigma, crossbar_rows, crossbar_cols, nominal,
     batch_trials, seed_seq) = task
    gen = np.random.default_rng(seed_seq)
    batch = lognormal_variation_batch(batch_trials, crossbar_rows,
                                      crossbar_cols, sigma, gen, nominal)
    rows_aware, cols_aware = variation_aware_selection_batch(
        batch.resistance, lattice.rows, lattice.cols)
    rows_obl = oblivious_selection_batch(batch_trials, crossbar_rows,
                                         lattice.rows, gen)
    cols_obl = oblivious_selection_batch(batch_trials, crossbar_cols,
                                         lattice.cols, gen)
    minterm_array = np.array(minterms, dtype=np.int64)
    # One stacked kernel call covers both policies (aware trials first).
    submaps = np.concatenate([batch.submaps(rows_aware, cols_aware),
                              batch.submaps(rows_obl, cols_obl)])
    delays = onset_critical_delay_batch(lattice, minterm_array, submaps)
    return (tuple(delays[:batch_trials].tolist()),
            tuple(delays[batch_trials:].tolist()))


def _valid_payload(payload, point: VariationCampaignPoint) -> bool:
    if not isinstance(payload, dict):
        return False
    aware = payload.get("aware")
    oblivious = payload.get("oblivious")
    return all(
        isinstance(delays, list)
        and len(delays) == point.trials
        and all(isinstance(d, float) and math.isfinite(d) and d > 0
                for d in delays)
        for delays in (aware, oblivious)
    )


def payload_for(estimate: VariationPointEstimate) -> dict:
    """The store payload for one estimate (shared by campaigns and grid).

    Grid rows persist exactly this shape under ``point.key()``, so a grid
    sweep and ``run_variation_campaign`` dedup against each other's
    results.
    """
    return {
        "aware": list(estimate.aware_delays),
        "oblivious": list(estimate.oblivious_delays),
    }


def estimate_from_payload(point: VariationCampaignPoint, payload,
                          cache_hit: bool = True
                          ) -> VariationPointEstimate | None:
    """Rehydrate a persisted payload, or ``None`` if it fails validation."""
    if not _valid_payload(payload, point):
        return None
    return VariationPointEstimate(point, tuple(payload["aware"]),
                                  tuple(payload["oblivious"]),
                                  cache_hit=cache_hit)


def compute_point(spec: VariationCampaignSpec,
                  point: VariationCampaignPoint,
                  processes: int = 1) -> VariationPointEstimate:
    """Sample one sigma point from scratch (no store probe, no persist).

    Batch seeds come from :meth:`VariationCampaignPoint.entropy` alone,
    so the result is bit-identical wherever and however often it runs —
    the property the grid claim protocol leans on when a lease expires
    and a second worker recomputes a point.  ``spec`` carries the lattice
    (the point only stores its content hash).
    """
    table = spec.lattice.to_truth_table()
    minterms = tuple(table.minterms())
    if not minterms:
        raise ValueError(
            "variation campaign is undefined for a constant-0 lattice: "
            "critical delay has no conducting on-set input")
    aware: list[float] = []
    oblivious: list[float] = []
    tasks = _point_tasks(spec, point, minterms)
    for batch_aware, batch_oblivious in iter_sharded(
            _point_batch_task, tasks, processes):
        aware.extend(batch_aware)
        oblivious.extend(batch_oblivious)
    return VariationPointEstimate(point, tuple(aware), tuple(oblivious),
                                  cache_hit=False)


def _point_tasks(spec: VariationCampaignSpec,
                 point: VariationCampaignPoint,
                 minterms: tuple[int, ...]) -> list[tuple]:
    """One worker task per seeded trial batch of this sigma point."""
    root = np.random.SeedSequence(point.entropy())
    sizes = batch_sizes(point.trials, point.batch_size)
    return [
        (spec.lattice, minterms, point.sigma, point.crossbar_rows,
         point.crossbar_cols, point.nominal, batch_trials, child)
        for child, batch_trials in zip(root.spawn(len(sizes)), sizes)
    ]


def iter_variation_campaign(spec: VariationCampaignSpec,
                            store: JsonStore | str | None = None,
                            processes: int = 1):
    """Yield one :class:`VariationPointEstimate` per sigma as it completes.

    The streaming face of the runner: the batch server forwards each
    estimate to its clients the moment the sigma's trials are in, and
    every fresh point is persisted before it is yielded (an interrupted
    campaign resumes from the store).  Point order matches
    :meth:`VariationCampaignSpec.points`.  Batch seeds are
    content-addressed (never position-based), so streamed estimates are
    bit-identical to the aggregate runner's, serial or pooled — and the
    pooled path keeps the whole grid's batches in flight at once
    (:func:`repro.engine.pool.iter_sharded`).

    Args:
        store: a :class:`~repro.engine.store.JsonStore`, a path to open one
            at (closed when the iterator is exhausted), or ``None`` for no
            persistence.
        processes: worker count (``1`` = serial; results are
            bit-identical either way).

    Raises:
        ValueError: when the spec's lattice computes the constant-0
            function — critical delay is undefined on an empty on-set.
    """
    table = spec.lattice.to_truth_table()
    minterms = tuple(table.minterms())
    if not minterms:
        raise ValueError(
            "variation campaign is undefined for a constant-0 lattice: "
            "critical delay has no conducting on-set input")
    owned = isinstance(store, str)
    json_store: JsonStore | None = JsonStore(store) if owned else store
    try:
        yield from _iter_variation_campaign(spec, minterms, json_store,
                                            processes)
    finally:
        if owned and json_store is not None:
            json_store.close()


def _iter_variation_campaign(spec: VariationCampaignSpec,
                             minterms: tuple[int, ...],
                             store: JsonStore | None,
                             processes: int):
    # Plan the whole grid first (store probes are cheap reads), so one
    # shared pool can pipeline every fresh batch across sigmas.
    plans: list[tuple[VariationCampaignPoint,
                      VariationPointEstimate | None, int]] = []
    tasks: list[tuple] = []
    for point in spec.points():
        payload = store.get(point.key()) if store is not None else None
        cached_estimate = (estimate_from_payload(point, payload)
                          if payload is not None else None)
        if cached_estimate is not None:
            plans.append((point, cached_estimate, 0))
            continue
        point_tasks = _point_tasks(spec, point, minterms)
        tasks.extend(point_tasks)
        plans.append((point, None, len(point_tasks)))

    results = iter_sharded(_point_batch_task, tasks, processes)
    for point, cached, task_count in plans:
        if cached is not None:
            _POINTS_CACHED.inc()
            yield cached
            continue
        # The span closes before the yield: it times sampling + persist,
        # not however long the consumer sits on the estimate.
        with tracing.span("varsim.point", key=point.key()):
            point_start = time.perf_counter()
            try:
                aware: list[float] = []
                oblivious: list[float] = []
                for _ in range(task_count):
                    batch_aware, batch_oblivious = next(results)
                    aware.extend(batch_aware)
                    oblivious.extend(batch_oblivious)
                estimate = VariationPointEstimate(point, tuple(aware),
                                                  tuple(oblivious),
                                                  cache_hit=False)
                if store is not None:
                    store.put(point.key(), payload_for(estimate))
            except Exception:
                _POINTS_FAILED.inc()
                raise
            point_seconds = time.perf_counter() - point_start
            _POINT_SECONDS.observe(point_seconds)
            _POINTS_DONE.inc()
            log_event(_LOG, "point done", key=point.key(),
                      trials=point.trials,
                      seconds=round(point_seconds, 6))
        yield estimate


def run_variation_campaign(spec: VariationCampaignSpec,
                           store: JsonStore | str | None = None,
                           processes: int = 1) -> VariationCampaignResult:
    """Run a whole campaign through :func:`iter_variation_campaign`."""
    start = time.perf_counter()
    estimates = list(iter_variation_campaign(spec, store, processes))
    return VariationCampaignResult(
        spec=spec,
        estimates=estimates,
        elapsed=time.perf_counter() - start,
        cache_hits=sum(1 for est in estimates if est.cache_hit),
        trials_sampled=sum(est.point.trials for est in estimates
                           if not est.cache_hit),
    )
