"""Batched lognormal resistance ensembles and vectorized line selection.

Paper anchor: Section IV (variation tolerance).  The scalar models live in
:mod:`repro.reliability.variation` — one :class:`VariationMap` per trial,
one ``argsort`` per selection.  Here a whole Monte-Carlo ensemble is one
dense ``(trials, rows, cols)`` float64 tensor drawn in a single
``numpy.random.Generator`` call, and both mapping policies of the paper's
"variation awareness ensures predictability and performance" comparison
are answered for every trial at once:

* :class:`VariationBatch` — the resistance ensemble plus conversions to
  the scalar :class:`~repro.reliability.variation.VariationMap`;
* :func:`lognormal_variation_batch` — ``R = nominal * exp(N(0, sigma))``
  for all trials in one draw;
* :func:`variation_aware_selection_batch` — per-trial choice of the
  physical lines with the smallest resistance budgets, one
  ``argpartition`` pass with ties broken by line index (bit-identical to
  the stable scalar :func:`~repro.reliability.variation.
  variation_aware_selection`);
* :func:`oblivious_selection_batch` — uniform random line subsets, the
  batched placement baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reliability.variation import VariationMap


@dataclass(frozen=True)
class VariationBatch:
    """An ensemble of same-sized resistance maps as one dense tensor."""

    resistance: np.ndarray  # (trials, rows, cols) float64, all > 0

    def __post_init__(self) -> None:
        if self.resistance.ndim != 3:
            raise ValueError("variation batch tensor must be 3-D "
                             "(trials, rows, cols)")
        if self.resistance.size and (self.resistance <= 0).any():
            raise ValueError("resistances must be positive")

    @property
    def trials(self) -> int:
        return int(self.resistance.shape[0])

    @property
    def rows(self) -> int:
        return int(self.resistance.shape[1])

    @property
    def cols(self) -> int:
        return int(self.resistance.shape[2])

    def to_variation_map(self, trial: int) -> VariationMap:
        """Materialise one trial as a scalar :class:`VariationMap`."""
        return VariationMap(self.resistance[trial])

    def submaps(self, row_ids: np.ndarray, col_ids: np.ndarray) -> np.ndarray:
        """Per-trial sub-grids, shape ``(trials, app_rows, app_cols)``.

        Args:
            row_ids / col_ids: integer ``(trials, app_rows)`` /
                ``(trials, app_cols)`` selections — one line subset per
                trial, as produced by the selection kernels.
        """
        row_ids = np.asarray(row_ids)
        col_ids = np.asarray(col_ids)
        trial_idx = np.arange(self.trials)[:, None, None]
        return self.resistance[trial_idx, row_ids[:, :, None],
                               col_ids[:, None, :]]


def lognormal_variation_batch(trials: int, rows: int, cols: int, sigma: float,
                              gen: np.random.Generator,
                              nominal: float = 1.0) -> VariationBatch:
    """Sample a whole lognormal ensemble in one vectorized draw.

    Distribution-identical to ``trials`` calls of
    :func:`repro.reliability.variation.lognormal_variation` with the same
    generator: each crosspoint is ``nominal * exp(N(0, sigma))``, and the
    single ``(trials, rows, cols)`` normal draw keeps the ensemble a pure
    function of the generator state (the campaign runner's determinism
    contract).
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if nominal <= 0:
        raise ValueError("nominal resistance must be positive")
    # One standard-normal draw, transformed in place (the ensemble draw is
    # the hot allocation of a campaign batch).
    values = gen.standard_normal((trials, rows, cols))
    if sigma != 1.0:
        np.multiply(values, sigma, out=values)
    np.exp(values, out=values)
    if nominal != 1.0:
        np.multiply(values, nominal, out=values)
    return VariationBatch(values)


def smallest_k_indices(budgets: np.ndarray, k: int) -> np.ndarray:
    """Per-row indices of the ``k`` smallest budgets, ties by index.

    One ``np.partition`` pass finds each row's ``k``-th smallest value;
    everything strictly below it is selected, and ties on the threshold
    are filled in ascending index order until ``k`` lines are chosen.
    The selection is exactly ``sorted(np.argsort(row, kind="stable")[:k])``
    per row — the stable scalar semantics — without the full sort.

    Args:
        budgets: float ``(B, L)`` per-line budgets.
        k: lines to select per row, ``0 <= k <= L``.

    Returns:
        Integer ``(B, k)`` array of selected indices, ascending per row.
    """
    budgets = np.asarray(budgets)
    if budgets.ndim != 2:
        raise ValueError("budgets must be (batch, lines)")
    batch, lines = budgets.shape
    if not 0 <= k <= lines:
        raise ValueError(f"need 0 <= k <= {lines}, got {k}")
    if k == 0:
        return np.zeros((batch, 0), dtype=np.int64)
    if k == lines:
        return np.broadcast_to(np.arange(lines, dtype=np.int64),
                               (batch, lines)).copy()
    kth = np.partition(budgets, k - 1, axis=1)[:, k - 1:k]   # (B, 1)
    below = budgets < kth
    tie = budgets == kth
    need = k - below.sum(axis=1, keepdims=True)
    take_tie = tie & (np.cumsum(tie, axis=1) <= need)
    mask = below | take_tie                  # exactly k True per row
    return np.nonzero(mask)[1].reshape(batch, k).astype(np.int64)


def variation_aware_selection_batch(resistance: np.ndarray, app_rows: int,
                                    app_cols: int
                                    ) -> tuple[np.ndarray, np.ndarray]:
    """Lowest-budget physical lines for every trial of an ensemble.

    The batched analogue of
    :func:`repro.reliability.variation.variation_aware_selection`:
    per-trial row/column resistance budgets are reduced in two sums and
    the ``argpartition``-based :func:`smallest_k_indices` picks the lines,
    ties broken by physical index — trial ``t`` of the result is
    bit-identical to the scalar selection on ``resistance[t]``.

    Returns:
        ``(row_ids, col_ids)`` integer arrays of shape
        ``(trials, app_rows)`` / ``(trials, app_cols)``, ascending per
        trial.
    """
    resistance = np.asarray(resistance)
    if resistance.ndim != 3:
        raise ValueError("resistance ensemble must be (trials, rows, cols)")
    row_budget = resistance.sum(axis=2)
    col_budget = resistance.sum(axis=1)
    return (smallest_k_indices(row_budget, app_rows),
            smallest_k_indices(col_budget, app_cols))


def oblivious_selection_batch(trials: int, lines: int, k: int,
                              gen: np.random.Generator) -> np.ndarray:
    """Uniform random ``k``-subsets of ``lines``, one per trial, sorted.

    The batched placement baseline (scalar reference:
    :func:`repro.reliability.variation.oblivious_selection`): each trial's
    subset is the ``k`` smallest of one uniform draw per line — a
    Fisher-Yates-equivalent uniform subset — returned in ascending order.
    """
    if not 0 <= k <= lines:
        raise ValueError(f"need 0 <= k <= {lines}, got {k}")
    u = gen.random((trials, lines))
    if k == lines:
        picks = np.broadcast_to(np.arange(lines), (trials, lines)).copy()
    else:
        # Continuous draws are tie-free almost surely, so the k-smallest
        # subset is unique and argpartition is as deterministic as a sort.
        picks = np.argpartition(u, k - 1, axis=1)[:, :k] if k else \
            np.zeros((trials, 0), dtype=np.int64)
    return np.sort(picks, axis=1).astype(np.int64)
