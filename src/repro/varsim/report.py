"""Variation-campaign reporting: delay tables and sanity cross-checks.

Paper anchor: Section IV (variation tolerance) — the rendered table is the
ensemble-scale version of the E-VAR experiment: per sigma, the aware vs
oblivious mean and 95th-percentile delays plus the relative gains, with a
qualitative check that awareness never *hurts* (its selected sub-grid
minimises the row/column budgets the oblivious baseline draws from).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..eval.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .campaign import VariationCampaignResult


def awareness_crosschecks(result: "VariationCampaignResult",
                          slack: float = 0.05) -> list[dict]:
    """Per-sigma qualitative checks of the Section IV claim.

    ``aware_not_worse``: the aware mean delay must not exceed the
    oblivious mean by more than ``slack`` (relative) — awareness picks the
    minimum-budget lines, so with shared ensembles any violation beyond
    Monte-Carlo noise indicates a selection-kernel regression.
    """
    checks = []
    for row in result.rows():
        not_worse = (row["aware_mean"]
                     <= row["oblivious_mean"] * (1.0 + slack))
        checks.append({
            "sigma": row["sigma"],
            "aware_mean": row["aware_mean"],
            "oblivious_mean": row["oblivious_mean"],
            "aware_not_worse": not_worse,
        })
    return checks


def render_variation_campaign(result: "VariationCampaignResult") -> str:
    """Human-readable campaign report: delay table, checks, run stats."""
    spec = result.spec
    lines = [
        f"varsim campaign: lattice {spec.lattice.rows}x{spec.lattice.cols} "
        f"(n={spec.lattice.n}) on a {spec.crossbar_rows}x"
        f"{spec.crossbar_cols} crossbar, {len(result.estimates)} sigmas x "
        f"{spec.trials} trials  (seed={spec.seed})",
        "",
        format_table(result.rows(),
                     title="aware vs oblivious mapping delay"),
    ]
    checks = awareness_crosschecks(result)
    failed = [c for c in checks if not c["aware_not_worse"]]
    lines.append("")
    if failed:
        lines.append(f"awareness cross-checks: {len(failed)} of "
                     f"{len(checks)} sigmas FAILED")
        lines.append(format_table(failed, title="failing sigmas"))
    else:
        lines.append(f"awareness cross-checks: all {len(checks)} sigmas "
                     "aware <= oblivious mean delay")
    lines.append("")
    lines.append(
        f"elapsed={result.elapsed:.2f}s  cache_hits={result.cache_hits}/"
        f"{len(result.estimates)} points  sampled={result.trials_sampled} "
        f"trials  throughput={result.throughput:.0f} trials/s")
    return "\n".join(lines)
