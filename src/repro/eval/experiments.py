"""Experiment registry: one entry per paper table/figure (see DESIGN.md).

Every experiment returns an :class:`ExperimentResult` whose rows regenerate
the corresponding artefact of the DATE'17 paper.  ``fast=True`` shrinks
sweeps for use inside the pytest-benchmark harness; the full runs are what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..crossbar.lattice import Lattice
from ..reliability.bisd import run_bisd
from ..reliability.bism import as_program, bism_density_sweep
from ..reliability.bist import run_bist
from ..reliability.defect_unaware import defect_unaware_flow, recovery_sweep
from ..reliability.defects import random_defect_map
from ..reliability.variation import variation_sweep
from ..reliability.yield_model import yield_sweep
from ..synthesis.dreducible import synthesize_dreducible
from ..synthesis.lattice_dual import dual_synthesis_report, synthesize_lattice_dual
from ..synthesis.lattice_optimal import synthesize_lattice_optimal
from ..synthesis.optimize import optimize_lattice
from ..synthesis.pcircuit import best_pcircuit
from ..synthesis.two_terminal import two_terminal_report
from .benchsuite import by_name, suite
from .tables import format_table


@dataclass
class ExperimentResult:
    """Rows + presentation metadata for one experiment."""

    experiment_id: str
    title: str
    rows: list[dict]
    columns: list[str]
    notes: str = ""

    def render(self) -> str:
        text = format_table(self.rows, self.columns,
                            title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += f"\nnotes: {self.notes}"
        return text


@dataclass(frozen=True)
class Experiment:
    """Registry entry."""

    experiment_id: str
    title: str
    paper_ref: str
    run: Callable[[bool], ExperimentResult]


_REGISTRY: dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_ref: str):
    def decorator(fn: Callable[[bool], ExperimentResult]):
        _REGISTRY[experiment_id] = Experiment(experiment_id, title, paper_ref, fn)
        return fn

    return decorator


def all_experiments() -> list[Experiment]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None


# ----------------------------------------------------------------------
# E-FIG1: switch model semantics
# ----------------------------------------------------------------------
@register("fig1", "Two- vs four-terminal switch semantics", "Fig. 1")
def experiment_fig1(fast: bool = True) -> ExperimentResult:
    from ..synthesis.two_terminal import synthesize_diode, synthesize_fet

    f = by_name("xnor2").function
    diode = synthesize_diode(f.on)
    fet = synthesize_fet(f.on)
    lattice = synthesize_lattice_dual(f.on)
    rows = [
        {
            "model": "diode (2-terminal)",
            "conduction": "unidirectional row->output",
            "array": diode.shape,
            "implements_xnor2": diode.implements(f.on),
        },
        {
            "model": "FET (2-terminal)",
            "conduction": "complementary pull-up/down",
            "array": fet.shape,
            "implements_xnor2": fet.implements(f.on),
        },
        {
            "model": "4-terminal lattice",
            "conduction": "multi-directional percolation",
            "array": lattice.shape,
            "implements_xnor2": lattice.implements(f.on),
        },
    ]
    return ExperimentResult(
        "fig1", "Two- vs four-terminal switch semantics", rows,
        ["model", "conduction", "array", "implements_xnor2"],
        notes="all three behavioural models verified against the same function",
    )


# ----------------------------------------------------------------------
# E-FIG3: two-terminal size formulas
# ----------------------------------------------------------------------
@register("fig3", "Diode/FET array size formulas", "Fig. 3")
def experiment_fig3(fast: bool = True) -> ExperimentResult:
    benchmarks = suite(exclude=["large"] if fast else None, max_vars=6)
    rows = []
    for benchmark in benchmarks:
        try:
            report = two_terminal_report(benchmark.function)
        except Exception:
            continue
        rows.append({
            "benchmark": benchmark.name,
            "n": report.n,
            "products": report.products,
            "dual_products": report.dual_products,
            "literals": report.distinct_literals,
            "diode": report.diode_shape,
            "diode_formula_ok": report.diode_formula == report.diode_shape,
            "fet": report.fet_shape,
            "fet_cols_ok": report.fet_formula[1] == report.fet_shape[1],
        })
    return ExperimentResult(
        "fig3", "Diode/FET array size formulas", rows,
        ["benchmark", "n", "products", "dual_products", "literals",
         "diode", "diode_formula_ok", "fet", "fet_cols_ok"],
        notes="formula sizes equal as-built array dimensions (Fig. 3 is exact)",
    )


# ----------------------------------------------------------------------
# E-FIG4: the worked lattice example
# ----------------------------------------------------------------------
@register("fig4", "Fig. 4 worked lattice example", "Fig. 4")
def experiment_fig4(fast: bool = True) -> ExperimentResult:
    f = by_name("fig4").function
    hand = Lattice.from_strings(6, ["x1 x4", "x2 x5", "x3 x6"])
    formula = synthesize_lattice_dual(f.on)
    folded = optimize_lattice(formula, f.on).lattice
    rows = [
        {"method": "paper Fig. 4 (hand)", "shape": hand.shape,
         "area": hand.area, "implements": hand.implements(f.on)},
        {"method": "Fig. 5 formula [2]", "shape": formula.shape,
         "area": formula.area, "implements": formula.implements(f.on)},
        {"method": "formula + folding [11]", "shape": folded.shape,
         "area": folded.area, "implements": folded.implements(f.on)},
    ]
    return ExperimentResult(
        "fig4", "Fig. 4 worked lattice example", rows,
        ["method", "shape", "area", "implements"],
        notes="the formula is correct but suboptimal (28 sites); the paper's "
              "hand lattice uses 6 — exactly the gap the preprocessing targets",
    )


# ----------------------------------------------------------------------
# E-FIG5: lattice sizes and the 2T-vs-4T comparison
# ----------------------------------------------------------------------
@register("fig5", "Four-terminal lattice sizes vs two-terminal arrays", "Fig. 5")
def experiment_fig5(fast: bool = True) -> ExperimentResult:
    benchmarks = suite(exclude=["large"] if fast else None, max_vars=6)
    rows = []
    wins = 0
    comparable = 0
    for benchmark in benchmarks:
        try:
            two_terminal = two_terminal_report(benchmark.function)
        except Exception:
            continue
        lattice = dual_synthesis_report(benchmark.function)
        folded = optimize_lattice(lattice.lattice, benchmark.function.on).lattice
        best_2t = min(two_terminal.diode_area, two_terminal.fet_area)
        comparable += 1
        if folded.area <= best_2t:
            wins += 1
        rows.append({
            "benchmark": benchmark.name,
            "n": benchmark.n,
            "p(f)": lattice.products,
            "p(fD)": lattice.dual_products,
            "lattice": lattice.formula_shape,
            "folded": folded.shape,
            "lattice_area": folded.area,
            "diode_area": two_terminal.diode_area,
            "fet_area": two_terminal.fet_area,
            "4T_wins": folded.area <= best_2t,
        })
    return ExperimentResult(
        "fig5", "Four-terminal lattice sizes vs two-terminal arrays", rows,
        ["benchmark", "n", "p(f)", "p(fD)", "lattice", "folded",
         "lattice_area", "diode_area", "fet_area", "4T_wins"],
        notes=f"four-terminal wins on {wins}/{comparable} benchmarks "
              "(the paper: 'favorably better crossbar sizes')",
    )


# ----------------------------------------------------------------------
# E-TAB-PC: P-circuit decomposition
# ----------------------------------------------------------------------
@register("pcircuit", "Lattice synthesis with P-circuit decomposition",
          "Section III-B.1, [5],[7]")
def experiment_pcircuit(fast: bool = True) -> ExperimentResult:
    max_vars = 5 if fast else 6
    benchmarks = [b for b in suite(max_vars=max_vars)
                  if not b.function.on.is_constant()]
    rows = []
    improved = 0
    for benchmark in benchmarks:
        table = benchmark.function.on
        direct = optimize_lattice(synthesize_lattice_dual(table), table).lattice
        decomposed = best_pcircuit(table)
        dec_folded = optimize_lattice(decomposed.lattice, table).lattice
        if dec_folded.area < direct.area:
            improved += 1
        rows.append({
            "benchmark": benchmark.name,
            "n": benchmark.n,
            "direct_area": direct.area,
            "pcircuit_area": dec_folded.area,
            "split_var": f"x{decomposed.decomposition.var + 1}",
            "blocks(=/!=/I)": "/".join(
                str(a) for a in decomposed.block_areas.values()
            ),
            "improves": dec_folded.area < direct.area,
        })
    return ExperimentResult(
        "pcircuit", "Lattice synthesis with P-circuit decomposition", rows,
        ["benchmark", "n", "direct_area", "pcircuit_area", "split_var",
         "blocks(=/!=/I)", "improves"],
        notes=f"decomposition reduced area on {improved}/{len(rows)} benchmarks; "
              "both columns are post-folding, so gains are structural",
    )


# ----------------------------------------------------------------------
# E-TAB-DR: D-reducible preprocessing
# ----------------------------------------------------------------------
@register("dreducible", "Lattice synthesis of D-reducible functions",
          "Section III-B.2, [4],[6]")
def experiment_dreducible(fast: bool = True) -> ExperimentResult:
    benchmarks = suite(tags=["d-reducible"], max_vars=5 if fast else 7)
    rows = []
    for benchmark in benchmarks:
        table = benchmark.function.on
        direct = optimize_lattice(synthesize_lattice_dual(table), table).lattice
        result = synthesize_dreducible(table)
        if result is None:
            continue
        composed = optimize_lattice(result.lattice, table).lattice
        rows.append({
            "benchmark": benchmark.name,
            "n": benchmark.n,
            "dim(A)": result.space.dim,
            "dims_dropped": result.dimension_drop,
            "chi_area": result.chi_lattice.area,
            "fA_area": result.projection_lattice.area,
            "direct_area": direct.area,
            "composed_area": composed.area,
            "improves": composed.area < direct.area,
        })
    return ExperimentResult(
        "dreducible", "Lattice synthesis of D-reducible functions", rows,
        ["benchmark", "n", "dim(A)", "dims_dropped", "chi_area", "fA_area",
         "direct_area", "composed_area", "improves"],
        notes="f = chi_A AND f_A; the projection block shrinks with dim(A), "
              "the chi_A (parity) block is the price of the restriction",
    )


# ----------------------------------------------------------------------
# E-TAB-OPT: optimal-vs-heuristic lattice sizes
# ----------------------------------------------------------------------
@register("optimal", "SAT-optimal lattice synthesis vs the dual-based bound",
          "[9] (Gange et al.)")
def experiment_optimal(fast: bool = True) -> ExperimentResult:
    names = ["xnor2", "xor3", "maj3", "fa_sum", "fa_carry", "mux2"]
    if not fast:
        names += ["xor4", "thr4_2", "onehot4"]
    rows = []
    for name in names:
        benchmark = by_name(name)
        table = benchmark.function.on
        dual = synthesize_lattice_dual(table)
        folded = optimize_lattice(dual, table).lattice
        optimal = synthesize_lattice_optimal(table, conflict_budget=100_000)
        rows.append({
            "benchmark": name,
            "n": benchmark.n,
            "formula_area": dual.area,
            "folded_area": folded.area,
            "optimal_area": optimal.area,
            "optimal_shape": optimal.shape,
            "proved": optimal.proved_optimal,
            "shapes_tried": len(optimal.shapes_tried),
        })
    return ExperimentResult(
        "optimal", "SAT-optimal lattice synthesis vs the dual-based bound", rows,
        ["benchmark", "n", "formula_area", "folded_area", "optimal_area",
         "optimal_shape", "proved", "shapes_tried"],
        notes="optimal <= folded <= formula everywhere; 'proved' = every "
              "smaller shape refuted by the CDCL solver",
    )


# ----------------------------------------------------------------------
# E-BIST
# ----------------------------------------------------------------------
@register("bist", "BIST: exhaustive coverage with constant configurations",
          "Section IV-A")
def experiment_bist(fast: bool = True) -> ExperimentResult:
    sizes = [(4, 4), (6, 6), (8, 8)] if fast else [(4, 4), (6, 6), (8, 8),
                                                   (12, 12), (16, 16)]
    rows = []
    for r, c in sizes:
        report = run_bist(r, c)
        rows.append({
            "crossbar": (r, c),
            "faults": report.num_faults,
            "configs": report.num_configurations,
            "vectors": report.num_vectors,
            "coverage": report.coverage,
            "naive_configs": report.naive_configurations,
        })
    return ExperimentResult(
        "bist", "BIST: exhaustive coverage with constant configurations", rows,
        ["crossbar", "faults", "configs", "vectors", "coverage", "naive_configs"],
        notes="100% coverage of stuck-at/bridge/open/functional faults with 5 "
              "single-term configurations vs R*C naive configurations",
    )


# ----------------------------------------------------------------------
# E-BISD
# ----------------------------------------------------------------------
@register("bisd", "BISD: logarithmic diagnosis configurations", "Section IV-A")
def experiment_bisd(fast: bool = True) -> ExperimentResult:
    sizes = [(2, 2), (4, 4), (4, 8)] if fast else [(2, 2), (4, 4), (4, 8),
                                                   (8, 8), (8, 16)]
    rows = []
    for r, c in sizes:
        report = run_bisd(r, c)
        rows.append({
            "crossbar": (r, c),
            "resources": report.num_resources,
            "configs": report.num_configurations,
            "log2(resources)": report.theoretical_minimum,
            "single_faults": report.num_faults,
            "diagnosed": report.num_correct,
            "accuracy": report.accuracy,
        })
    return ExperimentResult(
        "bisd", "BISD: logarithmic diagnosis configurations", rows,
        ["crossbar", "resources", "configs", "log2(resources)",
         "single_faults", "diagnosed", "accuracy"],
        notes="configs = ceil(log2(resources)) + 2 type probes; every single "
              "crosspoint fault decoded uniquely from its block-code signature",
    )


# ----------------------------------------------------------------------
# E-BISM
# ----------------------------------------------------------------------
@register("bism", "BISM: blind vs greedy vs hybrid across defect densities",
          "Section IV-B")
def experiment_bism(fast: bool = True) -> ExperimentResult:
    rng = random.Random(20170327)
    densities = [0.0, 0.05, 0.1, 0.2, 0.3] if fast else [
        0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3]
    trials = 25 if fast else 100
    program = as_program([
        [True, False, True, False],
        [False, True, False, True],
        [True, True, False, False],
    ])
    points = bism_density_sweep(program, 12, 12, densities, trials, rng,
                                max_retries=150)
    rows = [{
        "density": p.density,
        "strategy": p.strategy,
        "success": p.success_rate,
        "avg_bist": p.avg_bist_sessions,
        "avg_bisd": p.avg_bisd_sessions,
        "avg_sessions": p.avg_total_sessions,
    } for p in points]
    return ExperimentResult(
        "bism", "BISM: blind vs greedy vs hybrid across defect densities", rows,
        ["density", "strategy", "success", "avg_bist", "avg_bisd", "avg_sessions"],
        notes="blind explodes with density; greedy pays diagnosis but stays "
              "flat; hybrid tracks the cheaper of the two (Section IV-B)",
    )


# ----------------------------------------------------------------------
# E-FIG6
# ----------------------------------------------------------------------
@register("fig6", "Defect-unaware flow: k recovery, map size, mapping cost",
          "Fig. 6")
def experiment_fig6(fast: bool = True) -> ExperimentResult:
    rng = random.Random(691178)
    n = 16 if fast else 32
    densities = [0.01, 0.05, 0.1] if fast else [0.01, 0.02, 0.05, 0.1, 0.15]
    trials = 5 if fast else 20
    per_density: dict[float, list] = {d: [] for d in densities}
    for density in densities:
        for _ in range(trials):
            defect_map = random_defect_map(n, n, density, rng)
            comparison = defect_unaware_flow(defect_map, 3, 3, rng,
                                             applications=5)
            per_density[density].append(comparison)
    aggregated = []
    for density in densities:
        bucket = per_density[density]
        aggregated.append({
            "N": n,
            "density": density,
            "avg_recovered_k": sum(c.recovered_k for c in bucket) / len(bucket),
            "k_over_N": sum(c.recovered_k for c in bucket) / len(bucket) / n,
            "aware_map_words": bucket[0].aware_map_words,
            "unaware_map_words": max(c.unaware_map_words for c in bucket),
            "aware_sessions/app": sum(c.aware_sessions_per_app for c in bucket)
            / len(bucket),
            "unaware_sessions/app": sum(c.unaware_sessions_per_app for c in bucket)
            / len(bucket),
        })
    return ExperimentResult(
        "fig6", "Defect-unaware flow: k recovery, map size, mapping cost",
        aggregated,
        ["N", "density", "avg_recovered_k", "k_over_N", "aware_map_words",
         "unaware_map_words", "aware_sessions/app", "unaware_sessions/app"],
        notes="defect map shrinks O(N^2) -> O(N); per-application mapping cost "
              "collapses to zero once the clean k x k is extracted (Fig. 6b)",
    )


# ----------------------------------------------------------------------
# E-RECOVERY (supplement to Fig. 6: k/N degradation)
# ----------------------------------------------------------------------
@register("recovery", "Recovered k/N vs defect density", "Fig. 6 supplement")
def experiment_recovery(fast: bool = True) -> ExperimentResult:
    rng = random.Random(7)
    n = 16 if fast else 32
    densities = [0.0, 0.02, 0.05, 0.1, 0.2] if fast else [
        0.0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3]
    trials = 10 if fast else 30
    rows = recovery_sweep(n, densities, trials, rng)
    return ExperimentResult(
        "recovery", "Recovered k/N vs defect density", rows,
        ["N", "density", "avg_k", "k_over_n", "min_k", "max_k"],
        notes="graceful degradation of the universal clean subarray size",
    )


# ----------------------------------------------------------------------
# E-VAR
# ----------------------------------------------------------------------
@register("variation", "Variation-aware vs oblivious mapping delay",
          "Section IV (variation tolerance)")
def experiment_variation(fast: bool = True) -> ExperimentResult:
    rng = random.Random(113)
    lattice = synthesize_lattice_dual(by_name("xnor2").function.on)
    sigmas = [0.1, 0.3, 0.6] if fast else [0.05, 0.1, 0.2, 0.3, 0.5, 0.8]
    trials = 30 if fast else 150
    points = variation_sweep(lattice, sigmas, 10, 10, trials, rng)
    rows = [{
        "sigma": p.sigma,
        "aware_mean": p.aware_mean,
        "aware_p95": p.aware_p95,
        "oblivious_mean": p.oblivious_mean,
        "oblivious_p95": p.oblivious_p95,
        "mean_gain": p.mean_improvement,
    } for p in points]
    return ExperimentResult(
        "variation", "Variation-aware vs oblivious mapping delay", rows,
        ["sigma", "aware_mean", "aware_p95", "oblivious_mean",
         "oblivious_p95", "mean_gain"],
        notes="selecting low-resistance lines tightens the delay distribution; "
              "the gain grows with variation strength",
    )


# ----------------------------------------------------------------------
# E-YIELD
# ----------------------------------------------------------------------
@register("yield", "Yield: Monte Carlo vs analytic bounds",
          "Section IV (manufacturing yield)")
def experiment_yield(fast: bool = True) -> ExperimentResult:
    rng = random.Random(42)
    n = 8 if fast else 12
    k_values = [n // 2, 3 * n // 4, n]
    densities = [0.02, 0.05, 0.1] if fast else [0.01, 0.02, 0.05, 0.1, 0.2]
    trials = 60 if fast else 300
    rows = yield_sweep(n, k_values, densities, trials, rng)
    return ExperimentResult(
        "yield", "Yield: Monte Carlo vs analytic bounds", rows,
        ["N", "k", "density", "monte_carlo_yield", "fixed_placement_prob",
         "expected_clean_count"],
        notes="choosing k < N converts a near-zero full-array yield into a "
              "high recovered yield — the economic case for defect tolerance",
    )


# ----------------------------------------------------------------------
# E-LATTICE-MAP (defect-aware placement of four-terminal lattices)
# ----------------------------------------------------------------------
@register("latticemap", "Defect-aware lattice placement on defective fabrics",
          "Sections III+IV combined (four-terminal BISM analogue)")
def experiment_latticemap(fast: bool = True) -> ExperimentResult:
    from ..reliability.lattice_mapping import mapping_success_sweep
    from ..synthesis.optimize import fold_lattice

    rng = random.Random(44)
    f = by_name("xnor2").function
    lattice = fold_lattice(synthesize_lattice_dual(f.on), f.on)
    densities = [0.0, 0.05, 0.15, 0.3] if fast else [
        0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4]
    trials = 20 if fast else 80
    rows = mapping_success_sweep(lattice, f.n, densities, trials, rng,
                                 fabric_size=8)
    return ExperimentResult(
        "latticemap", "Defect-aware lattice placement on defective fabrics",
        rows,
        ["density", "success_rate", "avg_trials", "avg_exploited_defects"],
        notes="stuck-closed fabric sites serve as the algebra's constant-1 "
              "padding and stuck-open sites as constant-0 — defects become "
              "resources when they align with padding",
    )


# ----------------------------------------------------------------------
# E-EXPRESSIVENESS (what each lattice shape can compute, [3]/[9] context)
# ----------------------------------------------------------------------
@register("expressiveness", "Lattice shape expressiveness (NPN classes)",
          "[3] context: which functions fit which lattices")
def experiment_expressiveness(fast: bool = True) -> ExperimentResult:
    from ..synthesis.enumerate_lattices import expressiveness

    shapes = [(1, 1, 2), (1, 2, 2), (2, 1, 2), (2, 2, 2)]
    if not fast:
        shapes += [(1, 3, 2), (3, 1, 2), (2, 2, 3)]
    rows = []
    for r, c, n in shapes:
        entry = expressiveness(r, c, n)
        rows.append({
            "shape": (r, c),
            "n": n,
            "labellings": entry.labellings,
            "functions": entry.distinct_functions,
            "of_total": entry.total_functions,
            "coverage": entry.coverage,
            "npn_classes": entry.npn_classes,
        })
    return ExperimentResult(
        "expressiveness", "Lattice shape expressiveness (NPN classes)", rows,
        ["shape", "n", "labellings", "functions", "of_total", "coverage",
         "npn_classes"],
        notes="exhaustive site-labelling enumeration: a 2x2 lattice already "
              "realises all 16 two-variable functions (4 NPN classes)",
    )


# ----------------------------------------------------------------------
# E-METRICS (Section II: area, delay, power per style)
# ----------------------------------------------------------------------
@register("metrics", "Area/delay/power across the three array styles",
          "Section II performance parameters")
def experiment_metrics(fast: bool = True) -> ExperimentResult:
    from ..crossbar.metrics import compare_styles

    names = ["xnor2", "maj3", "fa_sum", "thr4_2", "mux4", "pla5"]
    if not fast:
        names += ["maj5", "sym5_23", "eq2", "gt2"]
    rows = []
    for name in names:
        table = by_name(name).function.on
        for metrics in compare_styles(table):
            rows.append({
                "benchmark": name,
                "style": metrics.style,
                "area": metrics.area,
                "delay": metrics.delay,
                "power": metrics.power,
            })
    return ExperimentResult(
        "metrics", "Area/delay/power across the three array styles", rows,
        ["benchmark", "style", "area", "delay", "power"],
        notes="normalised technology units (R_on = C_unit = 1): lattices "
              "trade the diode plane's static power for longer percolation "
              "paths; FET planes pay area for complementary operation",
    )


# ----------------------------------------------------------------------
# E-TMR (extension: [15], transient + permanent fault tolerance)
# ----------------------------------------------------------------------
@register("tmr", "TMR and spare-line repair (transient/permanent faults)",
          "[15] (Tunali & Altun) / Section IV lifetime reliability")
def experiment_tmr(fast: bool = True) -> ExperimentResult:
    from ..reliability.redundancy import (make_tmr, repair_with_spares,
                                          tmr_reliability)
    from ..synthesis.optimize import fold_lattice

    rng = random.Random(15)
    f = by_name("xnor2").function
    replica = fold_lattice(synthesize_lattice_dual(f.on), f.on)
    rates = [0.0, 0.005, 0.02, 0.05, 0.15, 0.3] if not fast else [
        0.0, 0.01, 0.05, 0.2]
    trials = 400 if fast else 2000
    points = tmr_reliability(replica, f.on, rates, trials, rng)
    system = make_tmr(replica)
    rows = [{
        "upset_rate": p.upset_rate,
        "simplex_correct": p.simplex_correct,
        "tmr_correct": p.tmr_correct,
        "tmr_wins": p.tmr_wins,
        "area_overhead": f"{system.area}/{replica.area}",
    } for p in points]
    # spare-line repair success at a benign density
    repairs = 0
    trials_repair = 50 if fast else 200
    for _ in range(trials_repair):
        defect_map = random_defect_map(10, 10, 0.01, rng)
        if repair_with_spares(defect_map, 8, 8).success:
            repairs += 1
    rows.append({
        "upset_rate": "perm. d=0.01",
        "simplex_correct": "",
        "tmr_correct": "",
        "tmr_wins": "",
        "area_overhead": f"spare repair 8x8-in-10x10: {repairs / trials_repair:.2f}",
    })
    return ExperimentResult(
        "tmr", "TMR and spare-line repair (transient/permanent faults)", rows,
        ["upset_rate", "simplex_correct", "tmr_correct", "tmr_wins",
         "area_overhead"],
        notes="classic TMR crossover: wins at low upset rates, loses once "
              "multi-replica upsets dominate; whole-line sparing only pays "
              "at low densities (crosspoint-level mapping scales better)",
    )


# ----------------------------------------------------------------------
# E-ARCH
# ----------------------------------------------------------------------
@register("arch", "Arithmetic/memory/SSM built from crossbar blocks",
          "Section V (sub-objectives 3-4)")
def experiment_arch(fast: bool = True) -> ExperimentResult:
    from ..arch.arithmetic import (adder_reference, synthesize_adder,
                                   synthesize_comparator, comparator_reference)
    from ..arch.memory import CrossbarMemory
    from ..arch.ssm import SynchronousStateMachine, counter_spec

    rows = []
    widths = [1, 2] if fast else [1, 2, 3]
    for width in widths:
        adder = synthesize_adder(width)
        rows.append({
            "element": f"adder{width} (lattice)",
            "inputs": adder.num_inputs,
            "outputs": adder.num_outputs,
            "area": adder.total_area,
            "verified": adder.verify_against(adder_reference(width)),
        })
    comparator = synthesize_comparator(2)
    rows.append({
        "element": "cmp2 (lattice)",
        "inputs": comparator.num_inputs,
        "outputs": comparator.num_outputs,
        "area": comparator.total_area,
        "verified": comparator.verify_against(comparator_reference(2)),
    })
    memory = CrossbarMemory(3, 4)
    memory.load({i: (i * 5) % 16 for i in range(8)})
    rows.append({
        "element": "memory 8x4 + decoder",
        "inputs": 3,
        "outputs": 4,
        "area": memory.total_area,
        "verified": all(memory.read(i) == (i * 5) % 16 for i in range(8)),
    })
    ssm = SynchronousStateMachine(counter_spec(2))
    sequence = [1, 1, 0, 1, 1, 1]
    outputs = ssm.run(sequence)
    expected = []
    state = 0
    for enable in sequence:
        expected.append(state)
        state = (state + enable) & 0b11
    rows.append({
        "element": "SSM: 2-bit counter",
        "inputs": 3,
        "outputs": 2,
        "area": ssm.total_area,
        "verified": outputs == expected and ssm.verify_against_spec(),
    })
    return ExperimentResult(
        "arch", "Arithmetic/memory/SSM built from crossbar blocks", rows,
        ["element", "inputs", "outputs", "area", "verified"],
        notes="the paper's roadmap endpoint: arithmetic + memory + state "
              "machine, every combinational bit a verified crossbar block",
    )
