"""Command-line interface: run paper experiments from the shell.

::

    nanoxbar list                 # enumerate experiments
    nanoxbar run fig5             # one experiment (full sweep)
    nanoxbar run fig5 --fast      # reduced sweep
    nanoxbar all --fast           # everything
    nanoxbar bench xnor2          # inspect one benchmark function
    nanoxbar serve                # start the async batch server
    nanoxbar submit ...           # drive a running server
    nanoxbar stats                # telemetry snapshot of a running server
    nanoxbar top                  # live terminal view of a server's metrics
    nanoxbar batch --profile      # span-tree timing breakdown
    nanoxbar batch --sample-profile  # sampling wall-clock profile
    nanoxbar --log-json ...       # structured JSON logs on stderr
    nanoxbar lint src/            # repo invariant lint (determinism,
                                  # concurrency, layering rules)
    nanoxbar lint --self-test     # every rule against its own fixtures
"""

from __future__ import annotations

import argparse
import json
import os
import sqlite3
import sys

from .benchsuite import by_name, standard_suite
from .experiments import all_experiments, get_experiment


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment in all_experiments():
        print(f"{experiment.experiment_id:12s} {experiment.title}  "
              f"[{experiment.paper_ref}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    result = experiment.run(args.fast)
    print(result.render())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for experiment in all_experiments():
        result = experiment.run(args.fast)
        print(result.render())
        print()
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from ..boolean import BooleanFunction
    from ..synthesis import (
        optimize_lattice,
        synthesize_diode,
        synthesize_fet,
        synthesize_lattice_dual,
        synthesize_lattice_optimal,
    )

    f = BooleanFunction.from_expression(args.expression)
    print(f"f = {f.to_expression()}   (n = {f.n})")
    style = args.style
    if style in ("diode", "all"):
        diode = synthesize_diode(f.on)
        print(f"\ndiode array {diode.num_rows} x {diode.num_cols}:")
        print(diode.render(f.names))
    if style in ("fet", "all"):
        fet = synthesize_fet(f.on)
        print(f"\nFET array {fet.num_rows} x {fet.num_cols}:")
        print(fet.render(f.names))
    if style in ("lattice", "all"):
        lattice = synthesize_lattice_dual(f.on)
        folded = optimize_lattice(lattice, f.on).lattice
        print(f"\nlattice {lattice.rows} x {lattice.cols} "
              f"(folded: {folded.rows} x {folded.cols}):")
        print(folded.render(f.names))
    if style == "optimal":
        result = synthesize_lattice_optimal(f.on)
        print(f"\noptimal lattice {result.shape[0]} x {result.shape[1]} "
              f"(proved: {result.proved_optimal}):")
        print(result.lattice.render(f.names))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.name is None:
        for benchmark in standard_suite():
            tags = ",".join(sorted(benchmark.tags))
            print(f"{benchmark.name:14s} n={benchmark.n}  [{tags}]  "
                  f"{benchmark.description}")
        return 0
    try:
        benchmark = by_name(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    f = benchmark.function
    print(f"{benchmark.name}: {benchmark.description}")
    print(f"  n = {f.n}, |on| = {f.on.count_ones()}")
    print(f"  minimized SOP: {f.to_expression()}")
    metrics = f.sop_metrics()
    print(f"  products = {metrics['products']}, "
          f"dual products = {metrics['dual_products']}, "
          f"distinct literals = {metrics['distinct_literals']}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from ..engine import (
        DEFAULT_STRATEGIES,
        BatchEngine,
        FaultToleranceSpec,
        PortfolioConfig,
        SynthesisJob,
    )
    from .benchsuite import suite

    benchmarks = suite(tags=args.tags or None, max_vars=args.max_vars)
    if not benchmarks:
        print("error: no benchmarks match the selection", file=sys.stderr)
        return 2
    strategies = DEFAULT_STRATEGIES
    if args.no_optimal:
        strategies = tuple(s for s in strategies if s != "optimal")
    fault_tolerance = None
    if args.defect_density != 0 or args.redundancy != "none":
        try:
            fault_tolerance = FaultToleranceSpec(
                defect_density=args.defect_density,
                redundancy=args.redundancy,
                seed=args.seed,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    jobs = [
        SynthesisJob.from_function(b.function, b.name, strategies,
                                   fault_tolerance)
        for b in benchmarks
    ]
    cache_path = ":memory:" if args.no_cache else args.cache
    processes = None if args.processes == 0 else args.processes
    try:
        engine = BatchEngine(cache_path=cache_path, processes=processes,
                             config=PortfolioConfig(preempt=args.preempt))
    except sqlite3.DatabaseError as error:
        print(f"error: cannot open cache {cache_path!r}: {error}",
              file=sys.stderr)
        print(f"hint: delete {cache_path!r} and rerun", file=sys.stderr)
        return 1
    with engine:
        try:
            results = engine.run(jobs)
        except (RuntimeError, sqlite3.DatabaseError) as error:
            print(f"error: {error}", file=sys.stderr)
            if not args.no_cache:
                # Corrupted entries self-heal on the next run; deleting the
                # cache is the last resort (and destroys valid results), so
                # suggest retrying first — e.g. a concurrent batch run can
                # surface here as a transient "database is locked".
                print(f"hint: rerun the command; if the error persists, "
                      f"delete {cache_path!r} to rebuild the cache",
                      file=sys.stderr)
            return 1
        for result in results:
            line = (f"{result.label:14s} n={result.n}  "
                    f"{result.strategy:10s} {result.shape[0]:>2d}x"
                    f"{result.shape[1]:<2d} area={result.area:<3d} "
                    f"{'hit' if result.cache_hit else 'miss'}")
            ft = result.fault_tolerance
            if ft is not None:
                if args.defect_density > 0:
                    line += ("  mapped" if ft.mapped else "  unmapped")
                if ft.tmr_area:
                    line += f"  tmr_area={ft.tmr_area}"
            print(line)
        print()
        print(engine.report())
    return 0


def _cmd_faultsim(args: argparse.Namespace) -> int:
    from ..faultlab import CampaignSpec, run_campaign

    if args.k:
        k_values = tuple(args.k)
    else:
        # Default thresholds off the largest swept N (the Fig. 6 regime:
        # half, three-quarter and full recovery).
        n_max = max(args.n)
        k_values = tuple(sorted({max(1, n_max // 2),
                                 max(1, 3 * n_max // 4), n_max}))
    try:
        spec = CampaignSpec(
            n_values=tuple(args.n),
            k_values=k_values,
            densities=tuple(args.densities),
            models=tuple(args.models),
            strategies=tuple(args.strategies),
            trials=args.trials,
            seed=args.seed,
            stuck_open_fraction=args.stuck_open_fraction,
            batch_size=args.batch_size,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from ..engine import default_processes

    store = None if args.no_cache else args.cache
    processes = (default_processes() if args.processes == 0
                 else args.processes)
    try:
        result = run_campaign(spec, store=store, processes=processes)
    except sqlite3.DatabaseError as error:
        print(f"error: cannot use campaign store {store!r}: {error}",
              file=sys.stderr)
        print(f"hint: delete {store!r} and rerun", file=sys.stderr)
        return 1
    print(result.render())
    return 0


def _cmd_varsweep(args: argparse.Namespace) -> int:
    from ..synthesis import synthesize_lattice_dual
    from ..varsim import VariationCampaignSpec, run_variation_campaign

    try:
        benchmark = by_name(args.bench)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    lattice = synthesize_lattice_dual(benchmark.function.on)
    try:
        spec = VariationCampaignSpec(
            lattice=lattice,
            sigmas=tuple(args.sigmas),
            crossbar_rows=args.crossbar_rows,
            crossbar_cols=args.crossbar_cols,
            trials=args.trials,
            seed=args.seed,
            nominal=args.nominal,
            batch_size=args.batch_size,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from ..engine import default_processes

    store = None if args.no_cache else args.cache
    processes = (default_processes() if args.processes == 0
                 else args.processes)
    try:
        result = run_variation_campaign(spec, store=store,
                                        processes=processes)
    except sqlite3.DatabaseError as error:
        print(f"error: cannot use campaign store {store!r}: {error}",
              file=sys.stderr)
        print(f"hint: delete {store!r} and rerun", file=sys.stderr)
        return 1
    print(f"benchmark {benchmark.name}: {benchmark.description}")
    print(result.render())
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from ..engine.store import JsonStore
    from ..grid import (
        GridConfigError,
        GridPointError,
        export_rows,
        grid_status,
        load_config,
        plan,
        release_claims,
        run_workers,
        work_loop,
    )

    try:
        config = load_config(args.config)
    except (GridConfigError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store_path = args.store or config.store or ".nanoxbar-campaigns.sqlite"

    def emit(payload: dict) -> None:
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            counts = payload.get("counts")
            line = f"grid {payload['grid_id']}: {payload['points']} points"
            if counts is not None:
                line += " — " + ", ".join(
                    f"{count} {status}"
                    for status, count in sorted(counts.items()))
            print(line)

    try:
        with JsonStore(store_path) as store:
            grid_id, _, added = plan(config, store)
            if args.grid_command == "plan":
                status = grid_status(store, grid_id)
                status["added"] = added
                emit(status)
                return 0
            if args.grid_command == "status":
                emit(grid_status(store, grid_id))
                return 0
            if args.grid_command == "export":
                rows = export_rows(store, grid_id)
                text = json.dumps({"grid_id": grid_id, "rows": rows},
                                  sort_keys=True, indent=2)
                if args.output:
                    with open(args.output, "w", encoding="utf-8") as handle:
                        handle.write(text + "\n")
                else:
                    print(text)
                return 0
            if args.grid_command == "resume":
                released = release_claims(store, grid_id)
                if not args.json:
                    print(f"released {released} stale claims")
            workers = args.workers if args.workers else config.workers
            if workers <= 1:
                work_loop(config, grid_id, store, "w0")
                failures = 0
            else:
                failures = None  # fan out below, outside this connection
        if failures is None:
            failures = run_workers(config, args.config, grid_id,
                                   store_path, workers=workers)
        with JsonStore(store_path) as store:
            status = grid_status(store, grid_id)
        emit(status)
        if failures:
            print(f"error: {failures} workers exited non-zero",
                  file=sys.stderr)
            return 1
        return 0 if status["finished"] and not \
            status["counts"].get("failed") else 1
    except (GridConfigError, GridPointError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except sqlite3.DatabaseError as error:
        print(f"error: cannot use grid store {store_path!r}: {error}",
              file=sys.stderr)
        return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from ..engine import default_processes
    from ..server import BatchServer

    cache_path = ":memory:" if args.no_cache else args.cache
    processes = (default_processes() if args.processes == 0
                 else args.processes)
    server = BatchServer(host=args.host, port=args.port,
                         cache_path=cache_path, processes=processes,
                         job_workers=args.job_workers)

    async def main() -> None:
        await server.start()
        print(f"nanoxbar server listening on "
              f"http://{server.host}:{server.port} "
              f"(cache={cache_path}, processes={processes}, "
              f"job_workers={args.job_workers})", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop; ctrl-C still raises KeyboardInterrupt
        await server.serve_forever()
        print("nanoxbar server stopped", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        return 0
    except OSError as error:
        print(f"error: cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    return 0


def _submit_payload(args: argparse.Namespace) -> dict:
    if args.kind == "synthesis":
        return {"kind": "synthesis",
                "jobs": [{"bench": name} for name in args.benches]}
    if args.kind == "faultsim":
        n_max = max(args.n)
        k_values = args.k or sorted({max(1, n_max // 2),
                                     max(1, 3 * n_max // 4), n_max})
        return {"kind": "faultsim", "n_values": args.n,
                "k_values": list(k_values), "densities": args.densities,
                "trials": args.trials, "seed": args.seed,
                "batch_size": args.batch_size}
    return {"kind": "varsweep", "bench": args.bench, "sigmas": args.sigmas,
            "crossbar_rows": args.crossbar_rows,
            "crossbar_cols": args.crossbar_cols, "trials": args.trials,
            "seed": args.seed, "batch_size": args.batch_size}


def _cmd_submit(args: argparse.Namespace) -> int:
    from http.client import HTTPException

    from ..server.client import ServerClient, ServerError

    client = ServerClient(args.host, args.port, timeout=args.timeout)
    payload = _submit_payload(args)
    try:
        # Tolerate a server that is still binding its port (the CI smoke
        # backgrounds `nanoxbar serve` and submits immediately).
        client.wait_healthy(deadline=args.wait_server)
        submitted = client.submit(payload)
        job_id = submitted["job_id"]
        print(f"job {job_id}  "
              f"({'coalesced' if submitted['coalesced'] else 'new'}, "
              f"{submitted['points_total']} points)")
        if args.stream:
            for record in client.stream(job_id):
                print(json.dumps(record, sort_keys=True))
        result = client.result(job_id)
        if result["state"] != "done":
            print(f"error: job {job_id} {result['state']}: "
                  f"{result['error']}", file=sys.stderr)
            return 1
        if not args.stream:
            for record in result["points"]:
                print(json.dumps(record, sort_keys=True))
        if args.shutdown:
            client.shutdown()
            client.wait_stopped()
            print("server stopped")
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Our stdout reader went away (e.g. `submit ... | head`); the
        # conventional quiet exit, not a server-connectivity failure.
        return 0
    except (OSError, HTTPException) as error:
        # HTTPException covers a server dying mid-exchange (e.g.
        # IncompleteRead while streaming a chunked response).
        print(f"error: cannot reach server at "
              f"{args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from ..analysis import (
        lint_paths,
        render_human,
        render_json,
        render_rules,
        run_selftest,
    )

    if args.rules:
        print(render_rules())
        return 0
    if args.self_test:
        result = run_selftest()
        print(result.render())
        return 0 if result.ok else 1
    paths = args.paths or ["src"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = lint_paths(paths)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_human(report, show_suppressed=args.show_suppressed))
    return report.exit_code


def _cmd_stats(args: argparse.Namespace) -> int:
    from http.client import HTTPException

    from ..server.client import ServerClient, ServerError

    client = ServerClient(args.host, args.port, timeout=args.timeout)
    try:
        stats = client.stats()
    except (OSError, HTTPException, ServerError) as error:
        print(f"error: cannot fetch stats from {args.host}:{args.port}: "
              f"{error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    queue = stats.get("queue", {})
    engine = stats.get("engine", {})
    print("queue:  " + "  ".join(f"{key}={queue[key]}"
                                 for key in sorted(queue)))
    if engine:
        wins = engine.pop("strategy_wins", {})
        print("engine: " + "  ".join(
            f"{key}={engine[key]:.3g}" if isinstance(engine[key], float)
            else f"{key}={engine[key]}" for key in sorted(engine)))
        if wins:
            print("wins:   " + "  ".join(f"{name}={count}"
                                         for name, count in wins.items()))
    snapshot = stats.get("metrics", {})
    counters = snapshot.get("counters", {})
    if counters:
        print("counters:")
        for name in sorted(counters):
            for label_text in sorted(counters[name]):
                suffix = f"{{{label_text}}}" if label_text else ""
                print(f"  {name}{suffix} = {counters[name][label_text]}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        print("latency histograms:")
        for name in sorted(histograms):
            for label_text in sorted(histograms[name]):
                series = histograms[name][label_text]
                suffix = f"{{{label_text}}}" if label_text else ""
                print(f"  {name}{suffix}: count={series['count']} "
                      f"p50={series['p50']:.4g}s p90={series['p90']:.4g}s "
                      f"p99={series['p99']:.4g}s")
    return 0


def _render_top_frame(frame: dict, health: dict, interval: float,
                      rows: int) -> str:
    """One repaint of the ``nanoxbar top`` view from a recorder frame."""
    resources = frame.get("resources", {})
    status = health.get("status", "ok")
    lines = [
        f"nanoxbar top  cursor={frame['cursor']}  tick={interval:g}s  "
        f"status={status}",
        f"process: cpu={resources.get('cpu_seconds', 0.0):.1f}s  "
        f"rss={resources.get('rss_bytes', 0) / 2**20:.0f}MiB  "
        f"max_rss={resources.get('max_rss_bytes', 0) / 2**20:.0f}MiB",
    ]
    for alert in health.get("alerts", []):
        lines.append(f"ALERT {alert['rule']}: {alert['message']}")
    counters = sorted(frame["counters"].items(),
                      key=lambda kv: kv[1]["rate"], reverse=True)
    if counters:
        lines.append("")
        lines.append(f"{'rate/s':>10s} {'delta':>8s} {'total':>10s}  counter")
        for key, entry in counters[:rows]:
            lines.append(f"{entry['rate']:10.2f} {entry['delta']:8g} "
                         f"{entry['value']:10g}  {key}")
    gauges = sorted(frame["gauges"].items())
    if gauges:
        lines.append("")
        lines.append("gauges: " + "  ".join(f"{key}={value:g}"
                                            for key, value in gauges))
    histograms = sorted(frame["histograms"].items(),
                        key=lambda kv: kv[1]["rate"], reverse=True)
    if histograms:
        lines.append("")
        lines.append(f"{'rate/s':>10s} {'p50':>9s} {'p99':>9s}  latency")
        for key, entry in histograms[:rows]:
            lines.append(f"{entry['rate']:10.2f} {entry['p50']:8.4g}s "
                         f"{entry['p99']:8.4g}s  {key}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time
    from http.client import HTTPException

    from ..server.client import ServerClient, ServerError

    if args.local:
        from ..obs.timeline import local_recorder
        recorder = local_recorder()

        def fetch() -> tuple[dict | None, dict, float]:
            recorder.tick_once()
            return recorder.latest(), {"status": "ok (local)",
                                       "alerts": []}, recorder.interval
    else:
        client = ServerClient(args.host, args.port, timeout=args.timeout)
        cursor = {"value": 0}

        def fetch() -> tuple[dict | None, dict, float]:
            page = client.history(since=max(0, cursor["value"] - 1))
            frames = page["frames"]
            if frames:
                cursor["value"] = frames[-1]["cursor"]
            return (frames[-1] if frames else None, client.health(),
                    page["interval"])

    try:
        while True:
            try:
                frame, health, interval = fetch()
            except (OSError, HTTPException, ServerError) as error:
                print(f"error: cannot reach server at "
                      f"{args.host}:{args.port}: {error}", file=sys.stderr)
                return 1
            text = (_render_top_frame(frame, health, interval, args.rows)
                    if frame else "(no frames yet — recorder warming up)")
            if args.once:
                print(text)
                return 0
            # Full-screen repaint: clear + home, like watch(1).
            print(f"\x1b[2J\x1b[H{text}", flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nanoxbar",
        description="Nano-crossbar synthesis & fault tolerance experiments "
                    "(Altun, Ciriani, Tahoori — DATE 2017 reproduction)",
    )
    parser.add_argument("--log-json", action="store_true",
                        help="emit structured JSON logs on stderr "
                             "(equivalent to NANOXBAR_LOG=json)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (see `list`)")
    run.add_argument("--fast", action="store_true", help="reduced sweep")
    run.set_defaults(fn=_cmd_run)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--fast", action="store_true", help="reduced sweeps")
    everything.set_defaults(fn=_cmd_all)

    bench = sub.add_parser("bench", help="inspect benchmark functions")
    bench.add_argument("name", nargs="?", default=None)
    bench.set_defaults(fn=_cmd_bench)

    synth = sub.add_parser("synth", help="synthesize an expression")
    synth.add_argument("expression", help="e.g. \"x1 x2 + x1' x2'\"")
    synth.add_argument("--style", default="all",
                       choices=["all", "diode", "fet", "lattice", "optimal"])
    synth.set_defaults(fn=_cmd_synth)

    batch = sub.add_parser(
        "batch",
        help="synthesize a whole benchmark suite through the batch engine")
    batch.add_argument("--cache", default=".nanoxbar-cache.sqlite",
                       help="persistent result-cache path")
    batch.add_argument("--no-cache", action="store_true",
                       help="use an ephemeral in-memory cache")
    batch.add_argument("--processes", type=int, default=1,
                       help="worker processes (0 = auto)")
    batch.add_argument("--tags", nargs="*", default=None,
                       help="restrict to benchmarks carrying any of these tags")
    batch.add_argument("--max-vars", type=int, default=None,
                       help="restrict to benchmarks with at most this many "
                            "variables")
    batch.add_argument("--preempt", action="store_true",
                       help="race portfolio strategies concurrently and kill "
                            "provable losers (same verdict, less wall-clock)")
    batch.add_argument("--no-optimal", action="store_true",
                       help="drop the SAT-optimal strategy from the portfolio")
    batch.add_argument("--defect-density", type=float, default=0.0,
                       help="also map each lattice onto a random defective "
                            "fabric with this defect density")
    batch.add_argument("--redundancy", default="none",
                       choices=["none", "tmr"],
                       help="also build TMR redundancy around each lattice")
    batch.add_argument("--seed", type=int, default=0,
                       help="seed for the fault-tolerance post-processing")
    batch.add_argument("--profile", action="store_true",
                       help="print a span-tree timing breakdown afterwards")
    batch.add_argument("--sample-profile", action="store_true",
                       help="sample the main thread's wall-clock stacks "
                            "and print a top-N self-time table afterwards")
    batch.set_defaults(fn=_cmd_batch)

    faultsim = sub.add_parser(
        "faultsim",
        help="run a Monte-Carlo fault-tolerance campaign (yield / clean-k "
             "recovery sweeps) through the faultlab engine")
    faultsim.add_argument("--n", type=int, nargs="+", default=[16],
                          help="crossbar sizes N to sweep")
    faultsim.add_argument("--k", type=int, nargs="+", default=None,
                          help="clean-square thresholds (default: N/2, "
                               "3N/4, N of the largest size)")
    faultsim.add_argument("--densities", type=float, nargs="+",
                          default=[0.01, 0.05, 0.1],
                          help="defect densities to sweep")
    faultsim.add_argument("--models", nargs="+", default=["bernoulli"],
                          choices=["bernoulli", "clustered"],
                          help="defect models to sweep")
    faultsim.add_argument("--strategies", nargs="+", default=["greedy"],
                          choices=["greedy", "exact"],
                          help="clean-subarray extraction strategies")
    faultsim.add_argument("--trials", type=int, default=1000,
                          help="Monte-Carlo trials per grid point")
    faultsim.add_argument("--seed", type=int, default=0,
                          help="campaign seed (bit-reproducible)")
    faultsim.add_argument("--stuck-open-fraction", type=float, default=0.8,
                          help="share of defects that are stuck-open")
    faultsim.add_argument("--batch-size", type=int, default=256,
                          help="trials per sharded worker batch")
    faultsim.add_argument("--processes", type=int, default=1,
                          help="worker processes (0 = auto)")
    faultsim.add_argument("--cache", default=".nanoxbar-campaigns.sqlite",
                          help="persistent campaign-store path")
    faultsim.add_argument("--no-cache", action="store_true",
                          help="skip campaign persistence")
    faultsim.add_argument("--profile", action="store_true",
                          help="print a span-tree timing breakdown "
                               "afterwards")
    faultsim.add_argument("--sample-profile", action="store_true",
                          help="sample the main thread's wall-clock "
                               "stacks and print a top-N self-time table "
                               "afterwards")
    faultsim.set_defaults(fn=_cmd_faultsim)

    varsweep = sub.add_parser(
        "varsweep",
        help="run a variation-aware vs oblivious Monte-Carlo delay "
             "campaign through the varsim engine")
    varsweep.add_argument("--bench", default="xnor2",
                          help="benchmark function to synthesize "
                               "(dual-construction lattice; see `bench`)")
    varsweep.add_argument("--sigmas", type=float, nargs="+",
                          default=[0.1, 0.3, 0.6],
                          help="lognormal variation strengths to sweep")
    varsweep.add_argument("--crossbar-rows", type=int, default=16,
                          help="physical crossbar rows the lattice is "
                               "placed on")
    varsweep.add_argument("--crossbar-cols", type=int, default=16,
                          help="physical crossbar columns")
    varsweep.add_argument("--trials", type=int, default=500,
                          help="Monte-Carlo trials per sigma")
    varsweep.add_argument("--seed", type=int, default=0,
                          help="campaign seed (bit-reproducible)")
    varsweep.add_argument("--nominal", type=float, default=1.0,
                          help="nominal crosspoint resistance")
    varsweep.add_argument("--batch-size", type=int, default=128,
                          help="trials per sharded worker batch")
    varsweep.add_argument("--processes", type=int, default=1,
                          help="worker processes (0 = auto)")
    varsweep.add_argument("--cache", default=".nanoxbar-campaigns.sqlite",
                          help="persistent campaign-store path")
    varsweep.add_argument("--no-cache", action="store_true",
                          help="skip campaign persistence")
    varsweep.add_argument("--profile", action="store_true",
                          help="print a span-tree timing breakdown "
                               "afterwards")
    varsweep.add_argument("--sample-profile", action="store_true",
                          help="sample the main thread's wall-clock "
                               "stacks and print a top-N self-time table "
                               "afterwards")
    varsweep.set_defaults(fn=_cmd_varsweep)

    grid = sub.add_parser(
        "grid",
        help="declarative experiment grids: plan claimable rows in a "
             "shared store and drain them with N workers")
    grid_sub = grid.add_subparsers(dest="grid_command", required=True)
    for name, help_text in (
            ("plan", "materialise the config's rows (idempotent)"),
            ("run", "plan, then drain the grid with worker processes"),
            ("status", "report row counts for the config's grid"),
            ("resume", "release stale claims, then drain what remains"),
            ("export", "dump every row (params, status, result) as JSON")):
        grid_cmd = grid_sub.add_parser(name, help=help_text)
        grid_cmd.add_argument("config",
                              help="grid config file (TOML or JSON)")
        grid_cmd.add_argument("--store", default=None,
                              help="shared store path (default: the "
                                   "config's, else "
                                   ".nanoxbar-campaigns.sqlite)")
        grid_cmd.add_argument("--json", action="store_true",
                              help="machine-readable output")
        if name in ("run", "resume"):
            grid_cmd.add_argument("--workers", type=int, default=0,
                                  help="worker processes (default: the "
                                       "config's; 1 = in-process)")
        if name == "export":
            grid_cmd.add_argument("-o", "--output", default=None,
                                  help="write JSON here instead of stdout")
        grid_cmd.set_defaults(fn=_cmd_grid)

    serve = sub.add_parser(
        "serve",
        help="start the async HTTP/JSON batch server fronting the "
             "engine, faultlab and varsim workload families")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address")
    serve.add_argument("--port", type=int, default=8351,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--cache", default=".nanoxbar-server.sqlite",
                       help="one SQLite file backing the synthesis cache "
                            "and the campaign store")
    serve.add_argument("--no-cache", action="store_true",
                       help="use ephemeral in-memory stores")
    serve.add_argument("--processes", type=int, default=1,
                       help="pool width each job shards over (0 = auto)")
    serve.add_argument("--job-workers", type=int, default=2,
                       help="how many jobs may compute concurrently")
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a job to a running nanoxbar server and print its "
             "per-point results")
    submit.add_argument("--host", default="127.0.0.1",
                        help="server address")
    submit.add_argument("--port", type=int, default=8351,
                        help="server port")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="per-request timeout in seconds")
    submit.add_argument("--wait-server", type=float, default=10.0,
                        help="seconds to wait for the server to come up "
                             "before the first request")
    submit.add_argument("--kind", default="synthesis",
                        choices=["synthesis", "faultsim", "varsweep"],
                        help="workload family to submit")
    submit.add_argument("--stream", action="store_true",
                        help="stream per-point records as they complete "
                             "(chunked endpoint) instead of waiting")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the server to stop after the results "
                             "arrive (smoke tests)")
    submit.add_argument("--benches", nargs="+", default=["xnor2"],
                        help="[synthesis] benchmark functions to "
                             "synthesize")
    submit.add_argument("--bench", default="xnor2",
                        help="[varsweep] benchmark function to sweep")
    submit.add_argument("--n", type=int, nargs="+", default=[8],
                        help="[faultsim] crossbar sizes N")
    submit.add_argument("--k", type=int, nargs="+", default=None,
                        help="[faultsim] clean-square thresholds")
    submit.add_argument("--densities", type=float, nargs="+",
                        default=[0.05],
                        help="[faultsim] defect densities")
    submit.add_argument("--sigmas", type=float, nargs="+",
                        default=[0.2, 0.5],
                        help="[varsweep] variation strengths")
    submit.add_argument("--crossbar-rows", type=int, default=8,
                        help="[varsweep] physical crossbar rows")
    submit.add_argument("--crossbar-cols", type=int, default=8,
                        help="[varsweep] physical crossbar columns")
    submit.add_argument("--trials", type=int, default=100,
                        help="[campaigns] Monte-Carlo trials per point")
    submit.add_argument("--seed", type=int, default=0,
                        help="[campaigns] campaign seed")
    submit.add_argument("--batch-size", type=int, default=50,
                        help="[campaigns] trials per sharded batch")
    submit.set_defaults(fn=_cmd_submit)

    lint = sub.add_parser(
        "lint",
        help="check the repo's determinism / concurrency / layering "
             "invariants with the AST lint engine (repro.analysis)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", default="human",
                      choices=["human", "json"],
                      help="output format")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print findings silenced by "
                           "'# nanoxbar: allow[...]' pragmas")
    lint.add_argument("--rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--self-test", action="store_true",
                      help="lint every rule's embedded fire/no-fire "
                           "fixtures and exit non-zero on drift")
    lint.set_defaults(fn=_cmd_lint)

    stats = sub.add_parser(
        "stats",
        help="fetch and pretty-print a running server's queue, engine "
             "and telemetry snapshot")
    stats.add_argument("--host", default="127.0.0.1",
                       help="server address")
    stats.add_argument("--port", type=int, default=8351,
                       help="server port")
    stats.add_argument("--timeout", type=float, default=30.0,
                       help="request timeout in seconds")
    stats.add_argument("--json", action="store_true",
                       help="print the raw /api/stats JSON instead")
    stats.set_defaults(fn=_cmd_stats)

    top = sub.add_parser(
        "top",
        help="live refreshing terminal view of the metrics timeline "
             "(a running server's, or this process's with --local)")
    top.add_argument("--host", default="127.0.0.1",
                     help="server address")
    top.add_argument("--port", type=int, default=8351,
                     help="server port")
    top.add_argument("--timeout", type=float, default=30.0,
                     help="request timeout in seconds")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period in seconds")
    top.add_argument("--rows", type=int, default=12,
                     help="series shown per table")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (no screen clearing)")
    top.add_argument("--local", action="store_true",
                     help="read this process's recorder instead of a "
                          "server (ticks it on demand)")
    top.set_defaults(fn=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_json or os.environ.get("NANOXBAR_LOG"):
        from ..obs import configure_logging
        configure_logging(json_mode=True if args.log_json else None)
    if getattr(args, "sample_profile", False):
        # Sampling profiler around the whole command, main thread only:
        # the serial compute path runs here, and pool children are
        # separate processes the sampler cannot see anyway.
        import threading

        from ..obs import StackSampler
        sampler = StackSampler(thread_ids={threading.get_ident()})
        with sampler:
            if getattr(args, "profile", False):
                from ..obs import profiled
                with profiled(f"cli.{args.command}") as prof:
                    code = args.fn(args)
                print()
                print(prof.render())
            else:
                code = args.fn(args)
        print()
        print(sampler.report().render_top())
        return code
    if getattr(args, "profile", False):
        from ..obs import profiled
        with profiled(f"cli.{args.command}") as prof:
            code = args.fn(args)
        print()
        print(prof.render())
        return code
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. `nanoxbar top |
        # head`); exit quietly instead of tracebacking mid-print.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
