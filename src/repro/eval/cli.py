"""Command-line interface: run paper experiments from the shell.

::

    nanoxbar list                 # enumerate experiments
    nanoxbar run fig5             # one experiment (full sweep)
    nanoxbar run fig5 --fast      # reduced sweep
    nanoxbar all --fast           # everything
    nanoxbar bench xnor2          # inspect one benchmark function
"""

from __future__ import annotations

import argparse
import sys

from .benchsuite import by_name, standard_suite
from .experiments import all_experiments, get_experiment


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment in all_experiments():
        print(f"{experiment.experiment_id:12s} {experiment.title}  "
              f"[{experiment.paper_ref}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment)
    result = experiment.run(args.fast)
    print(result.render())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for experiment in all_experiments():
        result = experiment.run(args.fast)
        print(result.render())
        print()
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from ..boolean import BooleanFunction
    from ..synthesis import (
        optimize_lattice,
        synthesize_diode,
        synthesize_fet,
        synthesize_lattice_dual,
        synthesize_lattice_optimal,
    )

    f = BooleanFunction.from_expression(args.expression)
    print(f"f = {f.to_expression()}   (n = {f.n})")
    style = args.style
    if style in ("diode", "all"):
        diode = synthesize_diode(f.on)
        print(f"\ndiode array {diode.num_rows} x {diode.num_cols}:")
        print(diode.render(f.names))
    if style in ("fet", "all"):
        fet = synthesize_fet(f.on)
        print(f"\nFET array {fet.num_rows} x {fet.num_cols}:")
        print(fet.render(f.names))
    if style in ("lattice", "all"):
        lattice = synthesize_lattice_dual(f.on)
        folded = optimize_lattice(lattice, f.on).lattice
        print(f"\nlattice {lattice.rows} x {lattice.cols} "
              f"(folded: {folded.rows} x {folded.cols}):")
        print(folded.render(f.names))
    if style == "optimal":
        result = synthesize_lattice_optimal(f.on)
        print(f"\noptimal lattice {result.shape[0]} x {result.shape[1]} "
              f"(proved: {result.proved_optimal}):")
        print(result.lattice.render(f.names))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.name is None:
        for benchmark in standard_suite():
            tags = ",".join(sorted(benchmark.tags))
            print(f"{benchmark.name:14s} n={benchmark.n}  [{tags}]  "
                  f"{benchmark.description}")
        return 0
    benchmark = by_name(args.name)
    f = benchmark.function
    print(f"{benchmark.name}: {benchmark.description}")
    print(f"  n = {f.n}, |on| = {f.on.count_ones()}")
    print(f"  minimized SOP: {f.to_expression()}")
    metrics = f.sop_metrics()
    print(f"  products = {metrics['products']}, "
          f"dual products = {metrics['dual_products']}, "
          f"distinct literals = {metrics['distinct_literals']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nanoxbar",
        description="Nano-crossbar synthesis & fault tolerance experiments "
                    "(Altun, Ciriani, Tahoori — DATE 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (see `list`)")
    run.add_argument("--fast", action="store_true", help="reduced sweep")
    run.set_defaults(fn=_cmd_run)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--fast", action="store_true", help="reduced sweeps")
    everything.set_defaults(fn=_cmd_all)

    bench = sub.add_parser("bench", help="inspect benchmark functions")
    bench.add_argument("name", nargs="?", default=None)
    bench.set_defaults(fn=_cmd_bench)

    synth = sub.add_parser("synth", help="synthesize an expression")
    synth.add_argument("expression", help="e.g. \"x1 x2 + x1' x2'\"")
    synth.add_argument("--style", default="all",
                       choices=["all", "diode", "fet", "lattice", "optimal"])
    synth.set_defaults(fn=_cmd_synth)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
