"""Evaluation harness: benchmark suite, experiment registry, table output."""

from .benchsuite import Benchmark, by_name, standard_suite, suite
from .experiments import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
)
from .tables import format_markdown, format_table

__all__ = [
    "Benchmark",
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "by_name",
    "format_markdown",
    "format_table",
    "get_experiment",
    "standard_suite",
    "suite",
]
