"""Plain-text table rendering for experiment output.

Benchmarks print paper-style tables; these helpers keep the formatting in
one place (aligned columns, optional float precision, markdown export).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _format_value(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    if isinstance(value, tuple):
        return "x".join(str(v) for v in value)
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None,
                 precision: int = 3) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_value(row.get(col, ""), precision) for col in columns]
             for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown(rows: Sequence[Mapping[str, Any]],
                    columns: Sequence[str] | None = None,
                    precision: int = 3) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(c, ""), precision)
                              for c in columns) + " |"
        )
    return "\n".join(lines)
