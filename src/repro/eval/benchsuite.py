"""The benchmark suite driving every experiment table.

The lattice-synthesis papers ([2],[5],[6],[9]) evaluate on MCNC/espresso
PLAs.  Those files are not redistributable here, so the suite consists of
*programmatically defined* functions spanning the same regimes:

* symmetric functions (parities, majorities, interval/threshold functions —
  the rd53/9sym family is symmetric, so these exercise identical structure);
* arithmetic slices (full-adder sum/carry, comparator bits, multiplexers);
* the worked examples of the paper itself (Fig. 4 function, XNOR);
* D-reducible functions (on-sets confined to affine subspaces);
* a few fixed PLA covers embedded as text.

Every entry records tags so experiments can select suitable subsets
(e.g. only D-reducible functions for the Section III-B.2 table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

from ..boolean.function import BooleanFunction
from ..boolean.truthtable import TruthTable


@dataclass(frozen=True)
class Benchmark:
    """A named benchmark function with selection tags."""

    name: str
    function: BooleanFunction
    description: str
    tags: frozenset[str] = field(default_factory=frozenset)

    @property
    def n(self) -> int:
        return self.function.n


def _symmetric(n: int, levels: Iterable[int]) -> TruthTable:
    """Symmetric function: 1 when popcount(x) is in ``levels``."""
    level_set = set(levels)
    return TruthTable.from_callable(n, lambda m: bin(m).count("1") in level_set)


def _parity(n: int) -> TruthTable:
    return TruthTable.from_callable(n, lambda m: bin(m).count("1") % 2 == 1)


def _majority(n: int) -> TruthTable:
    return TruthTable.from_callable(n, lambda m: bin(m).count("1") > n // 2)


def _threshold(n: int, k: int) -> TruthTable:
    return TruthTable.from_callable(n, lambda m: bin(m).count("1") >= k)


def _mux(select_bits: int) -> TruthTable:
    """2^s-to-1 multiplexer: selects occupy the low bits, data follow."""
    data = 1 << select_bits
    n = select_bits + data

    def value(m: int) -> bool:
        sel = m & ((1 << select_bits) - 1)
        return bool((m >> (select_bits + sel)) & 1)

    return TruthTable.from_callable(n, value)


def _full_adder_sum() -> TruthTable:
    return TruthTable.from_callable(3, lambda m: bin(m).count("1") % 2 == 1)


def _full_adder_carry() -> TruthTable:
    return TruthTable.from_callable(3, lambda m: bin(m).count("1") >= 2)


def _equality(width: int) -> TruthTable:
    n = 2 * width

    def value(m: int) -> bool:
        a = m & ((1 << width) - 1)
        b = m >> width
        return a == b

    return TruthTable.from_callable(n, value)


def _greater_than(width: int) -> TruthTable:
    n = 2 * width

    def value(m: int) -> bool:
        a = m & ((1 << width) - 1)
        b = m >> width
        return a > b

    return TruthTable.from_callable(n, value)


def _one_hot(n: int) -> TruthTable:
    return TruthTable.from_callable(n, lambda m: bin(m).count("1") == 1)


def _dreducible_parity_slice(n: int) -> TruthTable:
    """A D-reducible function: a product confined to the even-parity space."""

    def value(m: int) -> bool:
        if bin(m).count("1") % 2 != 0:
            return False
        return bool(m & 1) or bool((m >> 1) & 1)

    return TruthTable.from_callable(n, value)


def _dreducible_affine_cube(n: int) -> TruthTable:
    """On-set inside the affine space x0 ^ x1 = 1, x2 = 1."""

    def value(m: int) -> bool:
        if ((m & 1) ^ ((m >> 1) & 1)) != 1 or not ((m >> 2) & 1):
            return False
        return bin(m >> 3).count("1") % 2 == 0

    return TruthTable.from_callable(n, value)


def _dreducible_or_slice(n: int) -> TruthTable:
    """OR of the free variables inside x0 = 1, x1 ^ x2 = 1.

    Small-support constraints: the regime where [6] reports wins, because
    chi_A is cheap while the projection loses the dropped dimensions.
    """

    def value(m: int) -> bool:
        if not (m & 1) or (((m >> 1) & 1) ^ ((m >> 2) & 1)) != 1:
            return False
        return (m >> 3) != 0

    return TruthTable.from_callable(n, value)


def _dreducible_neq_slice(n: int) -> TruthTable:
    """'Free variables not all equal' inside x0 = 1, x1 ^ x2 = 1."""

    def value(m: int) -> bool:
        if not (m & 1) or (((m >> 1) & 1) ^ ((m >> 2) & 1)) != 1:
            return False
        free = m >> 3
        return free not in (0, (1 << (n - 3)) - 1)

    return TruthTable.from_callable(n, value)


_FIG4_EXPR = "x1 x2 x3 + x1 x2 x5 x6 + x2 x3 x4 x5 + x4 x5 x6"

#: An embedded PLA cover (an espresso-style benchmark shape: two outputs
#: sharing inputs; output 0 is used as the single-output benchmark).
_PLA_MISC = """\
.i 5
.o 1
.p 7
11--- 1
--11- 1
1--01 1
0-1-1 1
-0-11 1
010-0 1
00--1 1
.e
"""


@lru_cache(maxsize=1)
def standard_suite() -> tuple[Benchmark, ...]:
    """The default benchmark collection (deterministic order)."""
    entries: list[Benchmark] = []

    def add(name: str, table: TruthTable, description: str, *tags: str) -> None:
        entries.append(Benchmark(
            name=name,
            function=BooleanFunction.from_truth_table(table, label=name),
            description=description,
            tags=frozenset(tags),
        ))

    # Paper worked examples -------------------------------------------------
    entries.append(Benchmark(
        "xnor2", BooleanFunction.from_expression("x1 x2 + x1' x2'", label="xnor2"),
        "Section III worked example f = x1x2 + x1'x2'", frozenset({"paper", "small"}),
    ))
    entries.append(Benchmark(
        "fig4", BooleanFunction.from_expression(_FIG4_EXPR, label="fig4"),
        "Fig. 4 lattice example", frozenset({"paper"}),
    ))

    # Symmetric family (rd53/9sym regime) -----------------------------------
    add("xor3", _parity(3), "3-input parity", "symmetric", "self-dual", "small")
    add("xor4", _parity(4), "4-input parity", "symmetric")
    add("xor5", _parity(5), "5-input parity (rd53 output 0)", "symmetric")
    add("maj3", _majority(3), "3-input majority", "symmetric", "self-dual", "small")
    add("maj5", _majority(5), "5-input majority", "symmetric", "self-dual")
    add("thr4_2", _threshold(4, 2), "at least 2 of 4", "symmetric")
    add("sym5_23", _symmetric(5, [2, 3]), "exactly 2-3 of 5 (rd53-style interval)",
        "symmetric")
    add("sym6_2", _symmetric(6, [2]), "exactly 2 of 6", "symmetric")
    add("onehot4", _one_hot(4), "1-hot detector over 4 inputs", "symmetric")

    # Arithmetic slices ------------------------------------------------------
    add("fa_sum", _full_adder_sum(), "full-adder sum bit", "arithmetic", "small")
    add("fa_carry", _full_adder_carry(), "full-adder carry bit",
        "arithmetic", "self-dual", "small")
    add("mux2", _mux(1), "2:1 multiplexer", "arithmetic", "small")
    add("mux4", _mux(2), "4:1 multiplexer", "arithmetic")
    add("eq2", _equality(2), "2-bit equality", "arithmetic")
    add("gt2", _greater_than(2), "2-bit greater-than", "arithmetic")
    add("eq3", _equality(3), "3-bit equality", "arithmetic", "large")

    # D-reducible family -----------------------------------------------------
    add("dred4", _dreducible_parity_slice(4),
        "even-parity-space slice, 4 vars", "d-reducible")
    add("dred5", _dreducible_parity_slice(5),
        "even-parity-space slice, 5 vars", "d-reducible")
    add("dred_affine5", _dreducible_affine_cube(5),
        "affine-space-confined function, 5 vars", "d-reducible")
    add("dred_affine6", _dreducible_affine_cube(6),
        "affine-space-confined function, 6 vars", "d-reducible", "large")
    add("dred_or5", _dreducible_or_slice(5),
        "OR slice in a small-support affine space, 5 vars", "d-reducible")
    add("dred_or6", _dreducible_or_slice(6),
        "OR slice in a small-support affine space, 6 vars",
        "d-reducible", "large")
    add("dred_neq5", _dreducible_neq_slice(5),
        "not-all-equal slice in a small-support affine space, 5 vars",
        "d-reducible")

    # Embedded PLA -----------------------------------------------------------
    entries.append(Benchmark(
        "pla5", BooleanFunction.from_pla_text(_PLA_MISC, label="pla5"),
        "embedded 5-input PLA cover", frozenset({"pla"}),
    ))
    return tuple(entries)


def suite(tags: Sequence[str] | None = None,
          exclude: Sequence[str] | None = None,
          max_vars: int | None = None) -> list[Benchmark]:
    """Select benchmarks by tags and size."""
    selected = list(standard_suite())
    if tags:
        wanted = set(tags)
        selected = [b for b in selected if b.tags & wanted]
    if exclude:
        banned = set(exclude)
        selected = [b for b in selected if not (b.tags & banned)]
    if max_vars is not None:
        selected = [b for b in selected if b.n <= max_vars]
    return selected


def by_name(name: str) -> Benchmark:
    """Look one benchmark up by name."""
    for benchmark in standard_suite():
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"no benchmark named {name!r}")
