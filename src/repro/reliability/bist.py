"""Built-In Self-Test configurations (Section IV-A).

The paper's BIST achieves **exhaustive coverage of all logic-level faults**
(stuck-at, bridging, open, functional) by programming *single-term
functions* into the crossbar during test mode: every row carries one
product term, so every sensitised fault propagates to an observable row
output.  The configuration count is **constant** (five patterns) and the
vector count is **linear** in the number of columns — versus the naive
per-crosspoint approach that needs ``R*C`` configurations.

The five patterns and what they catch (wired-AND read-out):

=============  ===================================================
``all-on``     crosspoint stuck-opens, line stuck-at faults
``all-off``    crosspoint stuck-closeds
``even-cols``  column bridges (c, c+1) with even c
``odd-cols``   column bridges with odd c
``diagonal``   adjacent row bridges (distinct single-literal terms)
=============  ===================================================

Vectors per configuration: the all-ones vector, the all-zeros vector and a
walking-zero / walking-one sweep — ``O(C)`` total.  Coverage is *verified*,
not assumed: :func:`verify_full_coverage` fault-simulates the entire
single-fault universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .faults import (
    CrossbarFabric,
    Fault,
    TestConfiguration,
    all_single_faults,
    undetected_faults,
)


def _walking_zero_vectors(cols: int) -> list[tuple[bool, ...]]:
    return [
        tuple(c != z for c in range(cols)) for z in range(cols)
    ]


def _walking_one_vectors(cols: int) -> list[tuple[bool, ...]]:
    return [
        tuple(c == o for c in range(cols)) for o in range(cols)
    ]


def _base_vectors(cols: int) -> list[tuple[bool, ...]]:
    vectors = [tuple([True] * cols), tuple([False] * cols)]
    vectors.extend(_walking_zero_vectors(cols))
    return vectors


def _parity_alternation_vectors(cols: int) -> list[tuple[bool, ...]]:
    even_on = tuple(c % 2 == 0 for c in range(cols))
    odd_on = tuple(c % 2 == 1 for c in range(cols))
    return [even_on, odd_on]


def bist_configurations(rows: int, cols: int) -> list[TestConfiguration]:
    """The five-pattern BIST suite for an ``rows x cols`` fabric."""
    full_on = tuple(tuple([True] * cols) for _ in range(rows))
    full_off = tuple(tuple([False] * cols) for _ in range(rows))
    even_cols = tuple(tuple(c % 2 == 0 for c in range(cols)) for _ in range(rows))
    odd_cols = tuple(tuple(c % 2 == 1 for c in range(cols)) for _ in range(rows))
    diagonal = tuple(
        tuple(c == (r % cols) for c in range(cols)) for r in range(rows)
    )
    base = _base_vectors(cols)
    parity = _parity_alternation_vectors(cols)
    walking_one = _walking_one_vectors(cols)
    return [
        TestConfiguration("all-on", full_on, tuple(base)),
        TestConfiguration("all-off", full_off, tuple(base)),
        TestConfiguration("even-cols", even_cols, tuple(base + parity)),
        TestConfiguration("odd-cols", odd_cols, tuple(base + parity)),
        TestConfiguration("diagonal", diagonal, tuple(base + walking_one)),
    ]


@dataclass(frozen=True)
class BistReport:
    """Cost/coverage summary of a BIST suite (one experiment row)."""

    rows: int
    cols: int
    num_configurations: int
    num_vectors: int
    num_faults: int
    num_detected: int
    escapes: tuple[Fault, ...]

    @property
    def coverage(self) -> float:
        if self.num_faults == 0:
            return 1.0
        return self.num_detected / self.num_faults

    @property
    def naive_configurations(self) -> int:
        """Per-crosspoint testing baseline: one configuration each."""
        return self.rows * self.cols


def run_bist(rows: int, cols: int,
             include_bridges: bool = True) -> BistReport:
    """Build the suite and exhaustively fault-simulate it."""
    fabric = CrossbarFabric(rows, cols)
    configurations = bist_configurations(rows, cols)
    universe = all_single_faults(rows, cols, include_bridges=include_bridges)
    escapes = undetected_faults(fabric, configurations, universe)
    return BistReport(
        rows=rows,
        cols=cols,
        num_configurations=len(configurations),
        num_vectors=sum(c.num_vectors for c in configurations),
        num_faults=len(universe),
        num_detected=len(universe) - len(escapes),
        escapes=tuple(escapes),
    )


def verify_full_coverage(rows: int, cols: int) -> bool:
    """True when the suite detects the entire single-fault universe."""
    return not run_bist(rows, cols).escapes


# ----------------------------------------------------------------------
# Application-dependent BIST (used by BISM)
# ----------------------------------------------------------------------
def application_test_vectors(program: tuple[tuple[bool, ...], ...]) -> list[tuple[bool, ...]]:
    """Vectors that fully exercise one application configuration.

    For the wired-AND row read-out it suffices to apply the all-ones vector
    (catches stuck-opens on programmed crosspoints) and, per column, the
    walking-zero vector (catches stuck-closeds on unprogrammed crosspoints
    of rows whose programmed columns are all 1).
    """
    cols = len(program[0])
    return _base_vectors(cols)


def application_bist_passes(fabric: CrossbarFabric,
                            program: tuple[tuple[bool, ...], ...],
                            defect_map,
                            observed_rows: Sequence[int] | None = None,
                            driven_cols: Sequence[int] | None = None) -> bool:
    """Application-dependent BIST: golden vs defective responses.

    This is the pass/fail primitive the BISM strategies invoke; it costs
    one test session.  When the application uses only part of the fabric,
    ``observed_rows`` restricts the compared outputs and ``driven_cols``
    restricts the exercised inputs — unused columns are held at logic 1
    (the wired-AND identity), so defects confined to unused lines cannot
    fail the test, matching what a real self-mapping controller sees.
    """
    rows = list(observed_rows) if observed_rows is not None else list(range(fabric.rows))
    cols = list(driven_cols) if driven_cols is not None else list(range(fabric.cols))
    base_vectors = _base_vectors(len(cols))
    for local_vector in base_vectors:
        vector = [True] * fabric.cols
        for value, c in zip(local_vector, cols):
            vector[c] = value
        golden = fabric.evaluate(program, vector)
        actual = fabric.evaluate(program, vector, defect_map=defect_map)
        if any(golden[r] != actual[r] for r in rows):
            return False
    return True
