"""Logic-level fault models and the fault simulator (Section IV-A).

The BIST/BISD flows operate on a *reconfigurable crossbar fabric*: ``R`` row
(output) wires crossing ``C`` column (input) wires, each crosspoint holding
a programmable switch.  A configuration programs a subset of crosspoints;
in the diode-logic read-out used here, each row output is the wired-AND of
the inputs on its programmed columns (one product term per row — the
"single-term functions" of the paper's test method), all rows observable.

Fault universe (the paper's stuck-at, bridging, open and functional
classes):

* ``CrosspointStuckOpen`` / ``CrosspointStuckClosed`` — functional switch
  faults (the same physical classes the BISM defect maps use);
* ``LineStuckAt`` — an input column or output row stuck at 0/1 (line opens
  behave as stuck lines at this abstraction and are folded in);
* ``BridgeFault`` — two *adjacent* columns or rows shorted, wired-AND
  semantics (the dominant coupling model for nanowire bundles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .defects import CrosspointState, DefectMap


# ----------------------------------------------------------------------
# Fault taxonomy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fault:
    """Base class; concrete faults below."""


@dataclass(frozen=True)
class CrosspointStuckOpen(Fault):
    row: int
    col: int


@dataclass(frozen=True)
class CrosspointStuckClosed(Fault):
    row: int
    col: int


@dataclass(frozen=True)
class LineStuckAt(Fault):
    line: str  # "row" or "col"
    index: int
    value: bool


@dataclass(frozen=True)
class BridgeFault(Fault):
    line: str  # "row" or "col": bridges (index, index+1)
    index: int


def all_single_faults(rows: int, cols: int,
                      include_bridges: bool = True) -> list[Fault]:
    """Enumerate the complete single-fault universe of a fabric."""
    faults: list[Fault] = []
    for r in range(rows):
        for c in range(cols):
            faults.append(CrosspointStuckOpen(r, c))
            faults.append(CrosspointStuckClosed(r, c))
    for r in range(rows):
        faults.append(LineStuckAt("row", r, False))
        faults.append(LineStuckAt("row", r, True))
    for c in range(cols):
        faults.append(LineStuckAt("col", c, False))
        faults.append(LineStuckAt("col", c, True))
    if include_bridges:
        for c in range(cols - 1):
            faults.append(BridgeFault("col", c))
        for r in range(rows - 1):
            faults.append(BridgeFault("row", r))
    return faults


# ----------------------------------------------------------------------
# The reconfigurable fabric
# ----------------------------------------------------------------------
class CrossbarFabric:
    """An R x C reconfigurable crossbar with wired-AND row read-out."""

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("fabric dimensions must be positive")
        self.rows = rows
        self.cols = cols

    def check_configuration(self, program: Sequence[Sequence[bool]]) -> None:
        if len(program) != self.rows or any(len(r) != self.cols for r in program):
            raise ValueError(
                f"configuration must be {self.rows}x{self.cols}"
            )

    # ------------------------------------------------------------------
    def evaluate(self, program: Sequence[Sequence[bool]], vector: Sequence[bool],
                 fault: Fault | None = None,
                 defect_map: DefectMap | None = None) -> list[bool]:
        """Row outputs for one input vector, optionally faulty/defective.

        ``fault`` injects one modelled fault; ``defect_map`` overlays
        fabrication defects (both may be given).
        """
        self.check_configuration(program)
        if len(vector) != self.cols:
            raise ValueError(f"vector must have {self.cols} entries")
        inputs = [bool(v) for v in vector]
        # Column-line faults act on the input values seen by all rows.
        if isinstance(fault, LineStuckAt) and fault.line == "col":
            inputs[fault.index] = fault.value
        if isinstance(fault, BridgeFault) and fault.line == "col":
            shorted = inputs[fault.index] and inputs[fault.index + 1]
            inputs[fault.index] = shorted
            inputs[fault.index + 1] = shorted

        def effective(r: int, c: int) -> bool:
            programmed = bool(program[r][c])
            if defect_map is not None:
                state = defect_map.state(r, c)
                if state is CrosspointState.STUCK_OPEN:
                    programmed = False
                elif state is CrosspointState.STUCK_CLOSED:
                    programmed = True
            if isinstance(fault, CrosspointStuckOpen) and (fault.row, fault.col) == (r, c):
                programmed = False
            if isinstance(fault, CrosspointStuckClosed) and (fault.row, fault.col) == (r, c):
                programmed = True
            return programmed

        outputs = []
        for r in range(self.rows):
            value = all(
                inputs[c] for c in range(self.cols) if effective(r, c)
            )
            outputs.append(value)
        # Row-line faults act on the observed outputs.
        if isinstance(fault, LineStuckAt) and fault.line == "row":
            outputs[fault.index] = fault.value
        if isinstance(fault, BridgeFault) and fault.line == "row":
            shorted = outputs[fault.index] and outputs[fault.index + 1]
            outputs[fault.index] = shorted
            outputs[fault.index + 1] = shorted
        return outputs

    # ------------------------------------------------------------------
    def detects(self, program: Sequence[Sequence[bool]],
                vector: Sequence[bool], fault: Fault) -> bool:
        """True when the vector's faulty response differs from golden."""
        golden = self.evaluate(program, vector)
        faulty = self.evaluate(program, vector, fault=fault)
        return golden != faulty

    def detected_by_suite(self, configurations: Sequence["TestConfiguration"],
                          fault: Fault) -> bool:
        """True when any configuration/vector pair detects the fault."""
        return any(
            self.detects(config.program, vector, fault)
            for config in configurations
            for vector in config.vectors
        )


@dataclass(frozen=True)
class TestConfiguration:
    """A programmed configuration plus its test vector set."""

    name: str
    program: tuple[tuple[bool, ...], ...]
    vectors: tuple[tuple[bool, ...], ...]

    @property
    def num_vectors(self) -> int:
        return len(self.vectors)


def fault_equivalence_note(fault: Fault, fabric: CrossbarFabric) -> str | None:
    """Explain structurally undetectable faults (equivalence classes).

    A row bridge on a 1-column fabric, for example, can be behaviourally
    equivalent to the fault-free fabric under every configuration.
    """
    if isinstance(fault, BridgeFault) and fault.line == "row" and fabric.cols == 1:
        return "row bridge with a single input column is behaviourally dormant"
    return None


def undetected_faults(fabric: CrossbarFabric,
                      configurations: Sequence[TestConfiguration],
                      faults: Sequence[Fault] | None = None) -> list[Fault]:
    """Exhaustively fault-simulate a suite and list the escapes."""
    universe = list(faults) if faults is not None else all_single_faults(
        fabric.rows, fabric.cols
    )
    return [
        fault for fault in universe
        if not fabric.detected_by_suite(configurations, fault)
    ]


def coverage(fabric: CrossbarFabric,
             configurations: Sequence[TestConfiguration],
             faults: Sequence[Fault] | None = None) -> float:
    """Fault coverage of a configuration suite over the fault universe."""
    universe = list(faults) if faults is not None else all_single_faults(
        fabric.rows, fabric.cols
    )
    if not universe:
        return 1.0
    escapes = undetected_faults(fabric, configurations, universe)
    return 1.0 - len(escapes) / len(universe)
