"""Defect-aware mapping of switching lattices onto defective fabrics.

BISM (:mod:`repro.reliability.bism`) places *two-terminal* programs.  The
four-terminal story is richer because lattice sites are reprogrammable
literal holders with a useful asymmetry:

* a **stuck-OPEN** site can still host any site whose literal may be 0 —
  in fact it exactly realises the constant-0 padding site;
* a **stuck-CLOSED** site exactly realises the constant-1 padding site
  (the OR/AND separators of the composition algebra!), and can also host
  nothing else;
* an OK site hosts anything.

So a mapping of a target lattice onto a defective site fabric is valid iff
every stuck-CLOSED fabric site receives a constant-1 target site and every
stuck-OPEN fabric site receives a constant-0 (or the target is smaller and
the unused fabric border is... unused sites must be left non-conducting,
which stuck-CLOSED sites violate when adjacent — handled by requiring
unused columns to be separated; here we require unused sites to be
stuck-open or OK).

The mapper searches row/column permutations of the fabric (placement of
the target grid plus selection of spare lines), blind-BISM style, counting
trials.  :func:`exploit_defects` additionally *re-synthesises* the target:
because padding rows/columns of the algebra are all-1/all-0, a defective
fabric whose defects line up with padding costs nothing — the mapper tries
target variants with padding inserted at defect positions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice, Site
from .defects import CrosspointState, DefectMap


def site_compatible(state: CrosspointState, site: Site) -> bool:
    """Can a fabric site in ``state`` realise the target ``site``?"""
    if state is CrosspointState.OK:
        return True
    if state is CrosspointState.STUCK_CLOSED:
        return site is True
    return site is False  # STUCK_OPEN realises exactly the constant 0


def placement_valid(target: Lattice, defect_map: DefectMap,
                    row_map: tuple[int, ...], col_map: tuple[int, ...]) -> bool:
    """Check one placement against the operating model.

    Unused fabric *rows* are disconnected by the line-addressing scheme
    (the same assumption BISM makes), but within the selected rows every
    column is physically present.  Validity therefore requires:

    * every target site lands on a compatible fabric site, and
    * every fabric site on a selected row but an unused column is not
      stuck-closed (a permanently conducting stray site could bridge two
      used columns laterally and create new paths).
    """
    used_cols = set(col_map)
    for i, fabric_row in enumerate(row_map):
        for j, fabric_col in enumerate(col_map):
            if not site_compatible(defect_map.state(fabric_row, fabric_col),
                                   target.site(i, j)):
                return False
    for fabric_row in row_map:
        for c in range(defect_map.cols):
            if c in used_cols:
                continue
            if defect_map.state(fabric_row, c) is CrosspointState.STUCK_CLOSED:
                return False
    return True


@dataclass
class LatticeMappingResult:
    """Outcome of the defect-aware lattice mapping search."""

    success: bool
    row_map: tuple[int, ...] | None
    col_map: tuple[int, ...] | None
    trials: int
    exploited_defects: int = 0

    def mapped_sites(self, target: Lattice) -> list[tuple[int, int, Site]]:
        if not self.success:
            return []
        return [
            (self.row_map[i], self.col_map[j], target.site(i, j))
            for i in range(target.rows)
            for j in range(target.cols)
        ]


def map_lattice_random(target: Lattice, defect_map: DefectMap,
                       rng: random.Random,
                       max_trials: int = 500) -> LatticeMappingResult:
    """Blind random placement search (rows/cols drawn without replacement).

    Row order matters for lattices (paths cross rows in order), so row maps
    preserve relative order of the drawn physical rows; columns likewise.
    """
    if target.rows > defect_map.rows or target.cols > defect_map.cols:
        raise ValueError("target lattice larger than the fabric")
    for trial in range(1, max_trials + 1):
        row_map = tuple(sorted(rng.sample(range(defect_map.rows), target.rows)))
        col_map = tuple(sorted(rng.sample(range(defect_map.cols), target.cols)))
        if placement_valid(target, defect_map, row_map, col_map):
            exploited = sum(
                1 for i, r in enumerate(row_map)
                for j, c in enumerate(col_map)
                if defect_map.state(r, c) is not CrosspointState.OK
            )
            return LatticeMappingResult(True, row_map, col_map, trial,
                                        exploited)
    return LatticeMappingResult(False, None, None, max_trials)


def map_lattice_exhaustive(target: Lattice, defect_map: DefectMap,
                           max_placements: int = 200_000
                           ) -> LatticeMappingResult:
    """Exhaustive order-preserving placement search (small fabrics).

    Enumerates increasing row/column selections; complete, so a failure is
    a proof that no order-preserving placement exists.
    """
    from itertools import combinations

    if target.rows > defect_map.rows or target.cols > defect_map.cols:
        raise ValueError("target lattice larger than the fabric")
    trials = 0
    for row_map in combinations(range(defect_map.rows), target.rows):
        for col_map in combinations(range(defect_map.cols), target.cols):
            trials += 1
            if trials > max_placements:
                return LatticeMappingResult(False, None, None, trials - 1)
            if placement_valid(target, defect_map, row_map, col_map):
                exploited = sum(
                    1 for i, r in enumerate(row_map)
                    for j, c in enumerate(col_map)
                    if defect_map.state(r, c) is not CrosspointState.OK
                )
                return LatticeMappingResult(True, row_map, col_map, trials,
                                            exploited)
    return LatticeMappingResult(False, None, None, trials)


def verify_mapped_lattice(target: Lattice, table: TruthTable,
                          defect_map: DefectMap,
                          result: LatticeMappingResult) -> bool:
    """Operate the mapped lattice under the defect overlay and check it
    still computes the target function.

    Builds the fabric-sized lattice: target sites at their mapped
    positions, constant-0 everywhere else (unused OK/stuck-open sites are
    left unprogrammed), then applies the physical defect overrides.
    """
    if not result.success:
        return False
    sites: list[list[Site]] = [
        [False] * defect_map.cols for _ in range(defect_map.rows)
    ]
    for r, c, site in result.mapped_sites(target):
        sites[r][c] = site
    # current must enter at the target's first mapped row and leave at the
    # last: restrict the fabric to exactly the used rows (physical row
    # selection), keeping all columns (unused ones are dead).
    used = [sites[r] for r in result.row_map]
    fabric_lattice = Lattice(target.n, used)

    def override(i: int, c: int, nominal: bool) -> bool:
        state = defect_map.state(result.row_map[i], c)
        if state is CrosspointState.STUCK_CLOSED:
            return True
        if state is CrosspointState.STUCK_OPEN:
            return False
        return nominal

    for assignment in range(1 << target.n):
        value = fabric_lattice.evaluate(assignment, override)
        if value != table.evaluate(assignment):
            return False
    return True


def mapping_success_sweep(target: Lattice, n: int, densities: list[float],
                          trials: int, rng: random.Random,
                          fabric_size: int = 8) -> list[dict]:
    """Success rate and exploited-defect counts across densities."""
    rows = []
    for density in densities:
        from .defects import random_defect_map

        successes = 0
        exploited_total = 0
        attempts = []
        for _ in range(trials):
            defect_map = random_defect_map(fabric_size, fabric_size,
                                           density, rng)
            result = map_lattice_random(target, defect_map, rng,
                                        max_trials=200)
            if result.success:
                successes += 1
                exploited_total += result.exploited_defects
            attempts.append(result.trials)
        rows.append({
            "density": density,
            "success_rate": successes / trials,
            "avg_trials": sum(attempts) / trials,
            "avg_exploited_defects": exploited_total / max(1, successes),
        })
    return rows
