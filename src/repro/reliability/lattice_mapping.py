"""Defect-aware mapping of switching lattices onto defective fabrics.

BISM (:mod:`repro.reliability.bism`) places *two-terminal* programs.  The
four-terminal story is richer because lattice sites are reprogrammable
literal holders with a useful asymmetry:

* a **stuck-OPEN** site can still host any site whose literal may be 0 —
  in fact it exactly realises the constant-0 padding site;
* a **stuck-CLOSED** site exactly realises the constant-1 padding site
  (the OR/AND separators of the composition algebra!), and can also host
  nothing else;
* an OK site hosts anything.

So a mapping of a target lattice onto a defective site fabric is valid iff
every stuck-CLOSED fabric site receives a constant-1 target site and every
stuck-OPEN fabric site receives a constant-0 (or the target is smaller and
the unused fabric border is... unused sites must be left non-conducting,
which stuck-CLOSED sites violate when adjacent — handled by requiring
unused columns to be separated; here we require unused sites to be
stuck-open or OK).

The mapper searches row/column permutations of the fabric (placement of
the target grid plus selection of spare lines), blind-BISM style, counting
trials.  :func:`exploit_defects` additionally *re-synthesises* the target:
because padding rows/columns of the algebra are all-1/all-0, a defective
fabric whose defects line up with padding costs nothing — the mapper tries
target variants with padding inserted at defect positions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice, Site
from ..xbareval import (
    defect_map_states,
    lattice_site_codes,
    lattice_truthtable,
    placement_valid_grid,
)
from ..xbareval.placement import STUCK_CLOSED as _STUCK_CLOSED_CODE
from ..xbareval.placement import STUCK_OPEN as _STUCK_OPEN_CODE
from .defects import CrosspointState, DefectMap


def site_compatible(state: CrosspointState, site: Site) -> bool:
    """Can a fabric site in ``state`` realise the target ``site``?"""
    if state is CrosspointState.OK:
        return True
    if state is CrosspointState.STUCK_CLOSED:
        return site is True
    return site is False  # STUCK_OPEN realises exactly the constant 0


def placement_valid(target: Lattice, defect_map: DefectMap,
                    row_map: tuple[int, ...], col_map: tuple[int, ...]) -> bool:
    """Check one placement against the operating model (scalar reference).

    Unused fabric *rows* are disconnected by the line-addressing scheme
    (the same assumption BISM makes), but within the selected rows every
    column is physically present.  Validity therefore requires:

    * every target site lands on a compatible fabric site, and
    * every fabric site on a selected row but an unused column is not
      stuck-closed (a permanently conducting stray site could bridge two
      used columns laterally and create new paths).

    The mapping searches below route the same predicate through the
    batched kernels of :mod:`repro.xbareval.placement`; this scalar form
    is the bit-exact reference they are property-tested against.
    """
    used_cols = set(col_map)
    for i, fabric_row in enumerate(row_map):
        for j, fabric_col in enumerate(col_map):
            if not site_compatible(defect_map.state(fabric_row, fabric_col),
                                   target.site(i, j)):
                return False
    for fabric_row in row_map:
        for c in range(defect_map.cols):
            if c in used_cols:
                continue
            if defect_map.state(fabric_row, c) is CrosspointState.STUCK_CLOSED:
                return False
    return True


@dataclass
class LatticeMappingResult:
    """Outcome of the defect-aware lattice mapping search."""

    success: bool
    row_map: tuple[int, ...] | None
    col_map: tuple[int, ...] | None
    trials: int
    exploited_defects: int = 0

    def mapped_sites(self, target: Lattice) -> list[tuple[int, int, Site]]:
        if not self.success:
            return []
        return [
            (self.row_map[i], self.col_map[j], target.site(i, j))
            for i in range(target.rows)
            for j in range(target.cols)
        ]


def _exploited_defects(defect_map: DefectMap, row_map: tuple[int, ...],
                       col_map: tuple[int, ...]) -> int:
    return sum(
        1 for r in row_map for c in col_map
        if defect_map.state(r, c) is not CrosspointState.OK
    )


def map_lattice_random(target: Lattice, defect_map: DefectMap,
                       rng: random.Random,
                       max_trials: int = 500) -> LatticeMappingResult:
    """Blind random placement search (rows/cols drawn without replacement).

    Row order matters for lattices (paths cross rows in order), so row maps
    preserve relative order of the drawn physical rows; columns likewise.

    One-fabric-at-a-time search: each trial draws and checks a single
    placement with the scalar :func:`placement_valid` — at this batch
    size the early-exiting scalar predicate beats any kernel launch, and
    keeping the draw-check-stop loop preserves the historical ``rng``
    stream exactly.  The *ensemble-scale* counterpart, which maps
    thousands of fabrics per batched
    :func:`repro.xbareval.placement_valid_batch` call, is
    :func:`repro.faultlab.kernels.map_lattice_random_batch`.
    """
    if target.rows > defect_map.rows or target.cols > defect_map.cols:
        raise ValueError("target lattice larger than the fabric")
    for trial in range(1, max_trials + 1):
        row_map = tuple(sorted(rng.sample(range(defect_map.rows), target.rows)))
        col_map = tuple(sorted(rng.sample(range(defect_map.cols), target.cols)))
        if placement_valid(target, defect_map, row_map, col_map):
            return LatticeMappingResult(
                True, row_map, col_map, trial,
                _exploited_defects(defect_map, row_map, col_map))
    return LatticeMappingResult(False, None, None, max_trials)


def map_lattice_exhaustive(target: Lattice, defect_map: DefectMap,
                           max_placements: int = 200_000
                           ) -> LatticeMappingResult:
    """Exhaustive order-preserving placement search (small fabrics).

    Enumerates increasing row/column selections; complete, so a failure is
    a proof that no order-preserving placement exists.  All candidate
    placements (up to ``max_placements``, in the same lexicographic order
    as the historical scalar loop) are checked in chunked calls to
    :func:`repro.xbareval.placement_valid_grid`; the first valid one wins,
    so results — including the ``trials`` accounting — are unchanged.
    """
    from itertools import combinations, islice

    if target.rows > defect_map.rows or target.cols > defect_map.cols:
        raise ValueError("target lattice larger than the fabric")
    states = defect_map_states(defect_map)
    codes = lattice_site_codes(target)
    # Lazy placement stream: nothing beyond the current chunk is ever
    # materialised, so max_placements bounds work and memory even on
    # fabrics with astronomically many selections.
    placements = (
        (row, col)
        for row in combinations(range(defect_map.rows), target.rows)
        for col in combinations(range(defect_map.cols), target.cols)
    )
    trials = 0
    # Escalating chunks: an early success costs one small kernel call,
    # a full enumeration amortises into large batches.
    chunk_size = 64
    while trials < max_placements:
        chunk = list(islice(placements,
                            min(chunk_size, max_placements - trials)))
        chunk_size = min(chunk_size * 8, 8192)
        if not chunk:
            return LatticeMappingResult(False, None, None, trials)
        row_maps = np.array([row for row, _ in chunk], dtype=np.int64)
        col_maps = np.array([col for _, col in chunk], dtype=np.int64)
        valid = placement_valid_grid(states, codes, row_maps, col_maps)
        hits = np.flatnonzero(valid)
        if hits.size:
            first = int(hits[0])
            row_map, col_map = chunk[first]
            return LatticeMappingResult(
                True, row_map, col_map, trials + first + 1,
                _exploited_defects(defect_map, row_map, col_map))
        trials += len(chunk)
    return LatticeMappingResult(False, None, None, max_placements)


def verify_mapped_lattice(target: Lattice, table: TruthTable,
                          defect_map: DefectMap,
                          result: LatticeMappingResult) -> bool:
    """Operate the mapped lattice under the defect overlay and check it
    still computes the target function.

    Builds the fabric-sized lattice: target sites at their mapped
    positions, constant-0 everywhere else (unused OK/stuck-open sites are
    left unprogrammed), then applies the physical defect overrides.
    """
    if not result.success:
        return False
    sites: list[list[Site]] = [
        [False] * defect_map.cols for _ in range(defect_map.rows)
    ]
    for r, c, site in result.mapped_sites(target):
        sites[r][c] = site
    # current must enter at the target's first mapped row and leave at the
    # last: restrict the fabric to exactly the used rows (physical row
    # selection), keeping all columns (unused ones are dead).
    used = [sites[r] for r in result.row_map]
    fabric_lattice = Lattice(target.n, used)

    # The physical overlay is static per site, so the whole 2^n check is
    # one batched truth-table evaluation with stuck-closed sites forced ON
    # and stuck-open sites forced OFF.
    states = defect_map_states(defect_map)[list(result.row_map), :]
    operated = lattice_truthtable(
        fabric_lattice,
        force_on=states == _STUCK_CLOSED_CODE,
        force_off=states == _STUCK_OPEN_CODE,
    )
    return operated == table


def mapping_success_sweep(target: Lattice, n: int, densities: list[float],
                          trials: int, rng: random.Random,
                          fabric_size: int = 8) -> list[dict]:
    """Success rate and exploited-defect counts across densities."""
    rows = []
    for density in densities:
        from .defects import random_defect_map

        successes = 0
        exploited_total = 0
        attempts = []
        for _ in range(trials):
            defect_map = random_defect_map(fabric_size, fabric_size,
                                           density, rng)
            result = map_lattice_random(target, defect_map, rng,
                                        max_trials=200)
            if result.success:
                successes += 1
                exploited_total += result.exploited_defects
            attempts.append(result.trials)
        rows.append({
            "density": density,
            "success_rate": successes / trials,
            "avg_trials": sum(attempts) / trials,
            "avg_exploited_defects": exploited_total / max(1, successes),
        })
    return rows
