"""Built-In Self-Diagnosis with block codes (Section IV-A).

Diagnosis identifies *which* resource is faulty from the pass/fail
outcomes of a small set of configurations.  Each crosspoint gets the
binary codeword of its index; diagnosis configuration ``k`` programs
exactly the crosspoints whose codeword has bit ``k`` set.  With exhaustive
vectors per configuration:

* a stuck-open at index ``i`` fails configuration ``k`` iff bit ``k`` of
  ``i`` is 1 (the fault only matters where programmed) — the fail vector
  *is* the codeword;
* a stuck-closed at ``i`` fails configuration ``k`` iff bit ``k`` is 0 —
  the fail vector is the complemented codeword.

Two extra *type probes* disambiguate the cases (and catch codeword corner
cases such as a stuck-closed at an all-ones index, which passes every code
configuration): the all-on configuration fails only for stuck-open-class
faults, the all-off configuration only for stuck-closed-class faults.  So

    #configurations = ceil(log2(R*C)) + 2

— logarithmic in the number of resources, exactly the paper's claim.  The
pass/fail outcome space is a binary block code with the typing bits acting
as the code selector; :func:`diagnose` decodes it back to the faulty
crosspoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .bist import _base_vectors
from .faults import (
    CrossbarFabric,
    CrosspointStuckClosed,
    CrosspointStuckOpen,
    Fault,
    TestConfiguration,
)


def _codeword_bits(rows: int, cols: int) -> int:
    resources = rows * cols
    return max(1, math.ceil(math.log2(resources))) if resources > 1 else 1


def diagnosis_configurations(rows: int, cols: int) -> list[TestConfiguration]:
    """The two type probes plus one configuration per codeword bit."""
    bits = _codeword_bits(rows, cols)
    vectors = tuple(_base_vectors(cols))
    configs = [
        TestConfiguration(
            "open-probe",
            tuple(tuple([True] * cols) for _ in range(rows)),
            vectors,
        ),
        TestConfiguration(
            "closed-probe",
            tuple(tuple([False] * cols) for _ in range(rows)),
            vectors,
        ),
    ]
    for k in range(bits):
        program = tuple(
            tuple(bool(((r * cols + c) >> k) & 1) for c in range(cols))
            for r in range(rows)
        )
        configs.append(TestConfiguration(f"code-bit-{k}", program, vectors))
    return configs


def configuration_fails(fabric: CrossbarFabric, config: TestConfiguration,
                        fault: Fault) -> bool:
    """Pass/fail outcome of one configuration under a fault."""
    return any(
        fabric.detects(config.program, vector, fault)
        for vector in config.vectors
    )


def signature(fabric: CrossbarFabric, configs: list[TestConfiguration],
              fault: Fault) -> tuple[bool, ...]:
    """The pass/fail vector (True = fail) across the diagnosis suite."""
    return tuple(configuration_fails(fabric, config, fault) for config in configs)


@dataclass(frozen=True)
class Diagnosis:
    """Decoded diagnosis outcome."""

    fault_type: str  # "stuck_open", "stuck_closed" or "none"
    row: int | None
    col: int | None


def diagnose(rows: int, cols: int, observed: tuple[bool, ...]) -> Diagnosis:
    """Decode a pass/fail signature back to the faulty crosspoint.

    ``observed[0]``/``observed[1]`` are the open/closed type probes; the
    remaining bits spell the codeword (stuck-open) or its complement
    (stuck-closed).
    """
    bits = _codeword_bits(rows, cols)
    if len(observed) != bits + 2:
        raise ValueError(f"expected {bits + 2} outcomes, got {len(observed)}")
    open_probe, closed_probe, *code = observed
    if open_probe and closed_probe:
        raise ValueError("both type probes failed: not a single crosspoint fault")
    if open_probe:
        index = sum(1 << k for k, fail in enumerate(code) if fail)
        kind = "stuck_open"
    elif closed_probe:
        index = sum(1 << k for k, fail in enumerate(code) if not fail)
        kind = "stuck_closed"
    else:
        return Diagnosis("none", None, None)
    if index >= rows * cols:
        raise ValueError(f"decoded index {index} outside the fabric")
    return Diagnosis(kind, index // cols, index % cols)


def diagnose_fault(fabric: CrossbarFabric, fault: Fault) -> Diagnosis:
    """Run the full diagnosis flow against one injected fault."""
    configs = diagnosis_configurations(fabric.rows, fabric.cols)
    observed = signature(fabric, configs, fault)
    return diagnose(fabric.rows, fabric.cols, observed)


@dataclass(frozen=True)
class BisdReport:
    """Diagnosability summary (one experiment row)."""

    rows: int
    cols: int
    num_resources: int
    num_configurations: int
    theoretical_minimum: int
    num_correct: int
    num_faults: int

    @property
    def accuracy(self) -> float:
        return self.num_correct / self.num_faults if self.num_faults else 1.0


@dataclass(frozen=True)
class FaultDictionary:
    """Signature -> candidate-fault dictionary over a configuration suite.

    Extends diagnosis beyond crosspoint faults: *every* modelled fault
    (lines, bridges, crosspoints) is simulated against the suite and keyed
    by its pass/fail signature.  Faults sharing a signature form an
    *ambiguity group* — indistinguishable by this suite, the standard
    dictionary-based diagnosis notion.
    """

    rows: int
    cols: int
    num_configurations: int
    groups: dict[tuple[bool, ...], tuple[Fault, ...]]

    @property
    def num_faults(self) -> int:
        return sum(len(g) for g in self.groups.values())

    @property
    def num_signatures(self) -> int:
        return len(self.groups)

    @property
    def max_ambiguity(self) -> int:
        return max((len(g) for g in self.groups.values()), default=0)

    @property
    def avg_ambiguity(self) -> float:
        if not self.groups:
            return 0.0
        return self.num_faults / self.num_signatures

    def lookup(self, observed: tuple[bool, ...]) -> tuple[Fault, ...]:
        """Candidate faults for an observed signature (empty = unknown)."""
        return self.groups.get(observed, ())


def build_fault_dictionary(rows: int, cols: int,
                           include_bridges: bool = True,
                           extra_configurations: list[TestConfiguration] | None = None
                           ) -> FaultDictionary:
    """Simulate the full fault universe against diagnosis + BIST configs."""
    from .bist import bist_configurations
    from .faults import all_single_faults

    fabric = CrossbarFabric(rows, cols)
    configs = diagnosis_configurations(rows, cols)
    configs += [c for c in bist_configurations(rows, cols)
                if c.name not in {"all-on", "all-off"}]
    if extra_configurations:
        configs += list(extra_configurations)
    groups: dict[tuple[bool, ...], list[Fault]] = {}
    for fault in all_single_faults(rows, cols, include_bridges=include_bridges):
        observed = signature(fabric, configs, fault)
        groups.setdefault(observed, []).append(fault)
    return FaultDictionary(
        rows=rows,
        cols=cols,
        num_configurations=len(configs),
        groups={key: tuple(value) for key, value in groups.items()},
    )


def run_bisd(rows: int, cols: int) -> BisdReport:
    """Inject every single crosspoint fault and check unique diagnosis."""
    fabric = CrossbarFabric(rows, cols)
    configs = diagnosis_configurations(rows, cols)
    correct = 0
    total = 0
    for r in range(rows):
        for c in range(cols):
            for fault, kind in (
                (CrosspointStuckOpen(r, c), "stuck_open"),
                (CrosspointStuckClosed(r, c), "stuck_closed"),
            ):
                total += 1
                observed = signature(fabric, configs, fault)
                result = diagnose(rows, cols, observed)
                if result == Diagnosis(kind, r, c):
                    correct += 1
    return BisdReport(
        rows=rows,
        cols=cols,
        num_resources=rows * cols,
        num_configurations=len(configs),
        theoretical_minimum=_codeword_bits(rows, cols),
        num_correct=correct,
        num_faults=total,
    )
