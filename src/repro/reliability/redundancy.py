"""Permanent and transient fault tolerance via redundancy ([15]).

The paper's reliability work package spans *lifetime* faults, not only
fabrication defects ("fault tolerance to ensure the lifetime reliability
(for errors during normal operation)").  Reference [15] (Tunali & Altun,
TCAD'16) covers both permanent and transient faults for reconfigurable
nano-crossbars; this module implements the two classic mechanisms in
crossbar form:

* **spare-line repair** for permanent faults: an ``(r+s) x (c+s)`` array
  carries spare rows/columns; after diagnosis, defective lines are
  remapped onto spares (:class:`SparedCrossbar`);
* **triple modular redundancy (TMR)** for transient faults: three copies
  of a lattice vote through a majority element that is itself a switching
  lattice (``maj3`` is self-dual, so its lattice is a compact 2x3).
  :func:`tmr_reliability` Monte-Carlo-estimates output correctness under
  per-site transient upset rates, including voter upsets, exhibiting the
  classic TMR crossover (TMR wins at low upset rates, loses once multi-copy
  errors dominate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice
from .defects import DefectMap


# ----------------------------------------------------------------------
# Spare-line repair (permanent faults)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairResult:
    """Outcome of spare-line repair."""

    success: bool
    row_assignment: tuple[int, ...]  # logical row -> physical row
    col_assignment: tuple[int, ...]
    rows_replaced: int
    cols_replaced: int


def repair_with_spares(defect_map: DefectMap, logical_rows: int,
                       logical_cols: int) -> RepairResult:
    """Assign logical lines to physical lines, avoiding defective ones.

    A physical line is unusable when it carries *any* defect (universal
    usability, as in the defect-unaware flow).  Greedy first-fit: logical
    line i keeps physical line i when clean, otherwise takes the next
    clean spare.
    """
    if logical_rows > defect_map.rows or logical_cols > defect_map.cols:
        raise ValueError("logical array larger than the physical crossbar")
    bad_rows = defect_map.defective_rows()
    bad_cols = defect_map.defective_cols()
    clean_rows = [r for r in range(defect_map.rows) if r not in bad_rows]
    clean_cols = [c for c in range(defect_map.cols) if c not in bad_cols]
    if len(clean_rows) < logical_rows or len(clean_cols) < logical_cols:
        return RepairResult(False, (), (), 0, 0)
    row_assignment = tuple(clean_rows[:logical_rows])
    col_assignment = tuple(clean_cols[:logical_cols])
    rows_replaced = sum(1 for i, r in enumerate(row_assignment) if r != i)
    cols_replaced = sum(1 for j, c in enumerate(col_assignment) if c != j)
    return RepairResult(True, row_assignment, col_assignment,
                        rows_replaced, cols_replaced)


def spare_overhead_for_success(n: int, density: float, target: float,
                               rng: random.Random, trials: int = 200,
                               max_spares: int | None = None) -> int | None:
    """Smallest spare count s so repair of an n x n logical array inside an
    (n+s) x (n+s) physical array succeeds with probability >= target."""
    from .defects import random_defect_map

    limit = max_spares if max_spares is not None else 3 * n
    for s in range(limit + 1):
        successes = 0
        for _ in range(trials):
            defect_map = random_defect_map(n + s, n + s, density, rng)
            if repair_with_spares(defect_map, n, n).success:
                successes += 1
        if successes / trials >= target:
            return s
    return None


# ----------------------------------------------------------------------
# TMR (transient faults)
# ----------------------------------------------------------------------
_VOTER_CACHE: Lattice | None = None


def majority_voter_lattice() -> Lattice:
    """A folded lattice computing maj3 (2x3 after folding; maj3 is self-dual)."""
    global _VOTER_CACHE
    if _VOTER_CACHE is None:
        from ..synthesis.lattice_dual import synthesize_lattice_dual
        from ..synthesis.optimize import fold_lattice

        table = TruthTable.from_callable(3, lambda m: bin(m).count("1") >= 2)
        lattice = fold_lattice(synthesize_lattice_dual(table), table)
        if not lattice.implements(table):  # pragma: no cover - flow guard
            raise RuntimeError("majority voter lattice construction broken")
        _VOTER_CACHE = lattice
    return _VOTER_CACHE


@dataclass(frozen=True)
class TmrSystem:
    """Three lattice replicas + a majority voter lattice."""

    replica: Lattice
    voter: Lattice

    @property
    def area(self) -> int:
        return 3 * self.replica.area + self.voter.area

    def evaluate(self, assignment: int, rng: random.Random | None = None,
                 upset_rate: float = 0.0) -> bool:
        """One evaluation with optional per-site transient upsets.

        An upset flips a site's conduction state for this evaluation only
        (transient).  The voter's sites are upset at the same rate.
        """

        def flip(nominal: bool) -> bool:
            if rng is not None and upset_rate > 0 and rng.random() < upset_rate:
                return not nominal
            return nominal

        def noisy_eval(lattice: Lattice, a: int) -> bool:
            return lattice.evaluate(a, lambda r, c, v: flip(v))

        votes = [noisy_eval(self.replica, assignment) for _ in range(3)]
        voter_input = sum(1 << i for i, v in enumerate(votes) if v)
        return noisy_eval(self.voter, voter_input)


def make_tmr(replica: Lattice) -> TmrSystem:
    return TmrSystem(replica=replica, voter=majority_voter_lattice())


@dataclass(frozen=True)
class ReliabilityPoint:
    """Monte-Carlo output correctness at one upset rate."""

    upset_rate: float
    simplex_correct: float
    tmr_correct: float

    @property
    def tmr_wins(self) -> bool:
        return self.tmr_correct >= self.simplex_correct


def tmr_reliability(replica: Lattice, table: TruthTable,
                    upset_rates: Sequence[float], trials: int,
                    rng: random.Random) -> list[ReliabilityPoint]:
    """Simplex vs TMR output correctness across transient upset rates."""
    if table.n != replica.n:
        raise ValueError("truth table and lattice disagree on variables")
    system = make_tmr(replica)
    assignments = list(range(1 << replica.n))
    points = []
    for rate in upset_rates:
        simplex_ok = 0
        tmr_ok = 0
        for _ in range(trials):
            assignment = rng.choice(assignments)
            golden = table.evaluate(assignment)

            def flip(nominal: bool, rate: float = rate) -> bool:
                if rng.random() < rate:
                    return not nominal
                return nominal

            simplex = replica.evaluate(assignment, lambda r, c, v: flip(v))
            if simplex == golden:
                simplex_ok += 1
            if system.evaluate(assignment, rng, rate) == golden:
                tmr_ok += 1
        points.append(ReliabilityPoint(
            upset_rate=rate,
            simplex_correct=simplex_ok / trials,
            tmr_correct=tmr_ok / trials,
        ))
    return points
