"""Defect models for reconfigurable nano-crossbars (Section IV).

A :class:`DefectMap` records the physical state of every crosspoint of an
``N x M`` crossbar:

* ``OK`` — programmable both ways;
* ``STUCK_OPEN`` — can never conduct (the dominant defect type in nanowire
  crossbars: broken/missing junctions);
* ``STUCK_CLOSED`` — always conducts.

Two generators model the paper's defect regimes: independent Bernoulli
defects (global density) and clustered defects (local density variation —
the motivation for *hybrid* BISM and for sampling defect densities per
crossbar in Fig. 6's flow).
"""

from __future__ import annotations

import hashlib
import random
import struct
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

#: Wire-format magic/version for :meth:`DefectMap.to_bytes`.
_WIRE_MAGIC = b"DM1\x00"


class CrosspointState(Enum):
    """Physical state of one crosspoint."""

    OK = "ok"
    STUCK_OPEN = "stuck_open"
    STUCK_CLOSED = "stuck_closed"


#: Sparse numeric state codes, shared with :mod:`repro.faultlab.maps`
#: (``0`` is reserved for OK and never serialised).
STATE_TO_CODE = {CrosspointState.STUCK_OPEN: 1, CrosspointState.STUCK_CLOSED: 2}
CODE_TO_STATE = {code: state for state, code in STATE_TO_CODE.items()}


@dataclass(frozen=True)
class DefectMap:
    """Immutable defect map of an ``rows x cols`` crossbar."""

    rows: int
    cols: int
    #: sparse map (r, c) -> non-OK state; OK crosspoints are absent.
    defects: dict[tuple[int, int], CrosspointState]

    def __post_init__(self) -> None:
        for (r, c), state in self.defects.items():
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise ValueError(f"defect at ({r},{c}) outside {self.rows}x{self.cols}")
            if state is CrosspointState.OK:
                raise ValueError("defect dict must not contain OK entries")

    # ------------------------------------------------------------------
    def state(self, r: int, c: int) -> CrosspointState:
        return self.defects.get((r, c), CrosspointState.OK)

    def is_ok(self, r: int, c: int) -> bool:
        return (r, c) not in self.defects

    def is_stuck_open(self, r: int, c: int) -> bool:
        return self.defects.get((r, c)) is CrosspointState.STUCK_OPEN

    def is_stuck_closed(self, r: int, c: int) -> bool:
        return self.defects.get((r, c)) is CrosspointState.STUCK_CLOSED

    @property
    def num_defects(self) -> int:
        return len(self.defects)

    @property
    def density(self) -> float:
        return self.num_defects / (self.rows * self.cols)

    def defective_rows(self) -> set[int]:
        return {r for r, _ in self.defects}

    def defective_cols(self) -> set[int]:
        return {c for _, c in self.defects}

    def row_defect_counts(self) -> list[int]:
        counts = [0] * self.rows
        for r, _ in self.defects:
            counts[r] += 1
        return counts

    def col_defect_counts(self) -> list[int]:
        counts = [0] * self.cols
        for _, c in self.defects:
            counts[c] += 1
        return counts

    def iter_defects(self) -> Iterator[tuple[int, int, CrosspointState]]:
        for (r, c), state in sorted(self.defects.items()):
            yield r, c, state

    def submap(self, row_ids: list[int], col_ids: list[int]) -> "DefectMap":
        """Defect map of the sub-crossbar selected by the given lines."""
        row_pos = {r: i for i, r in enumerate(row_ids)}
        col_pos = {c: j for j, c in enumerate(col_ids)}
        defects = {
            (row_pos[r], col_pos[c]): state
            for (r, c), state in self.defects.items()
            if r in row_pos and c in col_pos
        }
        return DefectMap(len(row_ids), len(col_ids), defects)

    def is_clean(self, row_ids: list[int], col_ids: list[int]) -> bool:
        """True when the selected sub-crossbar has no defect at all."""
        col_set = set(col_ids)
        row_set = set(row_ids)
        return not any(
            r in row_set and c in col_set for (r, c) in self.defects
        )

    # ------------------------------------------------------------------
    # Compact serialization (process boundaries, content-hash caching)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact, deterministic wire format.

        Layout: ``b"DM1\\0"`` magic, ``<III`` rows/cols/defect-count header,
        then one ``<IB`` record per defect — the flat crosspoint index
        ``r * cols + c`` plus the sparse state code — sorted by index so
        equal maps always serialise to equal bytes (content-hashable).
        """
        header = struct.pack("<4sIII", _WIRE_MAGIC, self.rows, self.cols,
                             len(self.defects))
        records = b"".join(
            struct.pack("<IB", r * self.cols + c, STATE_TO_CODE[state])
            for (r, c), state in sorted(self.defects.items())
        )
        return header + records

    @classmethod
    def from_bytes(cls, data: bytes) -> "DefectMap":
        """Inverse of :meth:`to_bytes` (validates magic and payload size)."""
        head_size = struct.calcsize("<4sIII")
        if len(data) < head_size:
            raise ValueError("defect-map payload shorter than its header")
        magic, rows, cols, count = struct.unpack_from("<4sIII", data)
        if magic != _WIRE_MAGIC:
            raise ValueError(f"bad defect-map magic {magic!r}")
        record = struct.calcsize("<IB")
        if len(data) != head_size + count * record:
            raise ValueError("defect-map payload size mismatch")
        defects: dict[tuple[int, int], CrosspointState] = {}
        for i in range(count):
            index, code = struct.unpack_from("<IB", data,
                                             head_size + i * record)
            if code not in CODE_TO_STATE:
                raise ValueError(f"unknown crosspoint state code {code}")
            if cols == 0 or index >= rows * cols:
                raise ValueError(f"defect index {index} outside {rows}x{cols}")
            position = (index // cols, index % cols)
            if position in defects:
                raise ValueError(f"duplicate defect record for {position}")
            defects[position] = CODE_TO_STATE[code]
        return cls(rows, cols, defects)

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`to_bytes` (stable cache key)."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def render(self) -> str:
        """ASCII map: ``.`` OK, ``o`` stuck-open, ``x`` stuck-closed."""
        symbol = {
            CrosspointState.STUCK_OPEN: "o",
            CrosspointState.STUCK_CLOSED: "x",
        }
        lines = []
        for r in range(self.rows):
            lines.append("".join(
                symbol.get(self.defects.get((r, c)), ".") for c in range(self.cols)
            ))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def perfect_map(rows: int, cols: int) -> DefectMap:
    """A defect-free crossbar."""
    return DefectMap(rows, cols, {})


def random_defect_map(rows: int, cols: int, density: float,
                      rng: random.Random,
                      stuck_open_fraction: float = 0.8) -> DefectMap:
    """Independent Bernoulli defects.

    Args:
        density: per-crosspoint defect probability.
        stuck_open_fraction: share of defects that are stuck-open (the
            literature reports opens dominate in nanowire crossbars).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    if not 0.0 <= stuck_open_fraction <= 1.0:
        raise ValueError("stuck_open_fraction must be in [0, 1]")
    defects: dict[tuple[int, int], CrosspointState] = {}
    for r in range(rows):
        for c in range(cols):
            if rng.random() < density:
                if rng.random() < stuck_open_fraction:
                    defects[(r, c)] = CrosspointState.STUCK_OPEN
                else:
                    defects[(r, c)] = CrosspointState.STUCK_CLOSED
    return DefectMap(rows, cols, defects)


def clustered_defect_map(rows: int, cols: int, density: float,
                         rng: random.Random,
                         cluster_radius: float = 1.5,
                         stuck_open_fraction: float = 0.8) -> DefectMap:
    """Clustered defects: Poisson cluster centres with Gaussian spread.

    The expected defect count matches ``density * rows * cols``; defects
    bunch around cluster centres, modelling local process variation.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    target = density * rows * cols
    defects_per_cluster = max(2.0, cluster_radius * 2)
    num_clusters = max(1, round(target / defects_per_cluster)) if target > 0 else 0
    defects: dict[tuple[int, int], CrosspointState] = {}
    placed = 0
    budget = round(target)
    for _ in range(num_clusters):
        if placed >= budget:
            break
        centre_r = rng.uniform(0, rows - 1)
        centre_c = rng.uniform(0, cols - 1)
        for _ in range(max(1, round(rng.expovariate(1.0 / defects_per_cluster)))):
            if placed >= budget:
                break
            r = int(round(rng.gauss(centre_r, cluster_radius)))
            c = int(round(rng.gauss(centre_c, cluster_radius)))
            if not (0 <= r < rows and 0 <= c < cols) or (r, c) in defects:
                continue
            state = (CrosspointState.STUCK_OPEN
                     if rng.random() < stuck_open_fraction
                     else CrosspointState.STUCK_CLOSED)
            defects[(r, c)] = state
            placed += 1
    return DefectMap(rows, cols, defects)


@dataclass(frozen=True)
class NanoChip:
    """A chip: many crossbars with per-crossbar defect densities.

    Models the *global and local defect density variations* the hybrid BISM
    of Section IV-B targets: each crossbar's density is sampled around the
    chip mean.
    """

    crossbars: tuple[DefectMap, ...]

    @property
    def num_crossbars(self) -> int:
        return len(self.crossbars)

    def mean_density(self) -> float:
        return sum(m.density for m in self.crossbars) / len(self.crossbars)


def sample_chip(num_crossbars: int, rows: int, cols: int,
                mean_density: float, density_spread: float,
                rng: random.Random, clustered: bool = False) -> NanoChip:
    """Sample a chip whose crossbar densities vary around the mean."""
    maps = []
    for _ in range(num_crossbars):
        local = min(1.0, max(0.0, rng.gauss(mean_density, density_spread)))
        if clustered:
            maps.append(clustered_defect_map(rows, cols, local, rng))
        else:
            maps.append(random_defect_map(rows, cols, local, rng))
    return NanoChip(tuple(maps))
