"""Manufacturing yield models (Section IV: "improve the manufacturing
yield" via defect tolerance).

Analytic building blocks for iid Bernoulli defects plus the classical
Poisson area-defect model, and Monte-Carlo estimators that the benchmarks
cross-check against them:

* probability a *fixed* ``r x c`` placement is clean;
* first-moment (union-bound) estimate of the number of clean ``k x k``
  subarrays in an ``N x N`` crossbar;
* Monte-Carlo yield of "chip recovers a clean ``k x k``" — the quantity
  the defect-unaware flow (Fig. 6b) improves by choosing ``k < N``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from .defect_unaware import greedy_clean_subarray, max_clean_square_exact
from .defects import random_defect_map


def clean_placement_probability(rows: int, cols: int, density: float) -> float:
    """P(fixed rows x cols placement has zero defects) = (1-p)^(r*c)."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    return (1.0 - density) ** (rows * cols)


def expected_clean_squares(n: int, k: int, density: float) -> float:
    """First moment: E[#clean k x k subarrays] = C(n,k)^2 (1-p)^(k^2).

    An upper-bound proxy for yield via Markov: P(exists) <= E[count]; it is
    tight in the rare-clean regime and the benches show where it diverges.
    """
    if k > n:
        return 0.0
    return math.comb(n, k) ** 2 * clean_placement_probability(k, k, density)


def poisson_yield(area: float, defect_density_per_area: float) -> float:
    """Classical Poisson yield model ``Y = exp(-A * D)``."""
    if area < 0 or defect_density_per_area < 0:
        raise ValueError("area and density must be non-negative")
    return math.exp(-area * defect_density_per_area)


@dataclass(frozen=True)
class YieldEstimate:
    """Monte-Carlo yield for one (N, k, density) point."""

    n: int
    k: int
    density: float
    trials: int
    successes: int
    used_exact: bool

    @property
    def yield_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


def monte_carlo_yield(n: int, k: int, density: float, trials: int,
                      rng: random.Random, exact: bool = False) -> YieldEstimate:
    """P(an N x N crossbar contains a clean k x k subarray), estimated.

    ``exact=True`` uses the branch-and-bound extractor (small N only); the
    default greedy extractor makes the estimate a *lower* bound.
    """
    successes = 0
    for _ in range(trials):
        defect_map = random_defect_map(n, n, density, rng)
        if exact:
            found = max_clean_square_exact(defect_map).k
        else:
            found = greedy_clean_subarray(defect_map).k
        if found >= k:
            successes += 1
    return YieldEstimate(n, k, density, trials, successes, exact)


def yield_sweep(n: int, k_values: Sequence[int], densities: Sequence[float],
                trials: int, rng: random.Random) -> list[dict]:
    """Yield table across k and density (analytic bound + Monte Carlo)."""
    rows = []
    for density in densities:
        for k in k_values:
            estimate = monte_carlo_yield(n, k, density, trials, rng)
            rows.append({
                "N": n,
                "k": k,
                "density": density,
                "monte_carlo_yield": estimate.yield_rate,
                "fixed_placement_prob": clean_placement_probability(k, k, density),
                "expected_clean_count": expected_clean_squares(n, k, density),
            })
    return rows
