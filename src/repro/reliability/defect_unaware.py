"""Application-independent defect-unaware design flow (Section IV-C, Fig. 6).

Instead of re-running defect-aware mapping per application (Fig. 6a), the
defect-unaware flow (Fig. 6b) extracts — once per chip — a *universal*
defect-free ``k x k`` sub-crossbar from each defective ``N x N`` crossbar.
Afterwards every application maps into the clean region with **no** defect
knowledge: the stored map shrinks from ``O(N^2)`` crosspoint states to the
``O(N)`` list of excluded lines, and per-application mapping cost drops to
zero test sessions.

Finding the maximum clean ``k x k`` submatrix is NP-hard in general
(maximum balanced biclique); the module provides an exact branch-and-bound
for small crossbars (used to validate) and a greedy worst-line-elimination
heuristic with local re-insertion for large ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .defects import DefectMap, random_defect_map


@dataclass(frozen=True)
class CleanSubarray:
    """A defect-free selection of physical rows and columns."""

    rows: tuple[int, ...]
    cols: tuple[int, ...]

    @property
    def k(self) -> int:
        """Side of the largest square inside the selection."""
        return min(len(self.rows), len(self.cols))

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.rows), len(self.cols))


def is_clean(defect_map: DefectMap, rows: Sequence[int], cols: Sequence[int]) -> bool:
    """Every selected crosspoint is defect-free (universal usability)."""
    return defect_map.is_clean(list(rows), list(cols))


# ----------------------------------------------------------------------
# Greedy heuristic
# ----------------------------------------------------------------------
def greedy_clean_subarray(defect_map: DefectMap) -> CleanSubarray:
    """Worst-line elimination followed by re-insertion.

    Repeatedly removes the row or column with the most defects in the
    remaining selection (ties: keep the selection square-ish) until no
    defects remain, then tries to re-add removed lines that happen to be
    clean w.r.t. the final selection.

    Every tie-break is fully index-deterministic (equal defect counts pick
    the lowest-numbered line); this is the contract that lets the batched
    kernel in :mod:`repro.faultlab.kernels` reproduce the selection
    bit-exactly with ``argmax`` semantics.
    """
    rows = set(range(defect_map.rows))
    cols = set(range(defect_map.cols))
    live = {(r, c) for (r, c) in defect_map.defects}
    while live:
        row_counts: dict[int, int] = {}
        col_counts: dict[int, int] = {}
        for r, c in live:
            row_counts[r] = row_counts.get(r, 0) + 1
            col_counts[c] = col_counts.get(c, 0) + 1
        worst_row = max(row_counts, key=lambda r: (row_counts[r], -r))
        worst_col = max(col_counts, key=lambda c: (col_counts[c], -c))
        # Prefer the line clearing more defects; tie-break toward keeping
        # the selection balanced.
        remove_row = (
            row_counts[worst_row],
            len(rows) - len(cols),
        ) >= (
            col_counts[worst_col],
            len(cols) - len(rows),
        )
        if remove_row:
            rows.discard(worst_row)
            live = {(r, c) for (r, c) in live if r != worst_row}
        else:
            cols.discard(worst_col)
            live = {(r, c) for (r, c) in live if c != worst_col}
    # Re-insertion pass: a removed line may be clean against the survivors.
    for r in sorted(set(range(defect_map.rows)) - rows):
        if all((r, c) not in defect_map.defects for c in cols):
            rows.add(r)
    for c in sorted(set(range(defect_map.cols)) - cols):
        if all((r, c) not in defect_map.defects for r in rows):
            cols.add(c)
    return CleanSubarray(tuple(sorted(rows)), tuple(sorted(cols)))


# ----------------------------------------------------------------------
# Exact branch-and-bound (validation for small crossbars)
# ----------------------------------------------------------------------
def max_clean_square_exact(defect_map: DefectMap,
                           node_budget: int = 2_000_000) -> CleanSubarray:
    """Maximum clean square via DFS over row subsets with column masks.

    Exponential in the worst case; intended for ``N`` up to ~14 (the
    validation regime).  ``node_budget`` caps the search defensively.
    """
    n_rows, n_cols = defect_map.rows, defect_map.cols
    full_cols = (1 << n_cols) - 1
    clean_cols = []
    for r in range(n_rows):
        mask = full_cols
        for c in range(n_cols):
            if not defect_map.is_ok(r, c):
                mask &= ~(1 << c)
        clean_cols.append(mask)
    order = sorted(range(n_rows), key=lambda r: -bin(clean_cols[r]).count("1"))
    best_k = 0
    best_rows: tuple[int, ...] = ()
    best_mask = 0
    nodes = 0

    def dfs(idx: int, chosen: list[int], col_mask: int) -> None:
        nonlocal best_k, best_rows, best_mask, nodes
        nodes += 1
        if nodes > node_budget:
            return
        width = bin(col_mask).count("1")
        k_here = min(len(chosen), width)
        if k_here > best_k:
            best_k = k_here
            best_rows = tuple(chosen)
            best_mask = col_mask
        # Upper bound: all remaining rows joined, width can only shrink.
        if min(len(chosen) + (n_rows - idx), width) <= best_k:
            return
        for next_idx in range(idx, n_rows):
            row = order[next_idx]
            new_mask = col_mask & clean_cols[row]
            if bin(new_mask).count("1") <= best_k:
                continue
            chosen.append(row)
            dfs(next_idx + 1, chosen, new_mask)
            chosen.pop()

    dfs(0, [], full_cols)
    cols = tuple(c for c in range(n_cols) if (best_mask >> c) & 1)[:best_k]
    rows = tuple(sorted(best_rows))[:best_k]
    return CleanSubarray(rows, cols)


# ----------------------------------------------------------------------
# Flow comparison (the Fig. 6 experiment)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlowComparison:
    """Defect-aware vs defect-unaware flow metrics for one chip."""

    n: int
    density: float
    recovered_k: int
    #: crosspoint states the defect-aware flow must store (O(N^2))
    aware_map_words: int
    #: excluded-line list the defect-unaware flow stores (O(N))
    unaware_map_words: int
    #: average BIST sessions to map one application, defect-aware
    aware_sessions_per_app: float
    #: test sessions to map one application in the clean region
    unaware_sessions_per_app: float


def defect_unaware_flow(defect_map: DefectMap,
                        app_rows: int, app_cols: int,
                        rng: random.Random,
                        applications: int = 10,
                        max_retries: int = 500) -> FlowComparison:
    """Compare the two Fig. 6 flows on one crossbar.

    The defect-aware flow runs blind self-mapping (random placement + BIST)
    per application on the raw crossbar; the defect-unaware flow extracts a
    clean subarray once, then places applications directly when they fit.
    """
    from .bism import as_program, blind_bism

    clean = greedy_clean_subarray(defect_map)
    # Per-application defect-aware cost: average over random "applications"
    # that request app_rows x app_cols with a random program pattern.
    sessions = []
    for _ in range(applications):
        program = as_program([
            [rng.random() < 0.5 for _ in range(app_cols)]
            for _ in range(app_rows)
        ])
        result = blind_bism(program, defect_map, rng, max_retries=max_retries)
        sessions.append(result.bist_sessions if result.success else max_retries)
    aware_sessions = sum(sessions) / len(sessions)
    fits = clean.k >= max(app_rows, app_cols) or (
        len(clean.rows) >= app_rows and len(clean.cols) >= app_cols
    )
    return FlowComparison(
        n=defect_map.rows,
        density=defect_map.density,
        recovered_k=clean.k,
        aware_map_words=defect_map.rows * defect_map.cols,
        unaware_map_words=(defect_map.rows - len(clean.rows))
        + (defect_map.cols - len(clean.cols)) + 2,
        aware_sessions_per_app=aware_sessions,
        unaware_sessions_per_app=0.0 if fits else float(max_retries),
    )


def recovery_sweep(n: int, densities: Sequence[float], trials: int,
                   rng: random.Random) -> list[dict]:
    """Average recovered k/N per density (the Fig. 6b headline curve)."""
    rows = []
    for density in densities:
        ks = []
        for _ in range(trials):
            defect_map = random_defect_map(n, n, density, rng)
            ks.append(greedy_clean_subarray(defect_map).k)
        rows.append({
            "N": n,
            "density": density,
            "avg_k": sum(ks) / trials,
            "k_over_n": sum(ks) / trials / n,
            "min_k": min(ks),
            "max_k": max(ks),
        })
    return rows
