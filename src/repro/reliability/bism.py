"""Built-In Self-Mapping: blind, greedy and hybrid (Section IV-B).

An application configuration (an ``r x c`` program matrix from the
synthesis flows) must be placed on a partially defective ``N x M``
crossbar.  A *mapping* assigns application rows/columns to distinct
physical rows/columns; it is valid when

* every programmed crosspoint lands on a junction that can close
  (not stuck-open), and
* every unprogrammed crosspoint lands on a junction that can stay open
  (not stuck-closed).

The three paper strategies:

* **Blind** — draw a fresh random mapping, run application-dependent BIST,
  retry on failure.  No diagnosis hardware, very fast at low densities,
  degrades badly as the pass probability collapses.
* **Greedy** — after a failed BIST, run application-dependent BISD to find
  the defective junctions used by the current mapping, then *re-place only
  the affected physical lines*, keeping everything else.  Pays a diagnosis
  session per retry but converges at high densities.
* **Hybrid** — blind for a fixed retry budget, then switch to greedy; it
  adapts to unknown and locally varying densities.

Costs are counted in test sessions (BIST = 1, BISD = ``bisd_cost``,
default the logarithmic configuration count of
:mod:`repro.reliability.bisd`), which is the right proxy for self-mapping
time on chip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .bist import application_bist_passes
from .defects import DefectMap
from .faults import CrossbarFabric

Program = tuple[tuple[bool, ...], ...]


def as_program(matrix: Sequence[Sequence[bool]]) -> Program:
    return tuple(tuple(bool(x) for x in row) for row in matrix)


@dataclass(frozen=True)
class Mapping:
    """An injective placement of application lines onto physical lines."""

    row_map: tuple[int, ...]
    col_map: tuple[int, ...]


def mapping_is_valid(program: Program, mapping: Mapping,
                     defect_map: DefectMap) -> bool:
    """Ground-truth validity (what a full BIST session would conclude)."""
    for i, phys_r in enumerate(mapping.row_map):
        for j, phys_c in enumerate(mapping.col_map):
            if program[i][j]:
                if defect_map.is_stuck_open(phys_r, phys_c):
                    return False
            else:
                if defect_map.is_stuck_closed(phys_r, phys_c):
                    return False
    return True


def defective_junctions(program: Program, mapping: Mapping,
                        defect_map: DefectMap) -> list[tuple[int, int]]:
    """Application-dependent diagnosis: offending (app_row, app_col) pairs."""
    bad = []
    for i, phys_r in enumerate(mapping.row_map):
        for j, phys_c in enumerate(mapping.col_map):
            if program[i][j] and defect_map.is_stuck_open(phys_r, phys_c):
                bad.append((i, j))
            elif not program[i][j] and defect_map.is_stuck_closed(phys_r, phys_c):
                bad.append((i, j))
    return bad


def mapped_program(program: Program, mapping: Mapping,
                   rows: int, cols: int) -> Program:
    """Expand an application program to the full physical crossbar."""
    full = [[False] * cols for _ in range(rows)]
    for i, phys_r in enumerate(mapping.row_map):
        for j, phys_c in enumerate(mapping.col_map):
            full[phys_r][phys_c] = bool(program[i][j])
    return as_program(full)


@dataclass
class BismResult:
    """Outcome and cost accounting of one self-mapping run."""

    success: bool
    mapping: Mapping | None
    configurations_tried: int
    bist_sessions: int
    bisd_sessions: int
    strategy: str
    switched_to_greedy: bool = False

    def total_sessions(self, bisd_cost: float = 1.0) -> float:
        """Weighted session count (BISD may cost several configurations)."""
        return self.bist_sessions + bisd_cost * self.bisd_sessions


def _random_mapping(app_rows: int, app_cols: int, rows: int, cols: int,
                    rng: random.Random) -> Mapping:
    return Mapping(
        tuple(rng.sample(range(rows), app_rows)),
        tuple(rng.sample(range(cols), app_cols)),
    )


def _check(program: Program, mapping: Mapping, defect_map: DefectMap,
           use_fabric_bist: bool) -> bool:
    """BIST pass/fail for the candidate mapping (one session).

    ``use_fabric_bist=True`` routes through the behavioural fault simulator
    (slower, end-to-end); otherwise validity is checked directly on the
    defect map — the two agree, which the tests verify.
    """
    if not use_fabric_bist:
        return mapping_is_valid(program, mapping, defect_map)
    fabric = CrossbarFabric(defect_map.rows, defect_map.cols)
    full = mapped_program(program, mapping, defect_map.rows, defect_map.cols)
    return application_bist_passes(fabric, full, defect_map,
                                   observed_rows=mapping.row_map,
                                   driven_cols=mapping.col_map)


def blind_bism(program: Program, defect_map: DefectMap, rng: random.Random,
               max_retries: int = 200,
               use_fabric_bist: bool = False) -> BismResult:
    """Random configuration + BIST retry loop."""
    app_rows, app_cols = len(program), len(program[0])
    if app_rows > defect_map.rows or app_cols > defect_map.cols:
        raise ValueError("application larger than the crossbar")
    bist = 0
    for attempt in range(1, max_retries + 1):
        mapping = _random_mapping(app_rows, app_cols,
                                  defect_map.rows, defect_map.cols, rng)
        bist += 1
        if _check(program, mapping, defect_map, use_fabric_bist):
            return BismResult(True, mapping, attempt, bist, 0, "blind")
    return BismResult(False, None, max_retries, bist, 0, "blind")


def greedy_bism(program: Program, defect_map: DefectMap, rng: random.Random,
                max_retries: int = 200,
                use_fabric_bist: bool = False) -> BismResult:
    """Diagnose after each failure and re-place only the defective lines."""
    app_rows, app_cols = len(program), len(program[0])
    if app_rows > defect_map.rows or app_cols > defect_map.cols:
        raise ValueError("application larger than the crossbar")
    mapping = _random_mapping(app_rows, app_cols,
                              defect_map.rows, defect_map.cols, rng)
    bist = bisd = 0
    for attempt in range(1, max_retries + 1):
        bist += 1
        if _check(program, mapping, defect_map, use_fabric_bist):
            return BismResult(True, mapping, attempt, bist, bisd, "greedy")
        bisd += 1
        bad = defective_junctions(program, mapping, defect_map)
        bad_app_rows = sorted({i for i, _ in bad})
        bad_app_cols = sorted({j for _, j in bad})
        # Re-place the offending rows (columns) with fresh physical lines,
        # preferring lines not currently in use.
        row_map = list(mapping.row_map)
        col_map = list(mapping.col_map)
        free_rows = [r for r in range(defect_map.rows) if r not in row_map]
        free_cols = [c for c in range(defect_map.cols) if c not in col_map]
        rng.shuffle(free_rows)
        rng.shuffle(free_cols)
        for i in bad_app_rows:
            if free_rows:
                row_map[i] = free_rows.pop()
            else:
                # No spare rows left: swap with a random other row.
                other = rng.randrange(app_rows)
                row_map[i], row_map[other] = row_map[other], row_map[i]
        for j in bad_app_cols:
            if free_cols:
                col_map[j] = free_cols.pop()
            else:
                other = rng.randrange(app_cols)
                col_map[j], col_map[other] = col_map[other], col_map[j]
        mapping = Mapping(tuple(row_map), tuple(col_map))
    return BismResult(False, None, max_retries, bist, bisd, "greedy")


def hybrid_bism(program: Program, defect_map: DefectMap, rng: random.Random,
                blind_budget: int = 5, max_retries: int = 200,
                use_fabric_bist: bool = False) -> BismResult:
    """Blind first; switch to greedy after ``blind_budget`` failures."""
    blind = blind_bism(program, defect_map, rng,
                       max_retries=blind_budget,
                       use_fabric_bist=use_fabric_bist)
    if blind.success:
        return BismResult(True, blind.mapping, blind.configurations_tried,
                          blind.bist_sessions, 0, "hybrid")
    greedy = greedy_bism(program, defect_map, rng,
                         max_retries=max_retries - blind_budget,
                         use_fabric_bist=use_fabric_bist)
    return BismResult(
        greedy.success,
        greedy.mapping,
        blind.configurations_tried + greedy.configurations_tried,
        blind.bist_sessions + greedy.bist_sessions,
        greedy.bisd_sessions,
        "hybrid",
        switched_to_greedy=True,
    )


STRATEGIES = {
    "blind": blind_bism,
    "greedy": greedy_bism,
    "hybrid": hybrid_bism,
}


@dataclass
class SweepPoint:
    """Monte-Carlo summary for one (strategy, density) point."""

    strategy: str
    density: float
    success_rate: float
    avg_bist_sessions: float
    avg_bisd_sessions: float
    avg_total_sessions: float


def bism_density_sweep(program: Program, crossbar_rows: int, crossbar_cols: int,
                       densities: Sequence[float], trials: int,
                       rng: random.Random,
                       strategies: Sequence[str] = ("blind", "greedy", "hybrid"),
                       max_retries: int = 200,
                       bisd_cost: float | None = None) -> list[SweepPoint]:
    """The Section IV-B comparison: sessions/success vs defect density."""
    from .defects import random_defect_map
    from .bisd import _codeword_bits

    if bisd_cost is None:
        bisd_cost = _codeword_bits(crossbar_rows, crossbar_cols) + 2
    points = []
    for density in densities:
        per_strategy: dict[str, list[BismResult]] = {s: [] for s in strategies}
        for _ in range(trials):
            defect_map = random_defect_map(crossbar_rows, crossbar_cols,
                                           density, rng)
            for name in strategies:
                result = STRATEGIES[name](program, defect_map, rng,
                                          max_retries=max_retries)
                per_strategy[name].append(result)
        for name in strategies:
            results = per_strategy[name]
            points.append(SweepPoint(
                strategy=name,
                density=density,
                success_rate=sum(r.success for r in results) / trials,
                avg_bist_sessions=sum(r.bist_sessions for r in results) / trials,
                avg_bisd_sessions=sum(r.bisd_sessions for r in results) / trials,
                avg_total_sessions=sum(
                    r.total_sessions(bisd_cost) for r in results
                ) / trials,
            ))
    return points
