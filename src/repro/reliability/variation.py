"""Parametric variation models and variation-aware mapping (Section IV).

Nanowire crosspoints show large device-to-device spread; the standard
model is a lognormal resistance per junction.  The module provides:

* :class:`VariationMap` — per-crosspoint resistance samples;
* delay models: for a configured lattice, the delay of an input is the
  best (minimum total resistance) conducting top-bottom path — computed
  with Dijkstra on the conduction grid — and the array's *critical delay*
  is the worst such value over the on-set;
* a diode-array delay proxy (worst row series resistance);
* **variation-aware mapping**: choose the physical rows/columns with the
  lowest resistance budget instead of arbitrary ones, and compare the
  resulting delay distributions (the "variation tolerance ensures
  predictability and performance" claim).

These are the scalar, one-chip-at-a-time references.  The batched
production path — `(trials, rows, cols)` resistance ensembles, vectorized
selection and Bellman-Ford delay relaxation, sharded campaign runs — is
:mod:`repro.varsim` (built on :mod:`repro.xbareval.delay`); every varsim
kernel is validated against the functions in this module.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..boolean.truthtable import TruthTable
from ..crossbar.lattice import Lattice


@dataclass(frozen=True)
class VariationMap:
    """Per-crosspoint resistance samples (arbitrary units, nominal 1.0)."""

    resistance: np.ndarray  # shape (rows, cols)

    def __post_init__(self) -> None:
        if self.resistance.ndim != 2:
            raise ValueError("resistance map must be 2-D")
        if (self.resistance <= 0).any():
            raise ValueError("resistances must be positive")

    @property
    def rows(self) -> int:
        return int(self.resistance.shape[0])

    @property
    def cols(self) -> int:
        return int(self.resistance.shape[1])

    def submap(self, row_ids: Sequence[int], col_ids: Sequence[int]) -> "VariationMap":
        return VariationMap(self.resistance[np.ix_(list(row_ids), list(col_ids))])


def lognormal_variation(rows: int, cols: int, sigma: float,
                        rng: random.Random | np.random.Generator,
                        nominal: float = 1.0) -> VariationMap:
    """Sample a lognormal variation map: ``R = nominal * exp(N(0, sigma))``.

    The whole map is one vectorized ``numpy.random.Generator`` normal draw.
    A :class:`random.Random` is still accepted for backward compatibility:
    it seeds a dedicated ``Generator`` from its own stream, so repeated
    calls with the same scalar RNG remain deterministic and distinct.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if isinstance(rng, np.random.Generator):
        gen = rng
    else:
        gen = np.random.default_rng(rng.getrandbits(128))
    values = nominal * np.exp(gen.normal(0.0, sigma, size=(rows, cols)))
    return VariationMap(values)


# ----------------------------------------------------------------------
# Lattice delay
# ----------------------------------------------------------------------
def best_path_delay(conduction: list[list[bool]],
                    resistance: np.ndarray) -> float | None:
    """Minimum total resistance over conducting top-bottom 4-paths.

    Dijkstra with node weights; ``None`` when the grid does not conduct.
    """
    rows = len(conduction)
    cols = len(conduction[0]) if rows else 0
    dist: dict[tuple[int, int], float] = {}
    heap: list[tuple[float, tuple[int, int]]] = []
    for c in range(cols):
        if conduction[0][c]:
            weight = float(resistance[0][c])
            if dist.get((0, c), float("inf")) > weight:
                dist[(0, c)] = weight
                heapq.heappush(heap, (weight, (0, c)))
    best: float | None = None
    while heap:
        d, (r, c) = heapq.heappop(heap)
        if d > dist.get((r, c), float("inf")):
            continue
        if r == rows - 1:
            best = d if best is None else min(best, d)
            # Dijkstra pops in nondecreasing order: first bottom hit is best.
            return best
        for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
            if not (0 <= nr < rows and 0 <= nc < cols):
                continue
            if not conduction[nr][nc]:
                continue
            nd = d + float(resistance[nr][nc])
            if nd < dist.get((nr, nc), float("inf")):
                dist[(nr, nc)] = nd
                heapq.heappush(heap, (nd, (nr, nc)))
    return best


def lattice_critical_delay(lattice: Lattice, variation: VariationMap,
                           table: TruthTable | None = None) -> float:
    """Worst-case best-path delay over the on-set of the lattice function.

    Raises:
        ValueError: for a constant-0 function (empty on-set) — there is no
            conducting input, so "critical delay" is undefined and a
            silent ``0.0`` would read as an infinitely fast array.
    """
    if variation.rows != lattice.rows or variation.cols != lattice.cols:
        raise ValueError("variation map shape must match the lattice")
    if table is None:
        table = lattice.to_truth_table()
    if table.count_ones() == 0:
        raise ValueError(
            "critical delay is undefined for a constant-0 function: "
            "the lattice conducts for no input (empty on-set)")
    worst = 0.0
    for m in table.minterms():
        delay = best_path_delay(lattice.conduction_grid(m), variation.resistance)
        if delay is None:
            raise ValueError("lattice does not conduct on its own on-set")
        worst = max(worst, delay)
    return worst


def diode_row_delay(program: Sequence[Sequence[bool]],
                    variation: VariationMap) -> float:
    """Worst row series-resistance (two-terminal array delay proxy)."""
    worst = 0.0
    for r, row in enumerate(program):
        total = sum(
            float(variation.resistance[r][c]) for c, on in enumerate(row) if on
        )
        worst = max(worst, total)
    return worst


# ----------------------------------------------------------------------
# Variation-aware mapping
# ----------------------------------------------------------------------
def variation_aware_selection(variation: VariationMap, app_rows: int,
                              app_cols: int) -> tuple[list[int], list[int]]:
    """Pick the physical lines with the smallest resistance budgets.

    Ties are broken by physical line index (``kind="stable"``), so the
    selected set is bit-reproducible across numpy builds — the default
    introsort picks platform-dependent lines on tied budgets, which made
    seeded sweeps non-deterministic.  The batched counterpart is
    :func:`repro.varsim.variation_aware_selection_batch`.
    """
    row_budget = variation.resistance.sum(axis=1)
    col_budget = variation.resistance.sum(axis=0)
    rows = sorted(np.argsort(row_budget, kind="stable")[:app_rows].tolist())
    cols = sorted(np.argsort(col_budget, kind="stable")[:app_cols].tolist())
    return rows, cols


def oblivious_selection(variation: VariationMap, app_rows: int, app_cols: int,
                        rng: random.Random) -> tuple[list[int], list[int]]:
    """Random placement baseline."""
    rows = sorted(rng.sample(range(variation.rows), app_rows))
    cols = sorted(rng.sample(range(variation.cols), app_cols))
    return rows, cols


@dataclass(frozen=True)
class VariationPoint:
    """Monte-Carlo summary for one sigma value."""

    sigma: float
    aware_mean: float
    aware_p95: float
    oblivious_mean: float
    oblivious_p95: float

    @property
    def mean_improvement(self) -> float:
        if self.oblivious_mean == 0:
            return 0.0
        return 1.0 - self.aware_mean / self.oblivious_mean


def variation_sweep(lattice: Lattice, sigmas: Sequence[float],
                    crossbar_rows: int, crossbar_cols: int,
                    trials: int, rng: random.Random) -> list[VariationPoint]:
    """Aware vs oblivious mapping delay across variation strengths.

    The lattice is placed on a larger crossbar; the selected physical
    sub-grid's resistances determine the critical delay.

    This is the scalar reference loop (one lognormal map, one Dijkstra per
    minterm per trial); the batched production path is
    :func:`repro.varsim.run_variation_campaign`.
    """
    if crossbar_rows < lattice.rows or crossbar_cols < lattice.cols:
        raise ValueError("crossbar smaller than the lattice")
    table = lattice.to_truth_table()
    if table.count_ones() == 0:
        raise ValueError(
            "variation sweep is undefined for a constant-0 lattice: "
            "critical delay has no conducting on-set input")
    points = []
    for sigma in sigmas:
        aware_delays = []
        oblivious_delays = []
        for _ in range(trials):
            variation = lognormal_variation(crossbar_rows, crossbar_cols,
                                            sigma, rng)
            rows_a, cols_a = variation_aware_selection(
                variation, lattice.rows, lattice.cols)
            rows_o, cols_o = oblivious_selection(
                variation, lattice.rows, lattice.cols, rng)
            aware_delays.append(lattice_critical_delay(
                lattice, variation.submap(rows_a, cols_a), table))
            oblivious_delays.append(lattice_critical_delay(
                lattice, variation.submap(rows_o, cols_o), table))
        aware = np.array(aware_delays)
        oblivious = np.array(oblivious_delays)
        points.append(VariationPoint(
            sigma=sigma,
            aware_mean=float(aware.mean()),
            aware_p95=float(np.percentile(aware, 95)),
            oblivious_mean=float(oblivious.mean()),
            oblivious_p95=float(np.percentile(oblivious, 95)),
        ))
    return points
