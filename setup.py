"""Package metadata + console entry point.

Kept as a plain setup.py (no pyproject build isolation) so legacy editable
installs keep working in the offline environment without `wheel`.
"""
from setuptools import find_packages, setup

setup(
    name="nanoxbar",
    version="1.0.0",
    description=(
        "Reproduction of 'Computing with Nano-Crossbar Arrays: Logic "
        "Synthesis and Fault Tolerance' (Altun, Ciriani, Tahoori, DATE 2017)"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy is a hard runtime dependency: repro.reliability.variation and
    # the repro.faultlab / repro.varsim campaign engines are built on it.
    # Floor: >= 1.22 (Generator/SeedSequence APIs and axis-aware kernels the
    # batched cores use).  numpy >= 2.0 is *not* required: the packed-bitset
    # kernels prefer np.bitwise_count when present and select the
    # unpackbits-based fallback in repro.boolean.bitops on 1.x at import.
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        # optional accelerator: repro.xbareval uses one scipy.ndimage.label
        # pass per batch when available (pure-numpy fallback otherwise)
        "fast": ["scipy"],
    },
    entry_points={
        "console_scripts": [
            "nanoxbar = repro.eval.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
