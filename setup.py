"""Package metadata + console entry point.

Kept as a plain setup.py (no pyproject build isolation) so legacy editable
installs keep working in the offline environment without `wheel`.
"""
from setuptools import find_packages, setup

setup(
    name="nanoxbar",
    version="1.0.0",
    description=(
        "Reproduction of 'Computing with Nano-Crossbar Arrays: Logic "
        "Synthesis and Fault Tolerance' (Altun, Ciriani, Tahoori, DATE 2017)"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "nanoxbar = repro.eval.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
