"""Live-observability benchmarks: recorder overhead, SSE integrity,
profiler attribution.

Three independent guarantees behind the history/SSE/dashboard layer:

1. **Recorder overhead** — a :class:`~repro.obs.timeline.MetricsRecorder`
   ticking at its production 1s interval must cost the warm engine path
   under **5%**, measured the same way as ``bench_obs.py``: single batch
   runs alternate recorder-on/recorder-off so both populations sample
   the same machine noise, and the medians are compared.
2. **SSE frame integrity** — a metrics-stream reader attached while 16
   concurrent clients burst jobs at the server must observe a dense,
   gap-free cursor sequence: the dashboard never silently drops a frame
   under load.
3. **Profiler attribution** — the sampling profiler over a serial
   varsweep campaign must attribute at least **80%** of its samples to
   the known hot kernels (the ``varsim``/``xbareval`` compute modules) —
   the tool points at the real work, not at harness plumbing.

``OBS_LIVE_SMOKE=1`` shrinks sample counts and relaxes the bounds for
noisy CI runners but keeps every measurement shape identical.  Each test
merges its section into ``benchmarks/results/BENCH_obs_live.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import threading
import time

from repro.engine import BatchEngine, SynthesisJob
from repro.eval.benchsuite import by_name, suite
from repro.obs import clear_spans
from repro.obs.sampler import StackSampler
from repro.obs.timeline import MetricsRecorder
from repro.server import ServerClient, serve_in_thread
from repro.synthesis import synthesize_lattice_dual
from repro.varsim import VariationCampaignSpec, run_variation_campaign

SMOKE = os.environ.get("OBS_LIVE_SMOKE") == "1"

#: Timed batch runs per mode (interleaved run-by-run).
SAMPLES = 20 if SMOKE else 150
WARMUP = 3 if SMOKE else 10
#: The acceptance bar: a 1s-tick recorder is effectively free.
OVERHEAD_LIMIT = 0.25 if SMOKE else 0.05

#: Concurrent submitters hammering the server during the SSE read.
BURST_CLIENTS = 4 if SMOKE else 16
BURST_JOBS_EACH = 2 if SMOKE else 4

#: Share of profiler samples that must land in the hot kernels.
ATTRIBUTION_FLOOR = 0.5 if SMOKE else 0.8

STRATEGIES = ("dual", "dreducible", "pcircuit")

ARTIFACT = pathlib.Path(__file__).parent / "results" / "BENCH_obs_live.json"


def _merge_artifact(section: str, payload: dict) -> None:
    """Read-modify-write one section of the combined artifact."""
    ARTIFACT.parent.mkdir(exist_ok=True)
    report = {}
    if ARTIFACT.exists():
        report = json.loads(ARTIFACT.read_text())
    report[section] = payload
    report["smoke"] = SMOKE
    ARTIFACT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _jobs():
    return [SynthesisJob.from_function(b.function, b.name, STRATEGIES)
            for b in suite(max_vars=5)]


def test_recorder_overhead_at_production_tick(save_table, tmp_path):
    jobs = _jobs()
    cache = str(tmp_path / "bench-obs-live.sqlite")
    recorder = MetricsRecorder(interval=1.0)
    samples: dict[bool, list[float]] = {True: [], False: []}
    with BatchEngine(cache_path=cache, processes=1) as engine:
        try:
            for _ in range(1 + WARMUP):  # first run warms the cache
                engine.run(jobs)
            for index in range(2 * SAMPLES):
                recording = index % 2 == 0
                if recording:
                    recorder.start()
                else:
                    recorder.stop()
                start = time.perf_counter()
                results = engine.run(jobs)
                samples[recording].append(time.perf_counter() - start)
                if index % 50 == 0:
                    clear_spans()
            assert len(results) == len(jobs)
        finally:
            recorder.stop()
            clear_spans()
        assert engine.stats.hit_rate > 0.9

    on_median = statistics.median(samples[True])
    off_median = statistics.median(samples[False])
    overhead = on_median / off_median - 1.0
    _merge_artifact("recorder_overhead", {
        "config": {"jobs_per_batch": len(jobs),
                   "samples_per_mode": SAMPLES,
                   "tick_seconds": recorder.interval},
        "recording_median_seconds": on_median,
        "idle_median_seconds": off_median,
        "overhead_fraction": overhead,
        "overhead_limit": OVERHEAD_LIMIT,
    })
    save_table("obs_live_recorder", "\n".join([
        "Recorder overhead (warm engine path, 1s tick, "
        f"{SAMPLES} interleaved runs/mode)",
        f"{'mode':10s} {'median[s]':>10s} {'fn/s':>9s}",
        f"{'recording':10s} {on_median:10.5f} "
        f"{len(jobs) / on_median:9.1f}",
        f"{'idle':10s} {off_median:10.5f} "
        f"{len(jobs) / off_median:9.1f}",
        f"median-vs-median overhead: {100.0 * overhead:+.2f}%  (limit "
        f"{100.0 * OVERHEAD_LIMIT:.0f}%{', smoke' if SMOKE else ''})",
    ]))
    assert overhead < OVERHEAD_LIMIT, (
        f"recorder overhead {overhead:.1%} exceeds {OVERHEAD_LIMIT:.0%}")


def test_sse_loses_no_frames_during_client_burst(save_table):
    handle = serve_in_thread(processes=1, job_workers=2, obs_tick=0.05)
    client = ServerClient(port=handle.port, timeout=60.0)
    try:
        client.wait_healthy()
        start_cursor = client.history()["cursor"]
        cursors: list[int] = []
        reader_done = threading.Event()

        def read() -> None:
            reader = ServerClient(port=handle.port, timeout=120.0)
            try:
                for frame in reader.stream_metrics(since=start_cursor):
                    cursors.append(frame["cursor"])
                    if reader_done.is_set():
                        return
            except OSError:
                pass  # server shutdown closes the stream

        reader_thread = threading.Thread(target=read)
        reader_thread.start()

        def burst(worker: int) -> None:
            mine = ServerClient(port=handle.port, timeout=120.0)
            for job in range(BURST_JOBS_EACH):
                bits = (worker * BURST_JOBS_EACH + job) % 15 + 1
                result = mine.run({"kind": "synthesis", "jobs": [{
                    "n": 2, "bits": bits,
                    "label": f"burst-{worker}-{job}"}]})
                assert result["state"] == "done"

        burst_start = time.perf_counter()
        workers = [threading.Thread(target=burst, args=(i,))
                   for i in range(BURST_CLIENTS)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        burst_seconds = time.perf_counter() - burst_start
        # Let the stream drain a few post-burst frames, then stop.
        time.sleep(0.5)
        reader_done.set()
        reader_thread.join(timeout=30)

        expected = list(range(start_cursor + 1,
                              start_cursor + 1 + len(cursors)))
        assert cursors == expected, (
            f"SSE cursor gap: got {cursors[:10]}..., "
            f"expected dense from {start_cursor + 1}")
        assert len(cursors) >= 3
    finally:
        handle.server.request_stop()
        handle.thread.join(timeout=30)

    _merge_artifact("sse_integrity", {
        "config": {"burst_clients": BURST_CLIENTS,
                   "jobs_per_client": BURST_JOBS_EACH,
                   "tick_seconds": 0.05},
        "frames_observed": len(cursors),
        "burst_seconds": burst_seconds,
        "frames_lost": 0,
    })
    save_table("obs_live_sse", "\n".join([
        f"SSE integrity under a {BURST_CLIENTS}-client burst "
        f"({BURST_CLIENTS * BURST_JOBS_EACH} jobs in "
        f"{burst_seconds:.2f}s)",
        f"frames observed: {len(cursors)}  (cursors "
        f"{cursors[0]}..{cursors[-1]}, dense)",
        "frames lost: 0",
    ]))


def test_profiler_attributes_hot_kernels(save_table):
    # xor5's dual lattice fills the whole 16x16 crossbar, so each trial
    # does real evaluation work — a multi-second serial window the
    # sampler can see into.
    benchmark = by_name("xor5")
    lattice = synthesize_lattice_dual(benchmark.function.on)
    spec = VariationCampaignSpec(
        lattice=lattice,
        sigmas=(0.1, 0.3, 0.6),
        crossbar_rows=16, crossbar_cols=16,
        trials=120 if SMOKE else 400,
        seed=0,
    )

    def is_hot(filename: str, _function: str) -> bool:
        path = filename.replace("\\", "/")
        return "/repro/varsim/" in path or "/repro/xbareval/" in path

    with StackSampler(interval=0.002,
                      thread_ids={threading.get_ident()}) as sampler:
        result = run_variation_campaign(spec, store=None, processes=1)
    report = sampler.report()
    assert len(result.estimates) == 3

    fraction = report.hot_fraction(is_hot)
    _merge_artifact("profiler_attribution", {
        "config": {"trials": spec.trials, "sigmas": list(spec.sigmas),
                   "interval_seconds": report.interval},
        "total_samples": report.total,
        "hot_fraction": fraction,
        "attribution_floor": ATTRIBUTION_FLOOR,
        "top": [{"function": label, "self": self_count}
                for label, self_count, _total in report.top(5)],
    })
    save_table("obs_live_profiler", "\n".join([
        f"Sampling-profiler attribution (serial varsweep, "
        f"{spec.trials} trials x {len(spec.sigmas)} sigmas, "
        f"{report.interval * 1000:.0f}ms interval)",
        f"samples: {report.total}   hot-kernel fraction: "
        f"{100.0 * fraction:.1f}%  (floor "
        f"{100.0 * ATTRIBUTION_FLOOR:.0f}%"
        f"{', smoke' if SMOKE else ''})",
        report.render_top(8),
    ]))
    assert report.total > 20, "profiling window collected too few samples"
    assert fraction >= ATTRIBUTION_FLOOR, (
        f"only {fraction:.1%} of samples attributed to hot kernels")
