"""E-LATTICE-MAP: defect-aware placement of four-terminal lattices.

The four-terminal analogue of BISM: place a synthesized lattice onto a
defective site fabric, exploiting stuck-closed sites as constant-1 padding
and stuck-open sites as constant-0.

The exhaustive mapper and mapped-lattice verification route through the
batched kernels of :mod:`repro.xbareval` (the scalar ``placement_valid``
stays as the bit-exact reference; the per-fabric random mapper keeps its
early-exit scalar loop, which wins at that batch size); the ensemble
benchmark below maps a whole batch of fabrics per kernel call through
:func:`repro.faultlab.kernels.map_lattice_random_batch`.
"""

import random
import time

import numpy as np

from repro.eval.benchsuite import by_name
from repro.eval.experiments import get_experiment
from repro.faultlab import bernoulli_defect_batch
from repro.faultlab.kernels import map_lattice_random_batch
from repro.reliability import map_lattice_random, random_defect_map
from repro.synthesis import fold_lattice, synthesize_lattice_dual
from repro.xbareval import lattice_site_codes


def test_latticemap_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("latticemap").run(True), rounds=1, iterations=1)
    save_table("lattice_mapping", result.render())
    rows = {row["density"]: row for row in result.rows}
    assert rows[0.0]["success_rate"] == 1.0
    assert rows[0.0]["avg_trials"] == 1.0
    # success degrades monotonically (weakly) with density
    rates = [row["success_rate"] for row in result.rows]
    assert all(a >= b - 0.15 for a, b in zip(rates, rates[1:]))


def test_lattice_mapping_speed(benchmark):
    f = by_name("xnor2").function
    lattice = fold_lattice(synthesize_lattice_dual(f.on), f.on)
    rng = random.Random(0)
    fabrics = [random_defect_map(8, 8, 0.1, rng) for _ in range(10)]

    def run():
        local = random.Random(1)
        return sum(
            map_lattice_random(lattice, fabric, local, max_trials=100).success
            for fabric in fabrics
        )

    successes = benchmark(run)
    assert successes >= 5


def test_lattice_mapping_batched_ensemble(benchmark, save_table):
    """Whole-ensemble mapping through the batched core: one kernel call
    per attempt wave instead of one scalar search per fabric."""
    f = by_name("xnor2").function
    lattice = fold_lattice(synthesize_lattice_dual(f.on), f.on)
    codes = lattice_site_codes(lattice)
    trials = 400

    def scalar_sweep():
        rng = random.Random(2)
        local = random.Random(3)
        return sum(
            map_lattice_random(lattice,
                               random_defect_map(8, 8, 0.1, rng),
                               local, max_trials=100).success
            for _ in range(trials)
        )

    def batched_sweep():
        gen = np.random.default_rng(2)
        batch = bernoulli_defect_batch(trials, 8, 8, 0.1, gen)
        success, _ = map_lattice_random_batch(batch.states, codes, gen,
                                              max_trials=100)
        return int(success.sum())

    scalar_sweep()
    batched_sweep()

    start = time.perf_counter()
    scalar_successes = scalar_sweep()
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    batched_successes = benchmark.pedantic(batched_sweep, rounds=1,
                                           iterations=1)
    batched_elapsed = time.perf_counter() - start

    save_table("lattice_mapping_batched", "\n".join([
        f"random mapping, {trials} fabrics 8x8 @ 10% defects, "
        f"target {lattice.rows}x{lattice.cols}",
        f"scalar  {scalar_elapsed:8.3f}s  success {scalar_successes}/{trials}",
        f"batched {batched_elapsed:8.3f}s  success {batched_successes}/{trials}",
        f"speedup {scalar_elapsed / batched_elapsed:8.1f}x",
    ]))
    # same distribution, independent streams: rates must agree loosely
    assert abs(scalar_successes - batched_successes) <= trials * 0.15
    assert batched_successes > trials * 0.5
