"""E-LATTICE-MAP: defect-aware placement of four-terminal lattices.

The four-terminal analogue of BISM: place a synthesized lattice onto a
defective site fabric, exploiting stuck-closed sites as constant-1 padding
and stuck-open sites as constant-0.
"""

import random

from repro.eval.benchsuite import by_name
from repro.eval.experiments import get_experiment
from repro.reliability import map_lattice_random, random_defect_map
from repro.synthesis import fold_lattice, synthesize_lattice_dual


def test_latticemap_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("latticemap").run(True), rounds=1, iterations=1)
    save_table("lattice_mapping", result.render())
    rows = {row["density"]: row for row in result.rows}
    assert rows[0.0]["success_rate"] == 1.0
    assert rows[0.0]["avg_trials"] == 1.0
    # success degrades monotonically (weakly) with density
    rates = [row["success_rate"] for row in result.rows]
    assert all(a >= b - 0.15 for a, b in zip(rates, rates[1:]))


def test_lattice_mapping_speed(benchmark):
    f = by_name("xnor2").function
    lattice = fold_lattice(synthesize_lattice_dual(f.on), f.on)
    rng = random.Random(0)
    fabrics = [random_defect_map(8, 8, 0.1, rng) for _ in range(10)]

    def run():
        local = random.Random(1)
        return sum(
            map_lattice_random(lattice, fabric, local, max_trials=100).success
            for fabric in fabrics
        )

    successes = benchmark(run)
    assert successes >= 5
