"""E-EXPRESSIVENESS: which functions fit which lattice shapes ([3] context).

Exhaustive labelling enumeration per shape, collapsed to NPN classes, plus
the minimal-area frontier cross-checked against the SAT-exact synthesiser.
"""

from repro.eval.experiments import get_experiment
from repro.synthesis import minimal_area_map, synthesize_lattice_optimal


def test_expressiveness_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("expressiveness").run(True),
        rounds=1, iterations=1)
    save_table("expressiveness", result.render())
    by_shape = {(row["shape"], row["n"]): row for row in result.rows}
    # a 2x2 lattice realises every 2-variable function
    assert by_shape[((2, 2), 2)]["coverage"] == 1.0
    assert by_shape[((2, 2), 2)]["npn_classes"] == 4
    # single sites realise only literals and constants
    assert by_shape[((1, 1), 2)]["functions"] == 6


def test_minimal_area_frontier_matches_sat(benchmark):
    frontier = benchmark.pedantic(lambda: minimal_area_map(2, max_area=4),
                                  rounds=1, iterations=1)
    # cross-check every reachable function against the exact synthesiser
    for function, area in frontier.items():
        result = synthesize_lattice_optimal(function, conflict_budget=50_000)
        assert result.proved_optimal
        assert result.area == area, (function, area, result.area)
