"""E-BISD: logarithmic diagnosis configurations (Section IV-A).

Regenerates the diagnosis table (configs = ceil(log2 resources) + 2, 100%
unique identification) and benchmarks the decode loop.
"""

import math

from repro.eval.experiments import get_experiment
from repro.reliability import run_bisd


def test_bisd_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("bisd").run(True), rounds=1, iterations=1)
    save_table("bisd_diagnosis", result.render())
    for row in result.rows:
        assert row["accuracy"] == 1.0
        assert row["configs"] == math.ceil(math.log2(row["resources"])) + 2


def test_bisd_full_diagnosis_speed(benchmark):
    report = benchmark.pedantic(lambda: run_bisd(4, 8), rounds=1, iterations=1)
    assert report.accuracy == 1.0


def test_bisd_fault_dictionary(benchmark, save_table):
    """Dictionary-based diagnosis over the FULL fault universe (the 'block
    codes' extension: lines and bridges join the crosspoint codewords)."""
    from repro.eval.tables import format_table
    from repro.reliability import build_fault_dictionary

    def run():
        rows = []
        for r, c in ((3, 3), (4, 4), (4, 6)):
            dictionary = build_fault_dictionary(r, c)
            unique = sum(
                1 for g in dictionary.groups.values() if len(g) == 1)
            rows.append({
                "crossbar": (r, c),
                "faults": dictionary.num_faults,
                "configs": dictionary.num_configurations,
                "signatures": dictionary.num_signatures,
                "uniquely_diagnosed": unique,
                "max_ambiguity": dictionary.max_ambiguity,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("bisd_fault_dictionary", format_table(
        rows, title="[bisd+] full-universe fault dictionary"))
    for row in rows:
        assert row["uniquely_diagnosed"] >= row["faults"] * 0.6
        assert row["signatures"] > 1
