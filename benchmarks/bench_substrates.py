"""Substrate performance benchmarks (not a paper table).

Tracks the cost of the building blocks every experiment relies on: the
two-level minimizer, the dual computation, the CDCL SAT solver and the
ROBDD engine.  Regressions here slow every table regeneration down.
"""

import random

from repro.boolean import Bdd, TruthTable, exact_minimize, isop, minimize
from repro.sat import Cnf, solve_cnf


def test_exact_minimize_speed(benchmark):
    tables = [TruthTable.from_bits(4, (0x9D3A + 977 * i) & 0xFFFF)
              for i in range(10)]

    def run():
        return sum(exact_minimize(t).num_products for t in tables)

    total = benchmark(run)
    assert total > 0


def test_isop_speed(benchmark):
    table = TruthTable.from_callable(8, lambda m: bin(m).count("1") in (2, 3, 5))

    cover = benchmark(lambda: isop(table))
    assert cover.to_truth_table() == table


def test_dual_minimize_speed(benchmark):
    table = TruthTable.from_callable(6, lambda m: bin(m).count("1") >= 3)

    def run():
        return minimize(table.dual()).num_products

    products = benchmark(run)
    # dual of (>=3 of 6) is (>=4 of 6), whose minimal SOP has C(6,4) products
    assert products == 15


def test_sat_solver_speed(benchmark):
    rng = random.Random(99)
    instances = []
    for _ in range(5):
        cnf = Cnf(30)
        for _ in range(110):
            vs = rng.sample(range(1, 31), 3)
            cnf.add_clause([v if rng.random() < 0.5 else -v for v in vs])
        instances.append(cnf)

    def run():
        return sum(solve_cnf(c) is not None for c in instances)

    sat_count = benchmark(run)
    assert 0 <= sat_count <= 5


def test_bdd_build_speed(benchmark):
    table = TruthTable.from_callable(10, lambda m: bin(m).count("1") % 3 == 0)

    def run():
        manager = Bdd(10)
        node = manager.from_truth_table(table)
        return manager.sat_count(node)

    count = benchmark(run)
    assert count == table.count_ones()
