"""Faultlab throughput: scalar vs vectorized, serial vs pooled.

Quantifies the tentpole claims of the campaign engine:

* the vectorized clean-subarray kernel must beat the scalar
  ``repro.reliability`` loop by >= 10x on a 1000-trial, N=32 yield sweep
  (generation + extraction, like-for-like);
* pooled campaign runs must return bit-identical estimates to serial ones
  (the speedup is reported, not asserted — timing noise must not fail the
  bench).
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro.faultlab import (
    CampaignSpec,
    bernoulli_defect_batch,
    recovered_k_batch,
    run_campaign,
)
from repro.reliability import greedy_clean_subarray, random_defect_map

N = 32
TRIALS = 1000
DENSITY = 0.05


def _scalar_sweep(trials: int) -> list[int]:
    rng = random.Random(1)
    return [
        greedy_clean_subarray(random_defect_map(N, N, DENSITY, rng)).k
        for _ in range(trials)
    ]


def _vectorized_sweep(trials: int) -> np.ndarray:
    gen = np.random.default_rng(1)
    batch = bernoulli_defect_batch(trials, N, N, DENSITY, gen)
    return recovered_k_batch(batch.defective())


def test_faultlab_scalar_vs_vectorized(benchmark, save_table):
    """The acceptance ratio: vectorized kernels >= 10x the scalar loop."""
    # Warm both paths once so neither pays first-call setup in the timing.
    _scalar_sweep(16)
    _vectorized_sweep(16)

    start = time.perf_counter()
    scalar_ks = _scalar_sweep(TRIALS)
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    vector_ks = benchmark.pedantic(
        lambda: _vectorized_sweep(TRIALS), rounds=1, iterations=1)
    vector_elapsed = time.perf_counter() - start

    speedup = scalar_elapsed / vector_elapsed
    save_table("faultlab_scalar_vs_vectorized", "\n".join([
        f"clean-subarray yield sweep, N={N}, density={DENSITY}, "
        f"trials={TRIALS}",
        f"scalar     {scalar_elapsed:8.3f}s  "
        f"({TRIALS / scalar_elapsed:8.0f} trials/s)",
        f"vectorized {vector_elapsed:8.3f}s  "
        f"({TRIALS / vector_elapsed:8.0f} trials/s)",
        f"speedup    {speedup:8.1f}x",
    ]))
    # Both estimators sample the same distribution: means must agree.
    assert abs(sum(scalar_ks) / TRIALS - float(vector_ks.mean())) < 1.0
    assert speedup >= 10.0


def test_faultlab_serial_vs_pooled(benchmark, save_table):
    """Campaign-runner throughput across pool sizes, bit-identical results."""
    spec = CampaignSpec(
        n_values=(24,), k_values=(12, 18, 24),
        densities=(0.01, 0.05, 0.1, 0.2),
        trials=400, batch_size=50,
    )

    def run(processes: int):
        start = time.perf_counter()
        result = run_campaign(spec, processes=processes)
        return time.perf_counter() - start, result

    serial_elapsed, serial_result = benchmark.pedantic(
        lambda: run(1), rounds=1, iterations=1)
    pooled_elapsed, pooled_result = run(2)

    assert [e.k_histogram for e in serial_result.estimates] == \
           [e.k_histogram for e in pooled_result.estimates]
    save_table("faultlab_serial_vs_pooled", "\n".join([
        f"campaign: {len(serial_result.estimates)} points x "
        f"{spec.trials} trials, N=24",
        f"serial   {serial_elapsed:8.3f}s  "
        f"({serial_result.trials_sampled / serial_elapsed:8.0f} trials/s)",
        f"pooled-2 {pooled_elapsed:8.3f}s  "
        f"({pooled_result.trials_sampled / pooled_elapsed:8.0f} trials/s)",
        "results bit-identical: yes",
    ]))


def test_faultlab_warm_store(benchmark, save_table, tmp_path):
    """Second run against the persisted store is pure cache rewrites."""
    spec = CampaignSpec(
        n_values=(16,), k_values=(8, 12, 16),
        densities=(0.02, 0.1), trials=300, batch_size=100,
    )
    store = str(tmp_path / "campaigns.sqlite")

    start = time.perf_counter()
    cold = run_campaign(spec, store=store)
    cold_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: run_campaign(spec, store=store), rounds=1, iterations=1)
    warm_elapsed = time.perf_counter() - start

    assert cold.cache_hits == 0
    assert warm.cache_hits == len(warm.estimates)
    assert [e.k_histogram for e in cold.estimates] == \
           [e.k_histogram for e in warm.estimates]
    save_table("faultlab_warm_store", "\n".join([
        f"campaign store: {len(cold.estimates)} points x {spec.trials} "
        "trials",
        f"cold {cold_elapsed:8.3f}s   warm {warm_elapsed:8.3f}s   "
        f"speedup {cold_elapsed / max(warm_elapsed, 1e-9):6.1f}x",
    ]))
