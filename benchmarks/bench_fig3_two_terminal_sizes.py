"""E-FIG3: diode/FET array size formulas (paper Fig. 3).

The formulas are exact for a given SOP cover; the bench regenerates the
per-benchmark size table and checks formula == as-built everywhere.
"""

from repro.eval.experiments import get_experiment


def test_fig3_size_formula_table(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: get_experiment("fig3").run(True), rounds=1, iterations=1)
    save_table("fig3_two_terminal_sizes", result.render())
    assert result.rows, "no benchmarks synthesised"
    for row in result.rows:
        assert row["diode_formula_ok"], row["benchmark"]
        assert row["fet_cols_ok"], row["benchmark"]
    # the Section III-A worked example: 2x5 diode, 4x4 FET
    xnor = next(row for row in result.rows if row["benchmark"] == "xnor2")
    assert xnor["diode"] == (2, 5)
    assert xnor["fet"] == (4, 4)
